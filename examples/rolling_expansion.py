#!/usr/bin/env python3
"""Rolling fleet expansion: discovery that never stops.

Scenario: an autoscaling group keeps adding machines while the fleet is
still discovering itself.  Each newcomer boots with 3 bootstrap addresses
drawn from machines that are already up (the only addresses a provisioner
can hand out).  The protocol is not restarted: a newcomer is simply one
more singleton cluster, and the incumbents absorb it.

The script also demonstrates the tracing facility: it captures the join
messages of the very last newcomer and prints its absorption, hop by hop.

Run:  python examples/rolling_expansion.py [incumbents] [joiners]
"""

import sys

import repro
from repro.sim import TraceObserver, late_join_workload


def main() -> None:
    incumbents = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    joiners = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    seed = 14

    graph, plan = late_join_workload(
        incumbents, joiners, seed=seed, k=3, join_start=7, join_stride=2
    )
    last_joiner = max(plan.join_rounds, key=plan.join_rounds.get)
    print(
        f"{incumbents} incumbents; {joiners} machines join between rounds "
        f"{min(plan.join_rounds.values())} and {plan.last_join}\n"
    )

    trace = TraceObserver(nodes=(last_joiner,))
    result = repro.discover(
        graph, algorithm="sublog", seed=seed, join_plan=plan, observers=[trace]
    )
    assert result.completed
    settle = result.rounds - plan.last_join
    print(
        f"strong discovery complete at round {result.rounds} — only "
        f"{settle} rounds after the final join"
    )
    print(f"total: {result.messages:,} messages, {result.pointers:,} pointers\n")

    print(f"life of the last newcomer (machine {last_joiner}, joined round "
          f"{plan.join_rounds[last_joiner]}):")
    interesting = [
        event
        for event in trace.events
        if event.kind in ("invite", "join", "welcome", "roster")
    ]
    for event in interesting[:12]:
        print(f"  {event.format()}")
    print(
        "\nreading: the newcomer invites its bootstrap contacts, is absorbed "
        "by the incumbent\nmega-cluster (join -> welcome), and receives the "
        "full roster in the completion\nbroadcast — no restart, no special "
        "casing."
    )


if __name__ == "__main__":
    main()
