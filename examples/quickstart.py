#!/usr/bin/env python3
"""Quickstart: run sub-logarithmic resource discovery and read the costs.

The resource-discovery problem: n machines each start knowing a few other
machines' addresses (the *knowledge graph*); they must all learn about
everyone by exchanging messages — and a machine can only message machines
it already knows.

This script builds the canonical workload (every machine registered with
3 random peers), runs the paper's algorithm, and compares it against the
classical Name-Dropper gossip baseline.

Run:  python examples/quickstart.py [n]
"""

import sys

import repro


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    seed = 7

    print(f"Building a random 3-out knowledge graph over {n} machines...")
    graph = repro.random_k_out(n, seed=seed, k=3)
    diameter = graph.undirected_diameter(exact=n <= 1500)
    print(f"  diameter {diameter} -> every algorithm needs >= ceil(log2 D) rounds\n")

    print(f"{'algorithm':<14}{'rounds':>8}{'messages':>12}{'pointers':>14}")
    for algorithm in ("sublog", "namedropper", "flooding"):
        result = repro.discover(graph, algorithm=algorithm, seed=seed)
        assert result.completed
        print(
            f"{algorithm:<14}{result.rounds:>8}{result.messages:>12,}"
            f"{result.pointers:>14,}"
        )

    print(
        "\nsublog finishes in a near-constant number of rounds on this "
        "low-diameter input\n(it is doubly-logarithmic in n) and sends a "
        "small constant number of messages per\nmachine per phase — the "
        "two headline properties of the paper."
    )


if __name__ == "__main__":
    main()
