#!/usr/bin/env python3
"""Datacenter fleet bootstrap: discovery across racks with realistic loss.

Scenario: a virtualized datacenter boots a fleet of hypervisor hosts.
Hosts in the same rack know each other (they share a management VLAN);
each rack's hosts also hold a handful of cross-rack addresses from the
provisioning system.  Before the fleet can form tunnels/overlays, every
host must learn every other host's address — exactly the resource
discovery problem, on the `clustered` topology.

The management network is busy, so we also inject 2% message loss and
run the discovery protocol in its resilient configuration.

Run:  python examples/datacenter_bootstrap.py [hosts] [racks]
"""

import sys

import repro
from repro.sim import FaultPlan


def main() -> None:
    hosts = int(sys.argv[1]) if len(sys.argv) > 1 else 384
    racks = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    seed = 2026

    print(f"Fleet: {hosts} hosts in {racks} racks, 2 cross-rack links per rack\n")
    graph = repro.make_topology(
        "clustered", hosts, seed=seed, clusters=racks, bridges=2
    )

    print("-- clean network " + "-" * 45)
    for algorithm in ("sublog", "namedropper"):
        result = repro.discover(graph, algorithm=algorithm, seed=seed)
        print(
            f"  {algorithm:<12} rounds={result.rounds:<4} "
            f"messages/host={result.messages / hosts:6.1f} "
            f"pointers={result.pointers:,}"
        )

    print("\n-- busy network: 2% message loss " + "-" * 29)
    plan = FaultPlan(loss_rate=0.02, seed=seed)
    resilient = repro.discover(
        graph,
        algorithm="sublog",
        seed=seed,
        fault_plan=plan,
        resilient=True,
        watchdog_phases=3,
        stagnation_phases=4,
    )
    print(
        f"  sublog       rounds={resilient.rounds:<4} "
        f"(dropped {resilient.dropped_messages:,} of "
        f"{resilient.messages:,} messages) completed={resilient.completed}"
    )

    print(
        "\nEvery host now holds the full fleet roster; tunnel meshes, "
        "gossip overlays, or\nmembership services can be built on top "
        "without any central registry."
    )


if __name__ == "__main__":
    main()
