#!/usr/bin/env python3
"""Failure study: what crashes and packet loss do to leader-based discovery.

Leader-based cluster merging is dramatically cheaper than structure-free
gossip — but structure is something that can break.  This example
reproduces the repository's robustness story end to end:

* a fleet loses 15% of its machines mid-discovery (round 8);
* messages drop independently with 3% probability throughout;
* the hardened core algorithm (full contact re-reports, orphan watchdog,
  stagnation broadcasts) still gets every *survivor* to know every other
  survivor, at a measured round premium;
* structure-free Name-Dropper is shown as the robustness yardstick.

Run:  python examples/failure_study.py [machines]
"""

import sys

import repro
from repro.sim import FaultPlan, crash_fraction_plan


def main() -> None:
    machines = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    seed = 5

    graph = repro.make_topology("kout", machines, seed=seed, k=3)
    crash = crash_fraction_plan(graph.node_ids, 0.15, crash_round=8, seed=seed)
    plan = FaultPlan(
        loss_rate=0.03, crash_rounds=dict(crash.crash_rounds), seed=seed
    )
    survivors = machines - len(crash.crash_rounds)
    print(
        f"{machines} machines; {len(crash.crash_rounds)} will crash at "
        f"round 8; 3% message loss throughout\n"
    )

    print(f"{'configuration':<34}{'rounds':>8}{'done':>6}{'msgs/survivor':>15}")

    baseline = repro.discover(
        graph, algorithm="sublog", seed=seed, goal="strong_alive", fault_plan=plan
    )
    print(
        f"{'sublog (no hardening)':<34}{baseline.rounds:>8}"
        f"{str(baseline.completed):>6}{baseline.messages / survivors:>15.1f}"
    )

    hardened = repro.discover(
        graph,
        algorithm="sublog",
        seed=seed,
        goal="strong_alive",
        fault_plan=plan,
        resilient=True,
        watchdog_phases=3,
        stagnation_phases=4,
        max_rounds=1500,
    )
    print(
        f"{'sublog (watchdog + resilient)':<34}{hardened.rounds:>8}"
        f"{str(hardened.completed):>6}{hardened.messages / survivors:>15.1f}"
    )

    gossip = repro.discover(
        graph, algorithm="namedropper", seed=seed, goal="strong_alive", fault_plan=plan
    )
    print(
        f"{'namedropper (yardstick)':<34}{gossip.rounds:>8}"
        f"{str(gossip.completed):>6}{gossip.messages / survivors:>15.1f}"
    )

    assert hardened.completed
    print(
        "\nreading: the bare protocol may stall when a leader dies "
        "mid-merge; the watchdog\nlets orphaned members revert to "
        "singleton clusters and re-discover, trading\nextra rounds for "
        "guaranteed completion among survivors."
    )


if __name__ == "__main__":
    main()
