#!/usr/bin/env python3
"""P2P overlay formation: from scattered registrations to a sorted ring.

Scenario: peers join a P2P system by registering with a few addresses
learned out-of-band (a bootstrap list).  To build a structured overlay —
here a sorted identifier ring, the backbone of DHTs — each peer must
first discover the identifier space.

This example shows the two-step recipe:

1. *Weak discovery*: run the core algorithm without the final roster
   broadcast; the surviving cluster leader ends up knowing every peer.
   This costs only near-linear pointers.
2. The coordinator computes ring successors and sends each peer its
   O(1)-size neighbor set — total O(n) pointers, far below the Θ(n²) a
   full roster broadcast would cost.

Run:  python examples/p2p_overlay.py [peers]
"""

import sys

import repro
from repro.sim import SynchronousEngine


def main() -> None:
    peers = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    seed = 99

    print(f"{peers} peers joining with 2 bootstrap addresses each (random ids)\n")
    graph = repro.make_topology("kout", peers, seed=seed, k=2, id_space="random")

    # Step 1: weak discovery — stop once some peer knows everyone and
    # everyone knows it.  Run the engine directly to inspect the leader.
    spec = repro.get_algorithm("sublog")
    engine = SynchronousEngine(
        graph,
        spec.node_factory(completion="none"),
        seed=seed,
        goal="weak",
        algorithm_name="sublog",
    )
    result = engine.run(max_rounds=spec.round_cap(peers))
    assert result.completed, "weak discovery failed"
    coordinator = engine.weak_leader()
    print(
        f"weak discovery: coordinator {coordinator:#x} knows all {peers} "
        f"peers after {result.rounds} rounds, {result.pointers:,} pointers"
    )

    # Step 2: the coordinator computes the sorted ring.
    roster = sorted(engine.knowledge[coordinator])
    successors = {
        peer: roster[(index + 1) % len(roster)]
        for index, peer in enumerate(roster)
    }

    # Verify the ring is a single cycle covering every peer.
    seen = []
    current = roster[0]
    for _ in range(len(roster)):
        seen.append(current)
        current = successors[current]
    assert current == roster[0] and len(set(seen)) == peers
    print(
        f"ring check: walked {len(seen)} successor hops and returned to "
        "the start — single cycle covering every peer"
    )
    print(
        f"\ndistributing successors costs {peers} messages of 1 pointer "
        f"each;\na naive full-roster broadcast would cost "
        f"{peers * (peers - 1):,} pointers."
    )


if __name__ == "__main__":
    main()
