"""Thin shim for environments without the `wheel` package (offline legacy
editable installs); all metadata lives in pyproject.toml."""
from setuptools import setup

setup()
