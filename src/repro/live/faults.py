"""Fault plans for the live runtime.

A :class:`LiveFaultPlan` is the live analog of
:class:`repro.sim.faults.FaultPlan`'s crash schedule: kill node X at the
start of round R, on purpose, at the same logical instant the
simulator's :class:`~repro.sim.faults.FaultInjector` would — after the
node has absorbed its round ``R - 1`` traffic, before it executes round
``R``.  Because both hosts freeze the victim at the same boundary, a
live run under a plan is digest-comparable to a simulated run under
:meth:`LiveFaultPlan.to_sim_plan`, both over the full fleet (the frozen
victim's knowledge included) and over the survivors alone (what a real
``kill -9`` leaves observable).

Live crashes are fail-stop for the discovery protocol, exactly like the
simulator's.  The optional ``restart`` set names victims to revive
*after* the run on the service plane only: a restarted node re-binds its
endpoint and answers queries from its frozen pre-crash knowledge, but it
never rejoins the round loop (the simulator has no recovery, and a
rejoining node would break the determinism contract — see
``docs/MODEL.md`` §7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Tuple

from ..sim.faults import FaultPlan, parse_kill_specs

__all__ = ["LiveFaultPlan", "parse_kill_specs"]


@dataclass(frozen=True)
class LiveFaultPlan:
    """Deterministic crash (and optional service-plane restart) schedule.

    Attributes:
        crash_rounds: Mapping from node id to the round (1-based) at
            whose start the node dies: server closed, connections
            aborted, no round-R execution.
        restart: Node ids (must be scheduled crashers) revived after the
            run in serve-only mode.
    """

    crash_rounds: Mapping[int, int] = field(default_factory=dict)
    restart: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for node, round_no in self.crash_rounds.items():
            if round_no < 1:
                raise ValueError(f"crash round for node {node} must be >= 1")
        strays = sorted(set(self.restart) - set(self.crash_rounds))
        if strays:
            raise ValueError(f"restart of nodes never killed: {strays}")

    @property
    def has_faults(self) -> bool:
        return bool(self.crash_rounds)

    def victims(self) -> Tuple[int, ...]:
        return tuple(sorted(self.crash_rounds))

    def to_sim_plan(self, seed: int = 0) -> FaultPlan:
        """The simulator plan predicting this live run's outcome."""
        return FaultPlan(crash_rounds=dict(self.crash_rounds), seed=seed)

    @classmethod
    def from_kill_specs(
        cls, specs: Iterable[str], restart: Iterable[int] = ()
    ) -> "LiveFaultPlan":
        """Build a plan from CLI-style ``"id@round"`` specs."""
        return cls(
            crash_rounds=parse_kill_specs(specs), restart=tuple(sorted(set(restart)))
        )
