"""The network as a :class:`~repro.sim.transport.DeliveryModel`.

The simulator's delivery models decide *when* a submitted message lands
and whether it survives the trip; the engine's round loop is written
against that contract alone.  :class:`RealTransport` implements the same
contract for the live host: :meth:`~RealTransport.submit` queues the
message for the node's socket writer instead of a simulated scheduler,
and the in-flight buffer behind the inherited
:meth:`~repro.sim.transport.DeliveryModel.deliver` loop is fed by
frames arriving off the network (:meth:`~RealTransport.ingest`).

Because the live host runs the classic synchronous abstraction over an
asynchronous network (round pacing via end-of-round markers), every
message logically takes exactly one round — ``uniform_delay = 1``, like
:class:`~repro.sim.transport.Lockstep` — and the delivery-time
filtering, metrics charging, and drop accounting all come from the
shared reference loop unmodified.

:class:`LiveHostContext` is the engine-shaped object the model binds
to: the slice of :class:`~repro.sim.engine.SynchronousEngine` the
``DeliveryModel`` runtime actually touches (metrics, fault and join
state, the optional delivery log), with an empty fault plan and no
joins.  A live node that dies disappears from the network; its peers
detect that through the runtime's failure detector (marker deadlines
and send retries, :mod:`repro.live.node`), and sends addressed to a
peer already declared dead are charged to the shared metrics as
:data:`~repro.sim.metrics.DROP_CRASH` losses — the same taxonomy the
engine's :class:`~repro.sim.faults.FaultInjector` files them under.
"""

from __future__ import annotations

from typing import List

from ..sim.churn import JoinPlan
from ..sim.faults import FaultInjector
from ..sim.messages import Message
from ..sim.metrics import MetricsCollector
from ..sim.transport import DeliveryModel


class LiveHostContext:
    """The engine-shaped host a live node binds its delivery model to."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.metrics = MetricsCollector()
        self._faults = FaultInjector(None, seed)
        self._joins = JoinPlan()
        self._delivery_log = None


class RealTransport(DeliveryModel):
    """Delivery model whose scheduler is the actual network.

    Bound per node (one transport per :class:`LiveHostContext`), not per
    engine.  Outbound: :meth:`submit` charges the one-round latency to
    the metrics and parks the message in an outgoing queue the node's
    round loop flushes over TCP (:meth:`take_outgoing`).  Inbound: the
    node calls :meth:`ingest` once all of a round's traffic has arrived
    — in canonical order, per-sender batches ascending by sender id — so
    the inherited :meth:`~repro.sim.transport.DeliveryModel.deliver`
    loop yields exactly the inbox a lockstep simulator would have built.
    """

    uniform_delay = 1
    name = "real"

    def delay(self, sender: int, recipient: int, send_round: int) -> int:
        return 1

    def _on_bind(self, engine) -> None:
        self._outgoing: List[Message] = []

    def submit(self, message: Message, send_round: int) -> None:
        self._outgoing.append(message)
        self._engine.metrics.record_delay(1)

    def take_outgoing(self) -> List[Message]:
        """Drain the messages queued for the network this round."""
        outgoing, self._outgoing = self._outgoing, []
        return outgoing

    def ingest(self, deliver_round: int, messages: List[Message]) -> None:
        """Hand a round's received traffic to the in-flight buffer."""
        bucket = self._future.get(deliver_round)
        if bucket is None:
            self._future[deliver_round] = list(messages)
        else:
            bucket.extend(messages)
