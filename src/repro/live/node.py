"""One live protocol node: TCP endpoint + marker-paced round loop.

A :class:`LiveNodeRuntime` hosts exactly one protocol-core node
(:class:`~repro.sim.node.ProtocolNode`) the way the simulator hosts n
of them.  It owns a TCP server for inbound traffic, dials peers on
demand through a cluster-provided directory (the live analog of the
model's "address known ⇒ reachable" assumption), and advances rounds by
*local ticks*: no coordinator, no global barrier object — a node enters
round ``r + 1`` the moment it holds end-of-round markers for round
``r`` from every peer.

Determinism contract (what makes a live run digest-identical to a
simulated one):

* same per-node RNG stream — ``derive_rng(seed, "node", node_id)``,
  exactly the engine's binding;
* same inbox — round-``r`` traffic is buffered per sender and handed to
  the transport as per-sender batches in ascending sender id, matching
  the engine's sorted-id collection order, with per-connection TCP FIFO
  plus the ptrs-before-eor send order guaranteeing batch completeness;
* same absorb timing — a message sent in round ``r`` is absorbed after
  round ``r``'s marker wait, i.e. before anyone runs round ``r + 1``,
  which is the engine's end-of-round delivery.

Closure detection lags one round by construction: the ``eor`` marker
for round ``r`` carries the sender's completeness *entering* round
``r``, so a cluster that is complete after round ``R`` unanimously
flags it in the round-``R + 1`` markers and stops there — one round
later than the simulator's same-round goal check, with knowledge
already complete and therefore the digest unchanged.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Mapping, Optional, Tuple

from ..sim.messages import Message
from ..sim.node import ProtocolNode
from .transport import LiveHostContext, RealTransport
from .wire import WireError, encode_frame, message_to_wire, read_frame, wire_to_message


class LiveNodeRuntime:
    """Host one protocol node as an asyncio task behind a TCP endpoint.

    Args:
        protocol: A bound protocol-core node (initial knowledge and RNG
            already installed, exactly as the engine would have).
        n: Fleet size — the strong-completion target ``len(known) == n``.
        seed: Master seed (context/metrics bookkeeping only; the
            protocol RNG is bound by the caller).
        host: Interface to bind; loopback unless deliberately exposed.
    """

    def __init__(
        self,
        protocol: ProtocolNode,
        n: int,
        *,
        seed: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.protocol = protocol
        self.node_id = protocol.node_id
        self.n = n
        self.host = host
        self.port: Optional[int] = None
        self.context = LiveHostContext(seed)
        self.transport = RealTransport().bind(self.context)
        self.rounds_run = 0
        self.complete = len(protocol.known) >= n
        self.shutdown_requested = asyncio.Event()

        self._server: Optional[asyncio.base_events.Server] = None
        self._directory: Mapping[int, Tuple[str, int]] = {}
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._inbox: List[Message] = []
        self._batches: Dict[int, Dict[int, List[Message]]] = {}
        self._markers: Dict[int, Dict[int, bool]] = {}
        self._progress = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the server (ephemeral port) and return the endpoint."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    def set_directory(self, directory: Mapping[int, Tuple[str, int]]) -> None:
        """Install the id → endpoint map (the fleet's address book)."""
        self._directory = dict(directory)

    async def close(self) -> None:
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- the round loop ------------------------------------------------------------

    async def run_discovery(
        self, max_rounds: int, *, stop_on_closure: bool = True
    ) -> int:
        """Run rounds until unanimous closure or *max_rounds*; return
        the number of rounds executed."""
        peers = sorted(set(self._directory) - {self.node_id})
        round_no = 0
        while round_no < max_rounds:
            round_no += 1
            entered_complete = len(self.protocol.known) >= self.n

            outbox = self.protocol.run_round(round_no, self._inbox)
            self._inbox = []
            for message in outbox or ():
                self.context.metrics.record_send(message)
                self.transport.submit(message, round_no)
            by_recipient: Dict[int, List[Message]] = {}
            for message in self.transport.take_outgoing():
                by_recipient.setdefault(message.recipient, []).append(message)
            for recipient, messages in by_recipient.items():
                await self._send(
                    recipient,
                    {
                        "t": "ptrs",
                        "round": round_no,
                        "from": self.node_id,
                        "msgs": [message_to_wire(m) for m in messages],
                    },
                )
            # The marker MUST trail this round's ptrs on every
            # connection: a received eor(r) then proves (TCP FIFO) that
            # all of that sender's round-r traffic is already here.
            for peer in peers:
                await self._send(
                    peer,
                    {
                        "t": "eor",
                        "round": round_no,
                        "from": self.node_id,
                        "complete": entered_complete,
                    },
                )

            await self._wait_for_markers(round_no, peers)

            batches = self._batches.pop(round_no, {})
            delivered: List[Message] = []
            for sender in sorted(batches):
                delivered.extend(batches[sender])
            self.transport.ingest(round_no + 1, delivered)
            for message, _delay in self.transport.deliver(round_no + 1):
                self.protocol.absorb(message)
                self._inbox.append(message)
            self.context.metrics.close_round(round_no)
            self.rounds_run = round_no
            self.complete = len(self.protocol.known) >= self.n

            flags = self._markers.pop(round_no, {})
            if (
                stop_on_closure
                and entered_complete
                and all(flags.get(peer, False) for peer in peers)
            ):
                break
        return self.rounds_run

    async def _wait_for_markers(self, round_no: int, peers: List[int]) -> None:
        while True:
            markers = self._markers.get(round_no, {})
            if all(peer in markers for peer in peers):
                return
            self._progress.clear()
            markers = self._markers.get(round_no, {})
            if all(peer in markers for peer in peers):
                return
            await self._progress.wait()

    # -- outbound ------------------------------------------------------------------

    async def _send(self, peer: int, payload: Mapping) -> None:
        writer = self._writers.get(peer)
        if writer is None:
            host, port = self._directory[peer]
            _reader, writer = await asyncio.open_connection(host, port)
            self._writers[peer] = writer
            writer.write(encode_frame({"t": "hello", "from": self.node_id}))
        writer.write(encode_frame(payload))
        await writer.drain()

    # -- inbound -------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except WireError:
                    break
                if frame is None:
                    break
                kind = frame["t"]
                if kind == "ptrs":
                    per_sender = self._batches.setdefault(frame["round"], {})
                    per_sender.setdefault(frame["from"], []).extend(
                        wire_to_message(wire) for wire in frame["msgs"]
                    )
                    self._progress.set()
                elif kind == "eor":
                    self._markers.setdefault(frame["round"], {})[frame["from"]] = bool(
                        frame["complete"]
                    )
                    self._progress.set()
                elif kind == "hello":
                    pass
                else:
                    reply = self._answer_query(frame)
                    if reply is None:
                        break
                    writer.write(encode_frame(reply))
                    await writer.drain()
                    if kind == "shutdown":
                        break
        finally:
            writer.close()

    def _answer_query(self, frame: Mapping) -> Optional[Mapping]:
        """Service-plane queries; the live analogs of :mod:`repro.apps`."""
        kind = frame["t"]
        known = self.protocol.known
        if kind == "census":
            return {
                "t": "census_reply",
                "from": self.node_id,
                "leader": min(known),
                "min": min(known),
                "max": max(known),
                "count": len(known),
            }
        if kind == "succ":
            of = frame.get("of", self.node_id)
            roster = sorted(known)
            later = [peer for peer in roster if peer > of]
            return {
                "t": "succ_reply",
                "from": self.node_id,
                "of": of,
                "succ": later[0] if later else roster[0],
            }
        if kind == "known":
            return {"t": "known_reply", "from": self.node_id, "ids": sorted(known)}
        if kind == "status":
            return {
                "t": "status_reply",
                "from": self.node_id,
                "round": self.rounds_run,
                "complete": self.complete,
                "n": self.n,
            }
        if kind == "shutdown":
            self.shutdown_requested.set()
            return {"t": "ok", "from": self.node_id}
        return None
