"""One live protocol node: TCP endpoint + marker-paced round loop.

A :class:`LiveNodeRuntime` hosts exactly one protocol-core node
(:class:`~repro.sim.node.ProtocolNode`) the way the simulator hosts n
of them.  It owns a TCP server for inbound traffic, dials peers on
demand through a cluster-provided directory (the live analog of the
model's "address known ⇒ reachable" assumption), and advances rounds by
*local ticks*: no coordinator, no global barrier object — a node enters
round ``r + 1`` the moment it holds end-of-round markers for round
``r`` from every peer it still believes alive.

Determinism contract (what makes a live run digest-identical to a
simulated one):

* same per-node RNG stream — ``derive_rng(seed, "node", node_id)``,
  exactly the engine's binding;
* same inbox — round-``r`` traffic is buffered per sender and handed to
  the transport as per-sender batches in ascending sender id, matching
  the engine's sorted-id collection order, with per-connection TCP FIFO
  plus the ptrs-before-eor send order guaranteeing batch completeness;
* same absorb timing — a message sent in round ``r`` is absorbed after
  round ``r``'s marker wait, i.e. before anyone runs round ``r + 1``,
  which is the engine's end-of-round delivery.

Closure detection lags one round by construction: the ``eor`` marker
for round ``r`` carries the sender's completeness *entering* round
``r``, so a cluster that is complete after round ``R`` unanimously
flags it in the round-``R + 1`` markers and stops there — one round
later than the simulator's same-round goal check, with knowledge
already complete and therefore the digest unchanged.

Failure model (the live mirror of :mod:`repro.sim.faults`):

* **Suspicion** — the marker wait carries a per-round deadline
  (:attr:`LiveNodeRuntime.marker_timeout`, default derived from the
  round budget).  A peer silent past the deadline is *suspected*: its
  round is treated as an empty batch and the loop moves on instead of
  hanging forever.  ``suspect_after`` consecutive silent rounds
  escalate the peer to *dead*.
* **Death** — a peer whose connection cannot be re-established within
  ``send_retries`` dial/write attempts (capped exponential backoff) is
  marked dead immediately.  Dead peers are excluded from the marker
  quorum and from the closure unanimity check, and protocol messages
  addressed to them are charged as :data:`~repro.sim.metrics.DROP_CRASH`
  losses — exactly the engine's send-to-crashed accounting.
* **Injected crashes** — :attr:`LiveNodeRuntime.crash_at_round` makes
  the node fail-stop at the top of that round, after absorbing round
  ``R - 1`` traffic and before executing round ``R``: the same boundary
  ``FaultInjector.apply_crashes`` freezes a simulated node at, which is
  what keeps a killed live fleet digest-comparable to the simulator's
  prediction.  Outbound connections are drained before closing so every
  round ``R - 1`` frame the sim counts as delivered really lands.

Suspicion is timeout-based and therefore fallible: a merely *slow* peer
suspected by an aggressive deadline diverges from the simulator (its
late traffic is discarded as unproven).  Deadlines default generous;
the determinism contract above holds whenever suspects are genuinely
dead.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..sim.messages import Message
from ..sim.metrics import DROP_CRASH
from ..sim.node import ProtocolNode
from .transport import LiveHostContext, RealTransport
from .wire import (
    WireError,
    encode_frame,
    message_to_wire,
    read_frame,
    validate_round_frame,
    wire_to_message,
)

logger = logging.getLogger("repro.live.node")

#: Peer liveness states surfaced in ``status`` replies.
PEER_UP = "up"
PEER_SUSPECT = "suspect"
PEER_DEAD = "dead"


def default_marker_timeout(round_budget: int) -> float:
    """Marker-wait deadline (seconds) derived from the round budget.

    Healthy loopback rounds complete in milliseconds, so the deadline
    only has to be *generous*, not tight: a quarter-second per budgeted
    round, clamped to [10 s, 60 s].  A wedged or killed peer now costs
    a bounded wait instead of hanging the fleet forever.
    """
    return min(60.0, max(10.0, 0.25 * round_budget))


async def _close_writer(writer: asyncio.StreamWriter, timeout: float = 2.0) -> None:
    """Close a stream writer and actually wait for the transport to die.

    ``writer.close()`` alone leaks the transport until the event loop
    gets around to it and races any final frames still in the buffer;
    awaiting ``wait_closed`` (bounded, errors swallowed — teardown must
    never raise) drains and releases it deterministically.
    """
    try:
        writer.close()
        await asyncio.wait_for(writer.wait_closed(), timeout)
    except (ConnectionError, OSError, asyncio.TimeoutError):
        pass


class LiveNodeRuntime:
    """Host one protocol node as an asyncio task behind a TCP endpoint.

    Args:
        protocol: A bound protocol-core node (initial knowledge and RNG
            already installed, exactly as the engine would have).
        n: Fleet size — the strong-completion target ``len(known) == n``.
        seed: Master seed (context/metrics bookkeeping only; the
            protocol RNG is bound by the caller).
        host: Interface to bind; loopback unless deliberately exposed.
        marker_timeout: Per-round marker-wait deadline in seconds.
            ``None`` derives :func:`default_marker_timeout` from the
            round budget at run time; ``0`` or negative waits forever
            (the pre-fault-tolerance behavior).
        suspect_after: Consecutive silent rounds before a suspect peer
            is escalated to dead.
        dial_timeout: Per-attempt connect deadline for outbound dials.
        send_retries: Re-dial/re-send attempts after a failed send
            before the peer is declared dead.
        retry_backoff: Initial backoff sleep between retries; doubles
            per attempt up to *retry_backoff_cap*.
    """

    def __init__(
        self,
        protocol: ProtocolNode,
        n: int,
        *,
        seed: int = 0,
        host: str = "127.0.0.1",
        marker_timeout: Optional[float] = None,
        suspect_after: int = 2,
        dial_timeout: float = 5.0,
        send_retries: int = 3,
        retry_backoff: float = 0.05,
        retry_backoff_cap: float = 0.5,
    ) -> None:
        self.protocol = protocol
        self.node_id = protocol.node_id
        self.n = n
        self.host = host
        self.port: Optional[int] = None
        self.context = LiveHostContext(seed)
        self.transport = RealTransport().bind(self.context)
        self.rounds_run = 0
        self.complete = len(protocol.known) >= n
        self.shutdown_requested = asyncio.Event()

        self.marker_timeout = marker_timeout
        self.suspect_after = max(1, suspect_after)
        self.dial_timeout = dial_timeout
        self.send_retries = max(0, send_retries)
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap

        #: Fault injection: fail-stop at the top of this round (1-based).
        self.crash_at_round: Optional[int] = None
        #: Round the node actually died at, if it did.
        self.crashed_at: Optional[int] = None
        #: Whether the endpoint was revived (service plane only).
        self.restarted = False

        self._server: Optional[asyncio.base_events.Server] = None
        self._directory: Mapping[int, Tuple[str, int]] = {}
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._inbound: Set[asyncio.StreamWriter] = set()
        self._inbox: List[Message] = []
        self._batches: Dict[int, Dict[int, List[Message]]] = {}
        self._markers: Dict[int, Dict[int, bool]] = {}
        self._progress = asyncio.Event()
        self._dead: Dict[int, str] = {}
        self._suspects: Dict[int, int] = {}

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the server (ephemeral port) and return the endpoint."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    def set_directory(self, directory: Mapping[int, Tuple[str, int]]) -> None:
        """Install the id → endpoint map (the fleet's address book)."""
        self._directory = dict(directory)

    async def close(self) -> None:
        for writer in list(self._writers.values()):
            await _close_writer(writer)
        self._writers.clear()
        for writer in list(self._inbound):
            await _close_writer(writer)
        self._inbound.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def restart_service(self) -> Tuple[str, int]:
        """Revive a crashed node's endpoint on the *service plane* only.

        The node answers ``census``/``known``/``status``/... queries from
        its frozen pre-crash knowledge but never rejoins the round loop:
        the simulator's crashes are fail-stop, and a rejoining node would
        break the determinism contract (``docs/MODEL.md`` §7).
        """
        if self.crashed_at is None:
            raise RuntimeError(f"node {self.node_id} was never crashed")
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port or 0
            )
            self.port = self._server.sockets[0].getsockname()[1]
        self.restarted = True
        logger.info(
            "node-restarted node=%s port=%s plane=service", self.node_id, self.port
        )
        return self.host, self.port

    # -- peer liveness -------------------------------------------------------------

    def peer_state(self, peer: int) -> str:
        if peer in self._dead:
            return PEER_DEAD
        if self._suspects.get(peer):
            return PEER_SUSPECT
        return PEER_UP

    @property
    def dead_peers(self) -> Dict[int, str]:
        """Peers declared dead, with the reason each was given up on."""
        return dict(self._dead)

    @property
    def suspect_peers(self) -> Dict[int, int]:
        """Currently suspected peers and their consecutive silent rounds."""
        return dict(self._suspects)

    def _mark_dead(self, peer: int, reason: str) -> None:
        if peer in self._dead:
            return
        self._dead[peer] = reason
        self._suspects.pop(peer, None)
        logger.warning(
            "peer-dead node=%s peer=%s reason=%s", self.node_id, peer, reason
        )
        writer = self._writers.pop(peer, None)
        if writer is not None:
            writer.close()
        # A marker wait that no longer needs this peer must re-evaluate.
        self._progress.set()

    def _mark_suspect(self, peer: int, round_no: int) -> None:
        strikes = self._suspects.get(peer, 0) + 1
        self._suspects[peer] = strikes
        logger.warning(
            "peer-suspect node=%s peer=%s round=%s strikes=%s/%s",
            self.node_id,
            peer,
            round_no,
            strikes,
            self.suspect_after,
        )
        if strikes >= self.suspect_after:
            self._mark_dead(peer, f"marker-timeout round={round_no}")

    # -- the round loop ------------------------------------------------------------

    async def run_discovery(
        self, max_rounds: int, *, stop_on_closure: bool = True
    ) -> int:
        """Run rounds until unanimous closure or *max_rounds*; return
        the number of rounds executed."""
        all_peers = sorted(set(self._directory) - {self.node_id})
        timeout = (
            self.marker_timeout
            if self.marker_timeout is not None
            else default_marker_timeout(max_rounds)
        )
        round_no = 0
        while round_no < max_rounds:
            round_no += 1
            if self.crash_at_round is not None and round_no >= self.crash_at_round:
                await self._die(round_no)
                break
            entered_complete = len(self.protocol.known) >= self.n

            outbox = self.protocol.run_round(round_no, self._inbox)
            self._inbox = []
            for message in outbox or ():
                self.transport.submit(message, round_no)
            by_recipient: Dict[int, List[Message]] = {}
            for message in self.transport.take_outgoing():
                by_recipient.setdefault(message.recipient, []).append(message)
            for recipient in sorted(by_recipient):
                messages = by_recipient[recipient]
                if recipient in self._dead:
                    # The engine's send-to-crashed accounting: the send
                    # is charged, the loss is filed under ``crash``.
                    for message in messages:
                        self.context.metrics.record_send(
                            message, dropped=True, reason=DROP_CRASH
                        )
                    continue
                for message in messages:
                    self.context.metrics.record_send(message)
                await self._send(
                    recipient,
                    {
                        "t": "ptrs",
                        "round": round_no,
                        "from": self.node_id,
                        "msgs": [message_to_wire(m) for m in messages],
                    },
                )
            # The marker MUST trail this round's ptrs on every
            # connection: a received eor(r) then proves (TCP FIFO) that
            # all of that sender's round-r traffic is already here.
            for peer in all_peers:
                if peer in self._dead:
                    continue
                await self._send(
                    peer,
                    {
                        "t": "eor",
                        "round": round_no,
                        "from": self.node_id,
                        "complete": entered_complete,
                    },
                )

            await self._wait_for_markers(round_no, all_peers, timeout)

            flags = self._markers.pop(round_no, {})
            batches = self._batches.pop(round_no, {})
            delivered: List[Message] = []
            for sender in sorted(batches):
                if sender not in flags:
                    # No end-of-round marker ⇒ the batch is unproven
                    # (the sender died or timed out mid-round).  The
                    # simulator's crash semantics drop it wholesale.
                    logger.warning(
                        "unproven-batch node=%s sender=%s round=%s dropped=%s",
                        self.node_id,
                        sender,
                        round_no,
                        len(batches[sender]),
                    )
                    continue
                delivered.extend(batches[sender])
            self.transport.ingest(round_no + 1, delivered)
            for message, _delay in self.transport.deliver(round_no + 1):
                self.protocol.absorb(message)
                self._inbox.append(message)
            self.context.metrics.close_round(round_no)
            self.rounds_run = round_no
            self.complete = len(self.protocol.known) >= self.n

            # Purge stale tables: late frames for already-processed
            # rounds (a suspect catching up) must not accumulate.
            for table in (self._batches, self._markers):
                for key in [k for k in table if k <= round_no]:
                    del table[key]

            live_peers = [p for p in all_peers if p not in self._dead]
            if (
                stop_on_closure
                and entered_complete
                and all(flags.get(peer, False) for peer in live_peers)
            ):
                break
        return self.rounds_run

    async def _wait_for_markers(
        self, round_no: int, peers: List[int], timeout: Optional[float]
    ) -> None:
        loop = asyncio.get_running_loop()
        deadline = (
            None if timeout is None or timeout <= 0 else loop.time() + timeout
        )
        while True:
            markers = self._markers.get(round_no, {})
            waiting = [
                p for p in peers if p not in self._dead and p not in markers
            ]
            if not waiting:
                for peer in peers:
                    if peer in markers and self._suspects.pop(peer, None):
                        logger.info(
                            "peer-recovered node=%s peer=%s round=%s",
                            self.node_id,
                            peer,
                            round_no,
                        )
                return
            self._progress.clear()
            markers = self._markers.get(round_no, {})
            waiting = [
                p for p in peers if p not in self._dead and p not in markers
            ]
            if not waiting:
                continue
            if deadline is None:
                await self._progress.wait()
                continue
            remaining = deadline - loop.time()
            if remaining <= 0:
                for peer in waiting:
                    self._mark_suspect(peer, round_no)
                return
            try:
                await asyncio.wait_for(self._progress.wait(), remaining)
            except asyncio.TimeoutError:
                pass

    async def _die(self, round_no: int) -> None:
        """Fail-stop: the live analog of ``FaultInjector.apply_crashes``.

        Runs at the top of *round_no*, i.e. after round ``R - 1``'s
        traffic was absorbed and before any round-``R`` execution —
        exactly where the engine freezes a crashing node.  Outbound
        writers are closed gracefully (FIN, buffers flushed) so every
        frame the simulator counts as delivered really lands; peers
        detect the death through marker timeouts and failed sends.
        """
        self.crashed_at = round_no
        logger.warning("crash-injected node=%s round=%s", self.node_id, round_no)
        for writer in list(self._writers.values()):
            await _close_writer(writer)
        self._writers.clear()
        for writer in list(self._inbound):
            await _close_writer(writer)
        self._inbound.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- outbound ------------------------------------------------------------------

    async def _send(self, peer: int, payload: Mapping) -> bool:
        """Deliver one frame to *peer*, re-dialing with capped backoff.

        Returns ``True`` on success.  A peer that exhausts every retry
        is marked dead (excluded from quorums and future sends) instead
        of letting a raw ``ConnectionRefusedError`` unwind the round
        loop and strand the rest of the fleet.
        """
        if peer in self._dead:
            return False
        last_error: Optional[BaseException] = None
        delay = self.retry_backoff
        for attempt in range(self.send_retries + 1):
            try:
                writer = self._writers.get(peer)
                if writer is None:
                    host, port = self._directory[peer]
                    _reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(host, port), self.dial_timeout
                    )
                    self._writers[peer] = writer
                    writer.write(encode_frame({"t": "hello", "from": self.node_id}))
                writer.write(encode_frame(payload))
                await writer.drain()
                return True
            except (ConnectionError, OSError, asyncio.TimeoutError) as error:
                last_error = error
                stale = self._writers.pop(peer, None)
                if stale is not None:
                    stale.close()
                if attempt < self.send_retries:
                    await asyncio.sleep(delay)
                    delay = min(delay * 2, self.retry_backoff_cap)
        attempts = self.send_retries + 1
        self._mark_dead(peer, f"send-failed after {attempts} attempts: {last_error!r}")
        return False

    # -- inbound -------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer_label: object = "?"
        self._inbound.add(writer)
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except WireError as error:
                    logger.warning(
                        "wire-error node=%s peer=%s error=%s",
                        self.node_id,
                        peer_label,
                        error,
                    )
                    break
                if frame is None:
                    break
                kind = frame.get("t")
                try:
                    if kind == "ptrs":
                        round_no, sender = validate_round_frame(frame)
                        messages = [wire_to_message(w) for w in frame["msgs"]]
                        per_sender = self._batches.setdefault(round_no, {})
                        per_sender.setdefault(sender, []).extend(messages)
                        self._progress.set()
                    elif kind == "eor":
                        round_no, sender = validate_round_frame(frame)
                        self._markers.setdefault(round_no, {})[sender] = bool(
                            frame["complete"]
                        )
                        self._progress.set()
                    elif kind == "hello":
                        peer_label = frame.get("from", "?")
                    else:
                        reply = self._answer_query(frame)
                        if reply is None:
                            logger.warning(
                                "unknown-frame node=%s peer=%s kind=%r",
                                self.node_id,
                                peer_label,
                                kind,
                            )
                            break
                        writer.write(encode_frame(reply))
                        await writer.drain()
                        if kind == "shutdown":
                            break
                except WireError as error:
                    logger.warning(
                        "protocol-error node=%s peer=%s kind=%r error=%s",
                        self.node_id,
                        peer_label,
                        kind,
                        error,
                    )
                    break
        except (ConnectionError, OSError) as error:
            logger.warning(
                "connection-error node=%s peer=%s error=%s",
                self.node_id,
                peer_label,
                error,
            )
        except Exception:
            # Handler death was previously invisible (asyncio swallows
            # server-callback exceptions into a log nobody configures).
            logger.exception(
                "handler-crashed node=%s peer=%s", self.node_id, peer_label
            )
        finally:
            self._inbound.discard(writer)
            await _close_writer(writer)

    def _answer_query(self, frame: Mapping) -> Optional[Mapping]:
        """Service-plane queries; the live analogs of :mod:`repro.apps`."""
        kind = frame["t"]
        known = self.protocol.known
        if kind == "census":
            return {
                "t": "census_reply",
                "from": self.node_id,
                "leader": min(known),
                "min": min(known),
                "max": max(known),
                "count": len(known),
            }
        if kind == "succ":
            of = frame.get("of", self.node_id)
            roster = sorted(known)
            later = [peer for peer in roster if peer > of]
            return {
                "t": "succ_reply",
                "from": self.node_id,
                "of": of,
                "succ": later[0] if later else roster[0],
            }
        if kind == "known":
            return {"t": "known_reply", "from": self.node_id, "ids": sorted(known)}
        if kind == "status":
            return {
                "t": "status_reply",
                "from": self.node_id,
                "round": self.rounds_run,
                "complete": self.complete,
                "n": self.n,
                "crashed_at": self.crashed_at,
                "restarted": self.restarted,
                "peers": {
                    str(peer): self.peer_state(peer)
                    for peer in sorted(self._directory)
                    if peer != self.node_id
                },
                "dead_reasons": {
                    str(peer): reason for peer, reason in sorted(self._dead.items())
                },
            }
        if kind == "shutdown":
            self.shutdown_requested.set()
            return {"t": "ok", "from": self.node_id}
        return None
