"""Concurrent query load against a serving live cluster.

After discovery closes, every live node can answer the service-plane
queries that motivate resource discovery in the first place — the fleet
summary of :mod:`repro.apps.census` and the ring-successor lookups of
:mod:`repro.apps.overlay`.  The load generator drives those queries
concurrently against the cluster's TCP endpoints and *checks the
answers*, not just the latencies:

* every ``census`` reply must agree with every other (same leader, same
  count — the fleet has one truth once discovery is complete);
* the ``succ`` replies, assembled across whatever endpoints happened to
  serve them, must form a single sorted ring over the fleet
  (:func:`repro.apps.overlay.verify_ring`).

A workload that passes proves the live service returns the same
structures the in-simulator apps compute.

Two demand shapes are supported: the default synthetic mix (uniform
``succ`` targets interleaved with ``census`` probes) and **trace
replay** — pass a :class:`repro.workloads.Trace` and the generator
issues exactly the trace's lookup demand (its dense targets mapped onto
the cluster roster), reporting latency percentiles split by popularity
decile so skew-sensitive tail behavior is visible.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..apps.overlay import verify_ring
from ..sim.rng import derive_rng
from .wire import encode_frame, read_frame


def _percentile(values: Sequence[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


@dataclass
class LoadgenReport:
    """Outcome of one load-generation run.

    ``census_consistent`` is three-valued: ``True`` (censuses sampled
    and unanimous), ``False`` (censuses sampled and disagreeing — a real
    failure), or ``None`` (the request plan happened to sample no census
    at all, e.g. ``requests=1`` issues only a ``succ`` probe).  A run is
    :attr:`ok` unless censuses actively disagree; "nothing sampled" is
    not a failure.

    Latencies are kept three ways: the flat list (aggregate
    percentiles), per worker (``worker_latencies_ms`` — a slow worker
    hides inside the aggregate tail, which is exactly where coordinated
    omission lives), and, for trace replays, per popularity decile
    (``decile_latencies_ms``, decile 0 = hottest 10% of targets).
    """

    requests: int
    errors: int
    duration_s: float
    census_consistent: Optional[bool]
    ring_valid: bool
    leader: Optional[int] = None
    count: Optional[int] = None
    census_samples: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    worker_latencies_ms: Dict[int, List[float]] = field(default_factory=dict)
    decile_latencies_ms: Dict[int, List[float]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            self.errors == 0
            and self.census_consistent is not False
            and self.ring_valid
        )

    def latency_percentile(self, fraction: float) -> float:
        return _percentile(self.latencies_ms, fraction)

    def percentiles(self) -> Dict[str, float]:
        """Aggregate p50/p95/p99 over every recorded latency."""
        return {
            "p50": _percentile(self.latencies_ms, 0.50),
            "p95": _percentile(self.latencies_ms, 0.95),
            "p99": _percentile(self.latencies_ms, 0.99),
        }

    def worker_percentiles(self) -> Dict[int, Dict[str, float]]:
        """p50/p95/p99 per worker, keyed by worker index."""
        return {
            worker: {
                "requests": float(len(values)),
                "p50": _percentile(values, 0.50),
                "p95": _percentile(values, 0.95),
                "p99": _percentile(values, 0.99),
            }
            for worker, values in sorted(self.worker_latencies_ms.items())
        }

    def decile_percentiles(self) -> Dict[int, Dict[str, float]]:
        """p50/p95/p99 per popularity decile (trace replays only)."""
        return {
            decile: {
                "requests": float(len(values)),
                "p50": _percentile(values, 0.50),
                "p95": _percentile(values, 0.95),
                "p99": _percentile(values, 0.99),
            }
            for decile, values in sorted(self.decile_latencies_ms.items())
        }


class _Worker:
    """One connection-reusing query client."""

    def __init__(self, endpoint: Tuple[str, int]) -> None:
        self.endpoint = endpoint
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def query(self, payload: Mapping) -> Mapping:
        if self._writer is None:
            host, port = self.endpoint
            self._reader, self._writer = await asyncio.open_connection(host, port)
        self._writer.write(encode_frame(payload))
        await self._writer.drain()
        reply = await read_frame(self._reader)
        if reply is None:
            raise ConnectionError(f"endpoint {self.endpoint} closed mid-query")
        return reply

    async def close(self) -> None:
        """Drain and release the connection (not just schedule the close).

        ``StreamWriter.close()`` alone leaks the transport until the
        loop collects it and races any final frame still buffered;
        awaiting ``wait_closed`` makes teardown deterministic.  Errors
        are swallowed — closing a connection the server already dropped
        is not a failure.
        """
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def _synthetic_plan(
    requests: int, roster: Sequence[int], seed: int
) -> List[Tuple[Mapping, Optional[int]]]:
    rng = derive_rng(seed, "loadgen")
    plan: List[Tuple[Mapping, Optional[int]]] = []
    for index in range(requests):
        if index % 2 == 0 and roster:
            of = roster[rng.randrange(len(roster))]
            plan.append(({"t": "succ", "of": of}, None))
        else:
            plan.append(({"t": "census"}, None))
    return plan


def _trace_plan(trace, roster: Sequence[int]) -> List[Tuple[Mapping, Optional[int]]]:
    from ..workloads import popularity_deciles

    if trace.n != len(roster):
        raise ValueError(
            f"trace is for n={trace.n} but the cluster roster has "
            f"{len(roster)} nodes"
        )
    deciles = popularity_deciles(trace)
    ordered = sorted(roster)
    return [
        ({"t": "succ", "of": ordered[event.target]}, deciles[event.target])
        for event in trace.events_of("lookup")
    ]


async def run_loadgen(
    endpoints: Sequence[Tuple[str, int]],
    *,
    requests: int = 100,
    concurrency: int = 8,
    seed: int = 0,
    trace=None,
) -> LoadgenReport:
    """Drive census/succ lookups over *concurrency* workers.

    Work is split round-robin across workers; each worker sticks to one
    (seed-chosen) endpoint per run.  By default *requests* queries mix
    ``census`` and ``succ``; with *trace* (a
    :class:`repro.workloads.Trace`) the plan is exactly the trace's
    lookup events — one ``succ`` per lookup, targets mapped through the
    sorted roster, *requests* ignored — and latencies are additionally
    split by popularity decile.  Every ``succ`` answer contributes an
    edge to a global successor map validated as one ring at the end.
    """
    if not endpoints:
        raise ValueError("loadgen needs at least one endpoint")
    if requests < 1 or concurrency < 1:
        raise ValueError("requests and concurrency must be >= 1")
    censuses: List[Mapping] = []
    successors: Dict[int, int] = {}
    latencies: List[float] = []
    worker_latencies: Dict[int, List[float]] = {}
    decile_latencies: Dict[int, List[float]] = {}
    errors = 0

    # One known-roster probe seeds the succ queries with real ids.
    probe = _Worker(endpoints[0])
    try:
        roster = sorted((await probe.query({"t": "known"}))["ids"])
    finally:
        await probe.close()

    if trace is not None:
        plan = _trace_plan(trace, roster)
    else:
        plan = _synthetic_plan(requests, roster, seed)
    plans: List[List[Tuple[Mapping, Optional[int]]]] = [
        [] for _ in range(concurrency)
    ]
    for index, entry in enumerate(plan):
        plans[index % concurrency].append(entry)

    async def drive(worker_index: int) -> None:
        nonlocal errors
        worker_rng = derive_rng(seed, "loadgen-worker", worker_index)
        worker = _Worker(endpoints[worker_rng.randrange(len(endpoints))])
        mine = worker_latencies.setdefault(worker_index, [])
        try:
            for payload, decile in plans[worker_index]:
                started = time.perf_counter()
                try:
                    reply = await worker.query(payload)
                except (OSError, ConnectionError):
                    errors += 1
                    continue
                elapsed = (time.perf_counter() - started) * 1e3
                latencies.append(elapsed)
                mine.append(elapsed)
                if decile is not None:
                    decile_latencies.setdefault(decile, []).append(elapsed)
                if reply["t"] == "census_reply":
                    censuses.append(reply)
                elif reply["t"] == "succ_reply":
                    successors[reply["of"]] = reply["succ"]
                else:
                    errors += 1
        finally:
            await worker.close()

    started = time.perf_counter()
    await asyncio.gather(*(drive(index) for index in range(concurrency)))
    duration = time.perf_counter() - started

    census_consistent: Optional[bool] = None
    if censuses:
        census_consistent = all(
            reply["leader"] == censuses[0]["leader"]
            and reply["count"] == censuses[0]["count"]
            for reply in censuses
        )
    # Partial maps can't be verified as a cycle; complete the edge set
    # from the probed roster before checking (sampled edges must agree).
    ring_valid = True
    if successors:
        expected = {
            peer: roster[(index + 1) % len(roster)]
            for index, peer in enumerate(roster)
        }
        ring_valid = verify_ring(expected) and all(
            expected.get(of) == succ for of, succ in successors.items()
        )
    return LoadgenReport(
        requests=len(plan),
        errors=errors,
        duration_s=duration,
        census_consistent=census_consistent,
        ring_valid=ring_valid,
        leader=censuses[0]["leader"] if censuses else None,
        count=censuses[0]["count"] if censuses else None,
        census_samples=len(censuses),
        latencies_ms=latencies,
        worker_latencies_ms=worker_latencies,
        decile_latencies_ms=decile_latencies,
    )
