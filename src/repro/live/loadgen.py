"""Concurrent query load against a serving live cluster.

After discovery closes, every live node can answer the service-plane
queries that motivate resource discovery in the first place — the fleet
summary of :mod:`repro.apps.census` and the ring-successor lookups of
:mod:`repro.apps.overlay`.  The load generator drives those queries
concurrently against the cluster's TCP endpoints and *checks the
answers*, not just the latencies:

* every ``census`` reply must agree with every other (same leader, same
  count — the fleet has one truth once discovery is complete);
* the ``succ`` replies, assembled across whatever endpoints happened to
  serve them, must form a single sorted ring over the fleet
  (:func:`repro.apps.overlay.verify_ring`).

A workload that passes proves the live service returns the same
structures the in-simulator apps compute.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..apps.overlay import verify_ring
from ..sim.rng import derive_rng
from .wire import encode_frame, read_frame


@dataclass
class LoadgenReport:
    """Outcome of one load-generation run.

    ``census_consistent`` is three-valued: ``True`` (censuses sampled
    and unanimous), ``False`` (censuses sampled and disagreeing — a real
    failure), or ``None`` (the request plan happened to sample no census
    at all, e.g. ``requests=1`` issues only a ``succ`` probe).  A run is
    :attr:`ok` unless censuses actively disagree; "nothing sampled" is
    not a failure.
    """

    requests: int
    errors: int
    duration_s: float
    census_consistent: Optional[bool]
    ring_valid: bool
    leader: Optional[int] = None
    count: Optional[int] = None
    census_samples: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.errors == 0
            and self.census_consistent is not False
            and self.ring_valid
        )

    def latency_percentile(self, fraction: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]


class _Worker:
    """One connection-reusing query client."""

    def __init__(self, endpoint: Tuple[str, int]) -> None:
        self.endpoint = endpoint
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def query(self, payload: Mapping) -> Mapping:
        if self._writer is None:
            host, port = self.endpoint
            self._reader, self._writer = await asyncio.open_connection(host, port)
        self._writer.write(encode_frame(payload))
        await self._writer.drain()
        reply = await read_frame(self._reader)
        if reply is None:
            raise ConnectionError(f"endpoint {self.endpoint} closed mid-query")
        return reply

    async def close(self) -> None:
        """Drain and release the connection (not just schedule the close).

        ``StreamWriter.close()`` alone leaks the transport until the
        loop collects it and races any final frame still buffered;
        awaiting ``wait_closed`` makes teardown deterministic.  Errors
        are swallowed — closing a connection the server already dropped
        is not a failure.
        """
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def run_loadgen(
    endpoints: Sequence[Tuple[str, int]],
    *,
    requests: int = 100,
    concurrency: int = 8,
    seed: int = 0,
) -> LoadgenReport:
    """Drive *requests* census/succ lookups over *concurrency* workers.

    Work is split round-robin across workers; each worker sticks to one
    (seed-chosen) endpoint per request, mixing ``census`` and ``succ``
    queries.  Every ``succ`` answer contributes an edge to a global
    successor map validated as one ring at the end.
    """
    if not endpoints:
        raise ValueError("loadgen needs at least one endpoint")
    if requests < 1 or concurrency < 1:
        raise ValueError("requests and concurrency must be >= 1")
    rng = derive_rng(seed, "loadgen")
    censuses: List[Mapping] = []
    successors: Dict[int, int] = {}
    latencies: List[float] = []
    errors = 0

    # One known-roster probe seeds the succ queries with real ids.
    probe = _Worker(endpoints[0])
    try:
        roster = sorted((await probe.query({"t": "known"}))["ids"])
    finally:
        await probe.close()

    plans: List[List[Mapping]] = [[] for _ in range(concurrency)]
    for index in range(requests):
        if index % 2 == 0 and roster:
            of = roster[rng.randrange(len(roster))]
            payload: Mapping = {"t": "succ", "of": of}
        else:
            payload = {"t": "census"}
        plans[index % concurrency].append(payload)

    async def drive(worker_index: int) -> None:
        nonlocal errors
        worker_rng = derive_rng(seed, "loadgen-worker", worker_index)
        worker = _Worker(endpoints[worker_rng.randrange(len(endpoints))])
        try:
            for payload in plans[worker_index]:
                started = time.perf_counter()
                try:
                    reply = await worker.query(payload)
                except (OSError, ConnectionError):
                    errors += 1
                    continue
                latencies.append((time.perf_counter() - started) * 1e3)
                if reply["t"] == "census_reply":
                    censuses.append(reply)
                elif reply["t"] == "succ_reply":
                    successors[reply["of"]] = reply["succ"]
                else:
                    errors += 1
        finally:
            await worker.close()

    started = time.perf_counter()
    await asyncio.gather(*(drive(index) for index in range(concurrency)))
    duration = time.perf_counter() - started

    census_consistent: Optional[bool] = None
    if censuses:
        census_consistent = all(
            reply["leader"] == censuses[0]["leader"]
            and reply["count"] == censuses[0]["count"]
            for reply in censuses
        )
    # Partial maps can't be verified as a cycle; complete the edge set
    # from the probed roster before checking (sampled edges must agree).
    ring_valid = True
    if successors:
        expected = {
            peer: roster[(index + 1) % len(roster)]
            for index, peer in enumerate(roster)
        }
        ring_valid = verify_ring(expected) and all(
            expected.get(of) == succ for of, succ in successors.items()
        )
    return LoadgenReport(
        requests=requests,
        errors=errors,
        duration_s=duration,
        census_consistent=census_consistent,
        ring_valid=ring_valid,
        leader=censuses[0]["leader"] if censuses else None,
        count=censuses[0]["count"] if censuses else None,
        census_samples=len(censuses),
        latencies_ms=latencies,
    )
