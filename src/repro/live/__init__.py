"""Live asyncio host for the protocol core.

The refactor that extracted a pure per-round transition out of
:class:`~repro.sim.node.ProtocolNode` pays off here: the exact same
protocol objects the synchronous simulator drives can be hosted as
concurrent asyncio tasks speaking a length-framed JSON wire protocol
over TCP loopback.  The simulator remains the reference host; this
package is the second one, and the two are held bit-identical — a live
cluster run reduces its final state to the same
:func:`~repro.graphs.knowledge.digest_knowledge` a seeded
:class:`~repro.sim.engine.SynchronousEngine` run produces.

Modules:

* :mod:`repro.live.wire` — frame codec (4-byte length prefix + JSON)
  and the :class:`~repro.sim.messages.Message` wire mapping.
* :mod:`repro.live.transport` — :class:`RealTransport`, a
  :class:`~repro.sim.transport.DeliveryModel` whose in-flight buffer is
  fed by the network instead of a simulated scheduler.
* :mod:`repro.live.node` — one node: TCP server, peer connections,
  marker-paced round loop, query service.
* :mod:`repro.live.cluster` — spin up n nodes on loopback, run
  discovery to closure, verify the digest against the simulator.
* :mod:`repro.live.loadgen` — concurrent census/overlay lookups
  against a serving cluster.
* :mod:`repro.live.faults` — scheduled live crashes
  (:class:`LiveFaultPlan`), held to the simulator's
  :class:`~repro.sim.faults.FaultInjector` prediction.
"""

from .cluster import ClusterReport, ClusterSpec, LiveCluster, reference_digest, run_cluster
from .faults import LiveFaultPlan
from .loadgen import LoadgenReport, run_loadgen
from .node import LiveNodeRuntime, default_marker_timeout
from .transport import LiveHostContext, RealTransport
from .wire import encode_frame, message_to_wire, read_frame, wire_to_message

__all__ = [
    "ClusterReport",
    "ClusterSpec",
    "LiveCluster",
    "LiveFaultPlan",
    "LiveHostContext",
    "LiveNodeRuntime",
    "LoadgenReport",
    "RealTransport",
    "default_marker_timeout",
    "encode_frame",
    "message_to_wire",
    "read_frame",
    "reference_digest",
    "run_cluster",
    "run_loadgen",
    "wire_to_message",
]
