"""Length-framed JSON wire protocol for the live host.

Every frame on a live connection is a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON encoding one object.  JSON
keeps the protocol inspectable with nothing but ``nc`` and ``python -m
json.tool``; the length prefix makes framing trivial and rejects
runaway frames early.

Frame types (the ``t`` key):

* ``hello``    — connection preamble: ``{"t", "from"}``.
* ``ptrs``     — one sender's protocol messages to one recipient for one
  round: ``{"t", "round", "from", "msgs": [wire messages]}``.
* ``eor``      — end-of-round marker: ``{"t", "round", "from",
  "complete"}``.  A node sends its ``eor`` for round *r* strictly after
  its round-*r* ``ptrs`` frames on every connection, so per-connection
  FIFO (TCP) guarantees a received marker covers all of that sender's
  round-*r* traffic.
* queries      — ``census`` / ``succ`` / ``known`` / ``status`` /
  ``shutdown``, answered with ``*_reply`` / ``ok`` frames on the same
  connection.

Protocol :class:`~repro.sim.messages.Message` objects map to compact
JSON objects (``k``/``s``/``r``/``i``/``d``).  JSON round-trips tuples
to lists; every shipped protocol's ``data`` consumer unpacks by
position or compares by value, so the substitution is behaviorally
invisible — new protocols hosted live must preserve that property.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Mapping, Optional, Tuple

from ..sim.messages import Message

#: Length-prefix layout: 4-byte big-endian unsigned frame length.
HEADER = struct.Struct(">I")

#: Hard ceiling on a frame body.  A full-knowledge push at n = 10^5 is
#: well under a megabyte of JSON; anything near this limit is a framing
#: bug, not a workload.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class WireError(RuntimeError):
    """A malformed or oversized frame."""


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """Serialize one frame: length prefix + compact JSON body."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return HEADER.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> Optional[Mapping[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise WireError("connection closed mid-header") from None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise WireError("connection closed mid-frame") from None
    try:
        payload = json.loads(body)
    except ValueError as error:
        raise WireError(f"undecodable frame body: {error}") from None
    if not isinstance(payload, dict) or "t" not in payload:
        raise WireError("frame body must be an object with a 't' key")
    return payload


def validate_round_frame(frame: Mapping[str, Any]) -> Tuple[int, int]:
    """Check a ``ptrs``/``eor`` frame's shape; return ``(round, sender)``.

    The round loop indexes its batch and marker tables by these two
    keys, so a frame missing either (or carrying a non-integral value)
    would previously kill the connection handler with a raw
    ``KeyError`` — invisibly, inside the asyncio server.  Centralising
    the check turns every malformed round frame into a
    :class:`WireError` the handler can log and survive.
    """
    kind = frame.get("t")
    round_no = frame.get("round")
    sender = frame.get("from")
    if not isinstance(round_no, int) or isinstance(round_no, bool) or round_no < 1:
        raise WireError(f"{kind} frame needs an integer 'round' >= 1, got {round_no!r}")
    if not isinstance(sender, int) or isinstance(sender, bool):
        raise WireError(f"{kind} frame needs an integer 'from', got {sender!r}")
    if kind == "ptrs" and not isinstance(frame.get("msgs"), list):
        raise WireError("ptrs frame needs a 'msgs' list")
    if kind == "eor" and "complete" not in frame:
        raise WireError("eor frame needs a 'complete' flag")
    return round_no, sender


def message_to_wire(message: Message) -> Mapping[str, Any]:
    """Render a protocol message as its wire object.

    ``ids`` keep their iteration order: the *learning* rule is a union,
    but protocols may read ``ids`` positionally — sublog's assignment
    batches pair ``ids`` with a parallel ``data`` list — so the wire
    must not canonicalize what the in-memory message preserves.
    """
    wire: dict = {
        "k": message.kind,
        "s": message.sender,
        "r": message.recipient,
        "i": list(message.ids),
    }
    if message.data is not None:
        wire["d"] = message.data
    return wire


def wire_to_message(wire: Mapping[str, Any]) -> Message:
    """Rebuild a protocol message from its wire object."""
    try:
        return Message(
            kind=wire["k"],
            sender=wire["s"],
            recipient=wire["r"],
            ids=tuple(wire["i"]),
            data=wire.get("d"),
        )
    except (KeyError, TypeError) as error:
        raise WireError(f"malformed wire message: {error}") from None
