"""Orchestrate a live cluster and hold it to the simulator's answer.

:class:`LiveCluster` spins up one :class:`~repro.live.node.LiveNodeRuntime`
per machine of a generated topology, all on loopback with ephemeral
ports (two-phase start: bind every server first, then publish the full
directory), runs discovery to closure or for an exact round budget, and
reduces the final state to the shared cross-host digest.

:func:`reference_digest` runs the same ``(topology, algorithm, seed)``
through :class:`~repro.sim.engine.SynchronousEngine` — closure mode
mirrors ``engine.run``; exact-round mode steps the engine the same
number of rounds the cluster ran, which is the *strict* form of the
cross-host check (mid-run states are only equal if every round matched
bit for bit, whereas completed runs all share the complete-knowledge
digest).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from ..algorithms.registry import get_algorithm
from ..graphs.generators import make_topology
from ..graphs.knowledge import digest_knowledge
from ..sim.engine import SynchronousEngine, default_max_rounds
from ..sim.rng import derive_rng
from .node import LiveNodeRuntime


@dataclass(frozen=True)
class ClusterSpec:
    """Everything that determines a live run (and its sim reference)."""

    n: int = 8
    topology: str = "kout"
    algorithm: str = "sublog"
    seed: int = 0
    #: Exact round budget.  ``None`` runs to closure; a number runs
    #: precisely that many rounds with closure-stopping disabled, for
    #: strict mid-run digest comparison.
    rounds: Optional[int] = None
    max_rounds: Optional[int] = None
    host: str = "127.0.0.1"
    params: Mapping[str, Any] = field(default_factory=dict)

    def build_graph(self):
        return make_topology(self.topology, self.n, seed=self.seed)

    def node_factory(self):
        return get_algorithm(self.algorithm).node_factory(**dict(self.params))

    def round_budget(self) -> int:
        if self.rounds is not None:
            return self.rounds
        if self.max_rounds is not None:
            return self.max_rounds
        return default_max_rounds(self.n)


@dataclass(frozen=True)
class ClusterReport:
    """Outcome of one live discovery run."""

    n: int
    algorithm: str
    seed: int
    rounds: int
    complete: bool
    digest: str
    messages: int


class LiveCluster:
    """A loopback fleet of live nodes running one discovery protocol."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.graph = spec.build_graph()
        factory = spec.node_factory()
        self.nodes: Dict[int, LiveNodeRuntime] = {}
        for node_id in self.graph.node_ids:
            protocol = factory(node_id)
            protocol.bind(
                self.graph.out(node_id), derive_rng(spec.seed, "node", node_id)
            )
            self.nodes[node_id] = LiveNodeRuntime(
                protocol, self.graph.n, seed=spec.seed, host=spec.host
            )

    @property
    def endpoints(self) -> List[Tuple[str, int]]:
        return [
            (runtime.host, runtime.port)
            for runtime in self.nodes.values()
            if runtime.port is not None
        ]

    async def start(self) -> None:
        """Bind every server, then publish the completed directory."""
        directory: Dict[int, Tuple[str, int]] = {}
        for node_id, runtime in self.nodes.items():
            directory[node_id] = await runtime.start()
        for runtime in self.nodes.values():
            runtime.set_directory(directory)

    async def run_discovery(self) -> ClusterReport:
        spec = self.spec
        budget = spec.round_budget()
        stop_on_closure = spec.rounds is None
        await asyncio.gather(
            *(
                runtime.run_discovery(budget, stop_on_closure=stop_on_closure)
                for runtime in self.nodes.values()
            )
        )
        return ClusterReport(
            n=self.graph.n,
            algorithm=spec.algorithm,
            seed=spec.seed,
            rounds=max(runtime.rounds_run for runtime in self.nodes.values()),
            complete=all(runtime.complete for runtime in self.nodes.values()),
            digest=self.digest(),
            messages=sum(
                runtime.context.metrics.total_messages
                for runtime in self.nodes.values()
            ),
        )

    def knowledge(self) -> Dict[int, Set[int]]:
        return {
            node_id: set(runtime.protocol.known)
            for node_id, runtime in self.nodes.items()
        }

    def digest(self) -> str:
        return digest_knowledge(self.knowledge())

    async def close(self) -> None:
        await asyncio.gather(*(runtime.close() for runtime in self.nodes.values()))


async def run_cluster(spec: ClusterSpec) -> ClusterReport:
    """Start, run to the spec's budget, and tear down one cluster."""
    cluster = LiveCluster(spec)
    await cluster.start()
    try:
        return await cluster.run_discovery()
    finally:
        await cluster.close()


def reference_digest(spec: ClusterSpec, rounds: Optional[int] = None) -> Tuple[str, int]:
    """Simulator digest for *spec*: ``(digest, rounds_executed)``.

    With *rounds* (or ``spec.rounds``) set, the engine is stepped exactly
    that many times — the strict mid-run comparison.  Otherwise the
    engine runs to its goal under the same round budget the cluster had.
    """
    engine = SynchronousEngine(
        spec.build_graph(),
        spec.node_factory(),
        seed=spec.seed,
        goal="strong",
        algorithm_name=spec.algorithm,
        params=dict(spec.params),
    )
    exact = rounds if rounds is not None else spec.rounds
    if exact is not None:
        for _ in range(exact):
            engine.step()
        return engine.knowledge_digest(), engine.round_no
    result = engine.run(max_rounds=spec.round_budget())
    del result
    return engine.knowledge_digest(), engine.round_no
