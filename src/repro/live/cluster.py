"""Orchestrate a live cluster and hold it to the simulator's answer.

:class:`LiveCluster` spins up one :class:`~repro.live.node.LiveNodeRuntime`
per machine of a generated topology, all on loopback with ephemeral
ports (two-phase start: bind every server first, then publish the full
directory), runs discovery to closure or for an exact round budget, and
reduces the final state to the shared cross-host digest.

:func:`reference_digest` runs the same ``(topology, algorithm, seed)``
through :class:`~repro.sim.engine.SynchronousEngine` — closure mode
mirrors ``engine.run``; exact-round mode steps the engine the same
number of rounds the cluster ran, which is the *strict* form of the
cross-host check (mid-run states are only equal if every round matched
bit for bit, whereas completed runs all share the complete-knowledge
digest).

Fault runs extend the same contract: a :class:`~repro.live.faults
.LiveFaultPlan` on the spec kills live nodes at scheduled round
boundaries, and the reference engine runs under the equivalent
:class:`~repro.sim.faults.FaultPlan` with a survivors-know-everyone
goal.  Both hosts freeze a victim at the top of its crash round, so the
digest comparison holds over the full fleet *and* over the survivor
slice (``survivors_only`` — what a real ``kill -9`` leaves observable).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from ..algorithms.registry import get_algorithm
from ..graphs.generators import make_topology
from ..graphs.knowledge import digest_knowledge
from ..sim.engine import SynchronousEngine, default_max_rounds
from ..sim.rng import derive_rng
from .faults import LiveFaultPlan
from .node import LiveNodeRuntime


@dataclass(frozen=True)
class ClusterSpec:
    """Everything that determines a live run (and its sim reference)."""

    n: int = 8
    topology: str = "kout"
    algorithm: str = "sublog"
    seed: int = 0
    #: Exact round budget.  ``None`` runs to closure; a number runs
    #: precisely that many rounds with closure-stopping disabled, for
    #: strict mid-run digest comparison.
    rounds: Optional[int] = None
    max_rounds: Optional[int] = None
    host: str = "127.0.0.1"
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Scheduled live crashes (and optional service-plane restarts).
    fault_plan: Optional[LiveFaultPlan] = None
    #: Per-round marker-wait deadline; ``None`` derives a default from
    #: the round budget, ``0`` or negative waits forever.
    marker_timeout: Optional[float] = None

    def build_graph(self):
        return make_topology(self.topology, self.n, seed=self.seed)

    def node_factory(self):
        return get_algorithm(self.algorithm).node_factory(**dict(self.params))

    def round_budget(self) -> int:
        if self.rounds is not None:
            return self.rounds
        if self.max_rounds is not None:
            return self.max_rounds
        return default_max_rounds(self.n)


@dataclass(frozen=True)
class ClusterReport:
    """Outcome of one live discovery run.

    Under a fault plan, ``complete`` and ``digest`` describe the
    *survivors* (crashed nodes can neither finish nor be read after a
    real kill); ``survivors``/``crashed`` record the fleet split.  With
    no faults the survivor set is the whole fleet and the semantics are
    unchanged.
    """

    n: int
    algorithm: str
    seed: int
    rounds: int
    complete: bool
    digest: str
    messages: int
    survivors: Tuple[int, ...] = ()
    crashed: Tuple[int, ...] = ()


class LiveCluster:
    """A loopback fleet of live nodes running one discovery protocol."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.graph = spec.build_graph()
        factory = spec.node_factory()
        plan = spec.fault_plan or LiveFaultPlan()
        unknown = sorted(set(plan.crash_rounds) - set(self.graph.node_ids))
        if unknown:
            raise ValueError(f"fault plan kills non-existent nodes: {unknown}")
        self.fault_plan = plan
        self.nodes: Dict[int, LiveNodeRuntime] = {}
        for node_id in self.graph.node_ids:
            protocol = factory(node_id)
            protocol.bind(
                self.graph.out(node_id), derive_rng(spec.seed, "node", node_id)
            )
            runtime = LiveNodeRuntime(
                protocol,
                self.graph.n,
                seed=spec.seed,
                host=spec.host,
                marker_timeout=spec.marker_timeout,
            )
            runtime.crash_at_round = plan.crash_rounds.get(node_id)
            self.nodes[node_id] = runtime

    @property
    def endpoints(self) -> List[Tuple[str, int]]:
        return [
            (runtime.host, runtime.port)
            for runtime in self.nodes.values()
            if runtime.port is not None
        ]

    def survivor_ids(self) -> Tuple[int, ...]:
        return tuple(
            node_id
            for node_id in sorted(self.nodes)
            if self.nodes[node_id].crashed_at is None
        )

    def crashed_ids(self) -> Tuple[int, ...]:
        return tuple(
            node_id
            for node_id in sorted(self.nodes)
            if self.nodes[node_id].crashed_at is not None
        )

    async def start(self) -> None:
        """Bind every server, then publish the completed directory."""
        directory: Dict[int, Tuple[str, int]] = {}
        for node_id, runtime in self.nodes.items():
            directory[node_id] = await runtime.start()
        for runtime in self.nodes.values():
            runtime.set_directory(directory)

    async def run_discovery(self) -> ClusterReport:
        spec = self.spec
        budget = spec.round_budget()
        stop_on_closure = spec.rounds is None
        tasks = [
            asyncio.create_task(
                runtime.run_discovery(budget, stop_on_closure=stop_on_closure),
                name=f"live-node-{node_id}",
            )
            for node_id, runtime in self.nodes.items()
        ]
        try:
            await asyncio.gather(*tasks)
        except BaseException:
            # One node's crash must fail the run, not strand the
            # siblings mid-marker-wait forever: cancel the fleet, wait
            # for the cancellations to land, then surface the original.
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise
        for node_id in self.fault_plan.restart:
            await self.nodes[node_id].restart_service()
        survivors = self.survivor_ids()
        return ClusterReport(
            n=self.graph.n,
            algorithm=spec.algorithm,
            seed=spec.seed,
            rounds=max(
                (self.nodes[node_id].rounds_run for node_id in survivors),
                default=0,
            ),
            complete=bool(survivors)
            and all(self.nodes[node_id].complete for node_id in survivors),
            digest=self.digest(survivors_only=True),
            messages=sum(
                runtime.context.metrics.total_messages
                for runtime in self.nodes.values()
            ),
            survivors=survivors,
            crashed=self.crashed_ids(),
        )

    def knowledge(self, *, survivors_only: bool = False) -> Dict[int, Set[int]]:
        return {
            node_id: set(runtime.protocol.known)
            for node_id, runtime in self.nodes.items()
            if not (survivors_only and runtime.crashed_at is not None)
        }

    def digest(self, *, survivors_only: bool = False) -> str:
        return digest_knowledge(self.knowledge(survivors_only=survivors_only))

    async def close(self) -> None:
        """Tear every node down; one node's failure must not skip the rest."""
        results = await asyncio.gather(
            *(runtime.close() for runtime in self.nodes.values()),
            return_exceptions=True,
        )
        failures = [r for r in results if isinstance(r, BaseException)]
        if failures:
            raise failures[0]


async def run_cluster(spec: ClusterSpec) -> ClusterReport:
    """Start, run to the spec's budget, and tear down one cluster."""
    cluster = LiveCluster(spec)
    await cluster.start()
    try:
        return await cluster.run_discovery()
    finally:
        await cluster.close()


def _survivors_complete_goal(engine: SynchronousEngine) -> bool:
    """Every alive node knows all n ids — the live survivors' closure rule.

    Crashed ids still count as knowledge (a survivor learns a dead
    node's id the same way it learns a live one's), which is exactly the
    live runtime's ``len(known) >= n`` completion test restricted to the
    nodes that can still act.
    """
    knowledge = engine.knowledge
    return all(len(knowledge[node]) == engine.n for node in engine.alive_nodes)


def reference_digest(spec: ClusterSpec, rounds: Optional[int] = None) -> Tuple[str, int]:
    """Simulator digest for *spec*: ``(digest, rounds_executed)``.

    With *rounds* (or ``spec.rounds``) set, the engine is stepped exactly
    that many times — the strict mid-run comparison.  Otherwise the
    engine runs to its goal under the same round budget the cluster had.

    When the spec carries a fault plan, the engine runs under the
    equivalent :class:`~repro.sim.faults.FaultPlan` with the
    survivors-know-everyone goal, and the returned digest covers the
    *survivors only* — the slice :meth:`LiveCluster.digest`
    (``survivors_only=True``) and :attr:`ClusterReport.digest` expose.
    """
    plan = spec.fault_plan or LiveFaultPlan()
    engine = SynchronousEngine(
        spec.build_graph(),
        spec.node_factory(),
        seed=spec.seed,
        goal=_survivors_complete_goal if plan.has_faults else "strong",
        algorithm_name=spec.algorithm,
        params=dict(spec.params),
        fault_plan=plan.to_sim_plan() if plan.has_faults else None,
    )
    exact = rounds if rounds is not None else spec.rounds
    if exact is not None:
        for _ in range(exact):
            engine.step()
    else:
        engine.run(max_rounds=spec.round_budget())
    if plan.has_faults:
        knowledge = engine.knowledge
        digest = digest_knowledge(
            {node: knowledge[node] for node in engine.alive_nodes}
        )
        return digest, engine.round_no
    return engine.knowledge_digest(), engine.round_no
