"""repro — a reproduction of "Distributed Resource Discovery in
Sub-Logarithmic Time" (Haeupler & Malkhi, PODC 2015).

Quickstart::

    import repro

    graph = repro.random_k_out(1024, seed=7, k=3)
    result = repro.discover(graph, algorithm="sublog", seed=7)
    print(result.rounds, result.messages)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
evaluation program.  The ⚠ note at the top of DESIGN.md documents that the
paper's own text was unavailable and how the reconstruction was scoped.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Union

from .algorithms import ALGORITHMS, algorithm_names, get_algorithm
from .core import ClusterSizeObserver, SubLogConfig, SubLogNode
from .oracle import InvariantOracle, OracleViolation, ScheduleScript
from .graphs import (
    ID_SPACES,
    TOPOLOGIES,
    KnowledgeGraph,
    make_topology,
    path,
    preferential_attachment,
    random_k_out,
)
from .sim import (
    DELIVERY_MODELS,
    AdversarialScheduler,
    BoundedJitter,
    DeliveryModel,
    FaultPlan,
    JoinPlan,
    KnowledgeSizeObserver,
    Lockstep,
    Message,
    Observer,
    PartitionWindow,
    PerLinkLatency,
    ProtocolNode,
    ProtocolViolation,
    RunResult,
    SynchronousEngine,
    TraceObserver,
    crash_fraction_plan,
    late_join_workload,
    parse_delivery,
)
from .workloads import (
    WORKLOADS,
    Trace,
    TraceWorkload,
    load_trace,
    make_workload,
    run_trace_workload,
    save_trace,
    workload_names,
)

try:  # single-source: pyproject.toml is authoritative once installed
    from importlib.metadata import PackageNotFoundError, version

    __version__ = version("repro")
except PackageNotFoundError:  # running from a source tree without install
    __version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "DELIVERY_MODELS",
    "ID_SPACES",
    "TOPOLOGIES",
    "AdversarialScheduler",
    "BoundedJitter",
    "ClusterSizeObserver",
    "DeliveryModel",
    "FaultPlan",
    "InvariantOracle",
    "JoinPlan",
    "KnowledgeGraph",
    "KnowledgeSizeObserver",
    "Lockstep",
    "Message",
    "Observer",
    "OracleViolation",
    "PartitionWindow",
    "PerLinkLatency",
    "ProtocolNode",
    "ProtocolViolation",
    "RunResult",
    "ScheduleScript",
    "SubLogConfig",
    "SubLogNode",
    "SynchronousEngine",
    "Trace",
    "TraceObserver",
    "TraceWorkload",
    "WORKLOADS",
    "__version__",
    "algorithm_names",
    "crash_fraction_plan",
    "discover",
    "get_algorithm",
    "late_join_workload",
    "load_trace",
    "make_topology",
    "make_workload",
    "parse_delivery",
    "path",
    "preferential_attachment",
    "random_k_out",
    "run_trace_workload",
    "save_trace",
    "workload_names",
]


def discover(
    graph: Union[KnowledgeGraph, Mapping[int, Iterable[int]]],
    algorithm: str = "sublog",
    *,
    seed: int = 0,
    goal: str = "strong",
    fault_plan: Optional[FaultPlan] = None,
    join_plan: Optional[JoinPlan] = None,
    jitter: int = 0,
    delivery: Optional[Union[str, DeliveryModel]] = None,
    observers: Iterable[Observer] = (),
    max_rounds: Optional[int] = None,
    enforce_legality: bool = True,
    fast_path: bool = True,
    backend: Optional[str] = None,
    profile: bool = False,
    **params: Any,
) -> RunResult:
    """Run one resource-discovery protocol to completion.

    Args:
        graph: Initial knowledge graph (a :class:`KnowledgeGraph` or a
            mapping ``{node_id: out_neighbors}``).
        algorithm: Registry name — see :func:`algorithm_names`.
        seed: Master seed for all protocol and fault randomness.
        goal: ``"strong"``, ``"weak"``, or ``"strong_alive"``.
        fault_plan: Optional fault injection plan.
        join_plan: Optional dynamic-join plan (machines dormant until
            their join round — see :mod:`repro.sim.churn`).
        jitter: Bounded-asynchrony knob: messages take 1 .. 1 + jitter
            rounds to arrive (0 = classic synchronous delivery).  Alias
            for ``delivery=BoundedJitter(jitter)``.
        delivery: Delivery model — a
            :class:`repro.sim.transport.DeliveryModel` or a spec string
            such as ``"jitter:2"``, ``"adversarial:3"``, ``"perlink:2"``,
            or ``"partition:4-8"`` (see
            :func:`repro.sim.transport.parse_delivery`).  Mutually
            exclusive with ``jitter``.
        observers: Read-only run observers.
        max_rounds: Round cap; defaults to the algorithm's registered cap.
        enforce_legality: Verify every message against the communication
            model (default on; benchmarks may disable for speed).
        fast_path: Run on the engine's dense bitmask path (default on —
            it is differential-tested bit-identical to the legacy path;
            pass ``False`` to use the reference implementation).
        backend: Explicit engine backend (``"legacy"``, ``"fast"``, or
            ``"vector"`` — the bit-packed numpy kernel for large n).
            ``None`` defers to ``fast_path``; an explicit value wins.
        profile: Record per-phase engine timings into
            ``result.extra["phase_timings"]``.
        **params: Algorithm parameters (for ``sublog``/``detmerge`` these
            are :class:`SubLogConfig` fields; e.g. ``resilient=True``).

    Returns:
        The :class:`RunResult` with rounds/messages/pointers and any
        observer extras.
    """
    spec = get_algorithm(algorithm)
    engine = SynchronousEngine(
        graph,
        spec.node_factory(**params),
        seed=seed,
        goal=goal,
        fault_plan=fault_plan,
        join_plan=join_plan,
        jitter=jitter,
        delivery=delivery,
        observers=observers,
        enforce_legality=enforce_legality,
        fast_path=fast_path,
        backend=backend,
        profile=profile,
        algorithm_name=algorithm,
        params=params,
    )
    n = engine.n
    cap = max_rounds if max_rounds is not None else spec.round_cap(n)
    return engine.run(max_rounds=cap)
