"""Global aggregates at weak-discovery cost.

Many coordination tasks need only a *summary* of the fleet — how many
machines exist, the extreme identifiers (classic leader election), a
seeded sample for monitoring.  All of these are computable by the
coordinator that weak discovery produces, for O(n·polylog) pointers,
without ever paying the Θ(n²) bill of full (strong) discovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..algorithms.registry import get_algorithm
from ..graphs.knowledge import KnowledgeGraph
from ..sim.engine import SynchronousEngine
from ..sim.metrics import RunResult
from ..sim.rng import derive_rng


@dataclass(frozen=True)
class Census:
    """Fleet summary computed by the discovery coordinator."""

    coordinator: int
    count: int
    min_id: int
    max_id: int
    sample: Tuple[int, ...]
    discovery: RunResult

    @property
    def elected_leader(self) -> int:
        """Smallest identifier — the classic deterministic election rule."""
        return self.min_id


def discovery_params(algorithm: str, delivery: Optional[str]) -> dict:
    """Per-algorithm engine params for an app-level discovery run.

    The sublog variants run coordinator-only completion (the weak goal
    needs no completion broadcast — a knob only that family has) and,
    under a hostile delivery model, every algorithm gets its registered
    ``hostile_params`` hardening — the same policy the CLI applies.
    """
    params: dict = (
        {"completion": "none"} if algorithm in ("sublog", "sublogcoin") else {}
    )
    if delivery is not None and delivery != "lockstep":
        params.update(get_algorithm(algorithm).hostile_params)
    return params


def leader_census(
    graph: KnowledgeGraph,
    seed: int = 0,
    algorithm: str = "sublog",
    sample_size: int = 5,
    max_rounds: Optional[int] = None,
    delivery: Optional[str] = None,
) -> Census:
    """Run weak discovery on *graph* and summarize the fleet.

    Args:
        graph: Weakly connected initial knowledge graph.
        seed: Master seed (drives discovery and the census sample).
        algorithm: Discovery algorithm (``sublog`` by default).
        sample_size: Size of the deterministic random sample included in
            the census (capped at the fleet size).
        max_rounds: Round cap override.
        delivery: Delivery-model spec string (``None`` = lockstep); see
            :func:`repro.sim.transport.parse_delivery`.

    Raises:
        RuntimeError: If discovery does not complete within the cap.
    """
    if sample_size < 0:
        raise ValueError(f"sample_size must be >= 0, got {sample_size}")
    spec = get_algorithm(algorithm)
    params = discovery_params(algorithm, delivery)
    engine = SynchronousEngine(
        graph,
        spec.node_factory(**params),
        seed=seed,
        goal="weak",
        delivery=delivery,
        algorithm_name=algorithm,
        params=params,
    )
    cap = max_rounds if max_rounds is not None else spec.round_cap(graph.n)
    result = engine.run(max_rounds=cap)
    if not result.completed:
        raise RuntimeError(f"weak discovery did not complete within {cap} rounds")
    coordinator = engine.weak_leader()
    assert coordinator is not None
    roster: List[int] = sorted(engine.knowledge[coordinator])
    rng = derive_rng(seed, "census-sample")
    size = min(sample_size, len(roster))
    sample = tuple(sorted(rng.sample(roster, size))) if size else ()
    return Census(
        coordinator=coordinator,
        count=len(roster),
        min_id=roster[0],
        max_id=roster[-1],
        sample=sample,
        discovery=result,
    )
