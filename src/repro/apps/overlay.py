"""Structured overlays from a discovered roster.

The two classic constructions that motivate resource discovery:

* **Sorted identifier ring** — the backbone of consistent-hashing DHTs.
  After *weak* discovery (a coordinator knows everyone), the coordinator
  computes each peer's ring successor and ships it out: O(n) pointers
  total, versus the Θ(n²) a full roster broadcast would cost.
* **k-ary broadcast tree** — a dissemination tree rooted anywhere,
  depth ⌈log_k n⌉, for later one-to-all messaging.

The construction functions are pure (roster in, structure out) so they
are directly testable; :func:`form_ring` is the end-to-end convenience
that runs weak discovery on a knowledge graph and returns the ring plus
the measured discovery cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..algorithms.registry import get_algorithm
from ..graphs.knowledge import KnowledgeGraph
from ..sim.engine import SynchronousEngine
from ..sim.metrics import RunResult
from .census import discovery_params


def ring_successors(roster: Sequence[int]) -> Dict[int, int]:
    """Successor map of the sorted identifier ring over *roster*."""
    if not roster:
        raise ValueError("cannot build a ring over an empty roster")
    ordered = sorted(set(roster))
    if len(ordered) != len(roster):
        raise ValueError("roster contains duplicate identifiers")
    return {
        peer: ordered[(index + 1) % len(ordered)]
        for index, peer in enumerate(ordered)
    }


def verify_ring(successors: Mapping[int, int]) -> bool:
    """True iff *successors* is a single cycle covering all its keys."""
    if not successors:
        return False
    start = min(successors)
    seen = set()
    current = start
    for _ in range(len(successors)):
        if current in seen or current not in successors:
            return False
        seen.add(current)
        current = successors[current]
    return current == start and len(seen) == len(successors)


def broadcast_tree(
    roster: Sequence[int], root: Optional[int] = None, arity: int = 2
) -> Dict[int, List[int]]:
    """Children map of a k-ary dissemination tree over *roster*.

    The root defaults to the smallest identifier; remaining peers fill a
    complete k-ary tree in sorted order (deterministic, so every peer can
    recompute the same tree locally from the same roster).
    """
    if arity < 1:
        raise ValueError(f"arity must be >= 1, got {arity}")
    ordered = sorted(set(roster))
    if not ordered:
        raise ValueError("cannot build a tree over an empty roster")
    if root is None:
        root = ordered[0]
    if root not in set(ordered):
        raise ValueError(f"root {root} is not in the roster")
    ordered.remove(root)
    ordered.insert(0, root)
    children: Dict[int, List[int]] = {peer: [] for peer in ordered}
    for index in range(1, len(ordered)):
        parent = ordered[(index - 1) // arity]
        children[parent].append(ordered[index])
    return children


def tree_depth(children: Mapping[int, List[int]], root: int) -> int:
    """Depth of the tree rooted at *root* (single node = 0)."""
    depth = 0
    frontier = [root]
    visited = {root}
    while True:
        next_frontier: List[int] = []
        for node in frontier:
            for child in children.get(node, []):
                if child in visited:
                    raise ValueError("children map contains a cycle")
                visited.add(child)
                next_frontier.append(child)
        if not next_frontier:
            return depth
        frontier = next_frontier
        depth += 1


@dataclass(frozen=True)
class RingResult:
    """Outcome of :func:`form_ring`."""

    coordinator: int
    successors: Mapping[int, int]
    discovery: RunResult

    @property
    def n(self) -> int:
        return len(self.successors)

    @property
    def distribution_pointers(self) -> int:
        """Pointers the coordinator ships to install the ring: one
        successor per peer (itself excluded)."""
        return self.n - 1

    @property
    def naive_broadcast_pointers(self) -> int:
        """What a full roster broadcast would have cost instead."""
        return self.n * (self.n - 1)


def form_ring(
    graph: KnowledgeGraph,
    seed: int = 0,
    algorithm: str = "sublog",
    max_rounds: Optional[int] = None,
    delivery: Optional[str] = None,
) -> RingResult:
    """Run weak discovery on *graph* and build the sorted ring.

    ``delivery`` selects a delivery-model spec string (``None`` =
    lockstep).  Raises ``RuntimeError`` when discovery does not complete
    within the round cap (it always completes on weakly connected inputs
    with the shipped algorithms; the error guards misuse).
    """
    spec = get_algorithm(algorithm)
    params = discovery_params(algorithm, delivery)
    engine = SynchronousEngine(
        graph,
        spec.node_factory(**params),
        seed=seed,
        goal="weak",
        delivery=delivery,
        algorithm_name=algorithm,
        params=params,
    )
    cap = max_rounds if max_rounds is not None else spec.round_cap(graph.n)
    result = engine.run(max_rounds=cap)
    if not result.completed:
        raise RuntimeError(
            f"weak discovery did not complete within {cap} rounds"
        )
    coordinator = engine.weak_leader()
    assert coordinator is not None
    roster = sorted(engine.knowledge[coordinator])
    return RingResult(
        coordinator=coordinator,
        successors=ring_successors(roster),
        discovery=result,
    )


def expected_tree_depth(n: int, arity: int = 2) -> int:
    """Closed-form depth of the complete k-ary tree over n nodes."""
    if n <= 1:
        return 0
    if arity == 1:
        return n - 1
    # Smallest d with (arity^(d+1) - 1) / (arity - 1) >= n.
    depth = 0
    capacity = 1
    layer = 1
    while capacity < n:
        layer *= arity
        capacity += layer
        depth += 1
    return depth
