"""Applications built on resource discovery.

Resource discovery is rarely the end goal: it is the bootstrap step that
makes structured overlays, censuses, and coordination possible.  This
package contains the canonical downstream constructions, implemented over
the library's public API:

* :mod:`repro.apps.overlay` — sorted rings and k-ary broadcast trees from
  a discovered roster (the DHT/overlay bootstrap of the HBLL motivation).
* :mod:`repro.apps.census` — leader-computed global aggregates (count,
  extrema) at weak-discovery cost, without the Θ(n²) strong-discovery
  pointer bill.
"""

from .census import Census, leader_census
from .overlay import (
    RingResult,
    broadcast_tree,
    expected_tree_depth,
    form_ring,
    ring_successors,
    tree_depth,
    verify_ring,
)

__all__ = [
    "Census",
    "RingResult",
    "broadcast_tree",
    "expected_tree_depth",
    "form_ring",
    "leader_census",
    "ring_successors",
    "tree_depth",
    "verify_ring",
]
