"""Seeded, replayable demand-trace workloads (the T9 load-realism suite).

Three layers:

* :mod:`repro.workloads.trace` — the schema-versioned :class:`Trace`
  object and its byte-stable JSONL persistence;
* :mod:`repro.workloads.generators` — the ``WORKLOADS`` catalog of
  seeded generators (Zipf lookups, diurnal curves, flash crowds,
  correlated regional failures, dynamic-graph edge churn);
* :mod:`repro.workloads.driver` — replay through the synchronous engine
  (any backend) and popularity-decile demand accounting.

Quickstart::

    from repro.workloads import make_workload, run_trace_workload

    trace = make_workload("zipf", 256, seed=7, alpha=1.2)
    report = run_trace_workload(trace, "sublog", seed=7)
    print(report.served_at_arrival_fraction, report.lookups["mean_delay"])

See docs/WORKLOADS.md for the trace schema, the generator catalog, and
the replay guarantees.
"""

from .driver import (
    POPULARITY_DECILES,
    LookupLoadObserver,
    TraceRunReport,
    TraceWorkload,
    fault_plan_from_trace,
    knowledge_injections,
    popularity_deciles,
    run_trace_workload,
)
from .generators import (
    WORKLOADS,
    apportion,
    diurnal_curve,
    make_workload,
    workload_names,
    zipf_weights,
)
from .trace import (
    EVENT_KINDS,
    TRACE_SCHEMA,
    Trace,
    TraceEvent,
    load_trace,
    save_trace,
)

__all__ = [
    "EVENT_KINDS",
    "POPULARITY_DECILES",
    "TRACE_SCHEMA",
    "WORKLOADS",
    "LookupLoadObserver",
    "Trace",
    "TraceEvent",
    "TraceRunReport",
    "TraceWorkload",
    "apportion",
    "diurnal_curve",
    "fault_plan_from_trace",
    "knowledge_injections",
    "load_trace",
    "make_workload",
    "popularity_deciles",
    "run_trace_workload",
    "save_trace",
    "workload_names",
    "zipf_weights",
]
