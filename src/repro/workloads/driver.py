"""Replaying a demand trace through the synchronous engine.

The driver turns the three event kinds of a
:class:`~repro.workloads.trace.Trace` into the engine's existing seams:

* **crash events** are synthesized into a
  :class:`repro.sim.faults.FaultPlan` (:func:`fault_plan_from_trace`),
  so correlated regional failures ride the same injection path as every
  other fault experiment;
* **edge events** become out-of-band knowledge injections
  (:meth:`repro.sim.engine.SynchronousEngine.inject_knowledge`) applied
  at the start of their round — the dynamic-graph mode;
* **lookup events** are read-only demand, evaluated against ground-truth
  knowledge by :class:`LookupLoadObserver`: a lookup is *served* once
  its attach machine knows its target, and the observer records how many
  rounds late each request was, split by popularity decile.

Trace events use dense indices ``0 .. n-1``; the driver maps index ``i``
to the ``i``-th smallest machine id of the replayed graph, so one trace
is portable across id namespaces.  Replay is deterministic: the same
(trace, algorithm, graph, seed) reaches the same knowledge digest on
every engine backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..algorithms import get_algorithm
from ..graphs import KnowledgeGraph, make_topology
from ..sim.engine import SynchronousEngine
from ..sim.faults import FaultPlan
from ..sim.metrics import RunResult
from ..sim.observers import Observer
from ..sim.transport import DeliveryModel
from .trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    pass

#: Popularity is split into this many demand buckets (decile 0 = hottest).
POPULARITY_DECILES = 10


def popularity_deciles(trace: Trace) -> Dict[int, int]:
    """Map each looked-up target (dense index) to its popularity decile.

    Targets are ranked by total demand (ties broken by index for
    determinism); decile 0 holds the hottest tenth of the *looked-up*
    targets.  Machines receiving no demand are absent.
    """
    counts = trace.lookup_counts()
    ranked = sorted(counts, key=lambda target: (-counts[target], target))
    total = len(ranked)
    return {
        target: min(
            POPULARITY_DECILES - 1, rank * POPULARITY_DECILES // total
        )
        for rank, target in enumerate(ranked)
    }


def fault_plan_from_trace(
    trace: Trace, node_ids: Optional[Sequence[int]] = None
) -> Optional[FaultPlan]:
    """Synthesize a :class:`FaultPlan` from a trace's crash events.

    *node_ids* (sorted machine ids of the replayed graph) translates
    dense victim indices into machine ids; omitted, victims keep their
    dense indices (correct for dense id spaces).  Returns ``None`` when
    the trace schedules no crashes.  A machine crashing twice is a
    malformed trace and raises.
    """
    crash_rounds: Dict[int, int] = {}
    for event in trace.events_of("crash"):
        victim = node_ids[event.node] if node_ids is not None else event.node
        if victim in crash_rounds:
            raise ValueError(f"trace crashes machine {victim} twice")
        crash_rounds[victim] = event.round_no
    if not crash_rounds:
        return None
    return FaultPlan(crash_rounds=crash_rounds, seed=trace.seed)


def knowledge_injections(
    trace: Trace, node_ids: Optional[Sequence[int]] = None
) -> Dict[int, List[Tuple[int, Tuple[int, ...]]]]:
    """Group edge events into a per-round injection schedule.

    Returns ``{round_no: [(machine, new_contact_ids), ...]}`` with
    deterministic ordering (machines ascending, targets ascending),
    translated through *node_ids* when given.
    """
    staged: Dict[int, Dict[int, List[int]]] = {}
    for event in trace.events_of("edge"):
        node = node_ids[event.node] if node_ids is not None else event.node
        target = node_ids[event.target] if node_ids is not None else event.target
        staged.setdefault(event.round_no, {}).setdefault(node, []).append(target)
    return {
        round_no: [
            (node, tuple(sorted(set(targets))))
            for node, targets in sorted(by_node.items())
        ]
        for round_no, by_node in sorted(staged.items())
    }


class LookupLoadObserver(Observer):
    """Evaluates a trace's lookup demand against ground-truth knowledge.

    A lookup ``(round r, attach a, target t)`` is *served at arrival* if
    machine ``a`` knows ``t`` by the end of round ``r``; otherwise it
    stays pending and its service delay is the number of extra rounds
    until ``a`` learns ``t``.  Lookups attached to a crashed machine
    fail (a dead server answers nothing).  Lookups arriving after the
    run already stopped are evaluated against the final knowledge state
    with zero delay — by then the fleet is in steady state.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._deciles = popularity_deciles(trace)
        # (arrival, attach, target, decile) in dense coordinates until setup.
        self._schedule: Dict[int, List[Tuple[int, int, int]]] = {}
        self._pending: List[Tuple[int, int, int, int]] = []
        self._delays: List[int] = []
        self._decile_requests: Dict[int, int] = {}
        self._decile_hits: Dict[int, int] = {}
        self._decile_delays: Dict[int, List[int]] = {}
        self.requests = 0
        self.served_at_arrival = 0
        self.served = 0
        self.failed = 0
        self.unserved = 0
        self._node_ids: Sequence[int] = ()

    def on_setup(self, engine: "SynchronousEngine") -> None:
        node_ids = engine.node_ids
        if self.trace.n != engine.n:
            raise ValueError(
                f"trace built for n={self.trace.n} replayed against n={engine.n}"
            )
        self._node_ids = node_ids
        for event in self.trace.events_of("lookup"):
            decile = self._deciles[event.target]
            self._schedule.setdefault(event.round_no, []).append(
                (node_ids[event.node], node_ids[event.target], decile)
            )
            self.requests += 1
            self._decile_requests[decile] = self._decile_requests.get(decile, 0) + 1

    # -- evaluation ----------------------------------------------------------------

    def _record(self, decile: int, delay: int) -> None:
        self.served += 1
        self._delays.append(delay)
        self._decile_delays.setdefault(decile, []).append(delay)
        if delay == 0:
            self.served_at_arrival += 1
            self._decile_hits[decile] = self._decile_hits.get(decile, 0) + 1

    def on_round_end(self, engine: "SynchronousEngine", round_no: int) -> None:
        arrivals = self._schedule.pop(round_no, ())
        if not arrivals and not self._pending:
            return
        knowledge = engine.knowledge
        crashed = engine.crashed_nodes
        still_pending: List[Tuple[int, int, int, int]] = []
        for arrival, attach, target, decile in self._pending:
            if attach in crashed:
                self.failed += 1
            elif target in knowledge[attach]:
                self._record(decile, round_no - arrival)
            else:
                still_pending.append((arrival, attach, target, decile))
        self._pending = still_pending
        for attach, target, decile in arrivals:
            if attach in crashed:
                self.failed += 1
            elif target in knowledge[attach]:
                self._record(decile, 0)
            else:
                self._pending.append((round_no, attach, target, decile))

    def on_finish(self, engine: "SynchronousEngine", completed: bool) -> None:
        # Pending lookups the run never satisfied.
        self.unserved += len(self._pending)
        self._pending = []
        # Demand scheduled past the final round: the run is over, so the
        # knowledge state these lookups see is the final one.
        knowledge = engine.knowledge
        crashed = engine.crashed_nodes
        for arrivals in self._schedule.values():
            for attach, target, decile in arrivals:
                if attach in crashed:
                    self.failed += 1
                elif target in knowledge[attach]:
                    self._record(decile, 0)
                else:
                    self.unserved += 1
        self._schedule = {}

    # -- reporting -----------------------------------------------------------------

    @staticmethod
    def _percentile(values: Sequence[int], fraction: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return float(ordered[index])

    def stats(self) -> Dict[str, Any]:
        by_decile: Dict[int, Dict[str, float]] = {}
        for decile in sorted(self._decile_requests):
            requests = self._decile_requests[decile]
            hits = self._decile_hits.get(decile, 0)
            delays = self._decile_delays.get(decile, [])
            by_decile[decile] = {
                "requests": requests,
                "served_at_arrival": hits / requests,
                "mean_delay": (sum(delays) / len(delays)) if delays else 0.0,
                "p95_delay": self._percentile(delays, 0.95),
            }
        return {
            "requests": self.requests,
            "served": self.served,
            "served_at_arrival": self.served_at_arrival,
            "failed": self.failed,
            "unserved": self.unserved,
            "mean_delay": (sum(self._delays) / len(self._delays))
            if self._delays
            else 0.0,
            "p95_delay": self._percentile(self._delays, 0.95),
            "by_decile": by_decile,
        }

    def extra(self) -> Dict[str, Any]:
        return {"lookup_load": self.stats()}


@dataclass(frozen=True)
class TraceRunReport:
    """Everything one trace replay produced."""

    result: RunResult
    lookups: Dict[str, Any]
    injected_contacts: int
    digest: str

    @property
    def served_at_arrival_fraction(self) -> float:
        requests = self.lookups["requests"]
        return self.lookups["served_at_arrival"] / requests if requests else 1.0


class TraceWorkload:
    """One trace bound to one replay configuration.

    Construction resolves the graph, fault plan, and injection schedule;
    :meth:`run` builds a fresh engine and replays — so the same workload
    object can be replayed on several backends for differential checks.
    """

    def __init__(
        self,
        trace: Trace,
        algorithm: str = "sublog",
        *,
        topology: str = "kout",
        graph: Optional[Union[KnowledgeGraph, Mapping[int, Iterable[int]]]] = None,
        seed: int = 0,
        goal: str = "strong",
        delivery: Optional[Union[str, DeliveryModel]] = None,
        include_faults: bool = True,
        topology_params: Optional[Mapping[str, Any]] = None,
        **params: Any,
    ) -> None:
        self.trace = trace
        self.algorithm = algorithm
        self.seed = seed
        self.goal = goal
        self.delivery = delivery
        self.params = dict(params)
        if graph is None:
            graph = make_topology(
                topology, trace.n, seed=seed, **dict(topology_params or {})
            )
        elif not isinstance(graph, KnowledgeGraph):
            graph = KnowledgeGraph(graph)
        if len(graph) != trace.n:
            raise ValueError(
                f"trace built for n={trace.n} replayed against a graph of "
                f"n={len(graph)}"
            )
        self.graph = graph
        node_ids = graph.node_ids
        self.fault_plan = (
            fault_plan_from_trace(trace, node_ids) if include_faults else None
        )
        self.injections = knowledge_injections(trace, node_ids)

    def run(
        self,
        *,
        backend: Optional[str] = None,
        enforce_legality: bool = True,
        max_rounds: Optional[int] = None,
        observers: Iterable[Observer] = (),
    ) -> TraceRunReport:
        """Replay the trace once; deterministic given the construction."""
        spec = get_algorithm(self.algorithm)
        lookup_observer = LookupLoadObserver(self.trace)
        engine = SynchronousEngine(
            self.graph,
            spec.node_factory(**self.params),
            seed=self.seed,
            goal=self.goal,
            fault_plan=self.fault_plan,
            delivery=self.delivery,
            observers=[lookup_observer, *observers],
            enforce_legality=enforce_legality,
            backend=backend,
            algorithm_name=self.algorithm,
            params=self.params,
        )
        cap = max_rounds if max_rounds is not None else spec.round_cap(engine.n)
        injections = self.injections
        injected = 0
        completed = engine.goal_reached()
        while not completed and engine.round_no < cap:
            for node, contacts in injections.get(engine.round_no + 1, ()):
                if engine.inject_knowledge(node, contacts):
                    injected += len(contacts)
            engine.step()
            completed = engine.goal_reached()
        # Finalize through run(): with the cap already reached it executes
        # zero rounds but fires observer on_finish and builds the result.
        result = engine.run(max_rounds=engine.round_no)
        return TraceRunReport(
            result=result,
            lookups=lookup_observer.stats(),
            injected_contacts=injected,
            digest=engine.knowledge_digest(),
        )


def run_trace_workload(
    trace: Trace,
    algorithm: str = "sublog",
    *,
    backend: Optional[str] = None,
    enforce_legality: bool = True,
    max_rounds: Optional[int] = None,
    observers: Iterable[Observer] = (),
    **workload_kwargs: Any,
) -> TraceRunReport:
    """One-shot convenience wrapper: build a :class:`TraceWorkload`, run it."""
    workload = TraceWorkload(trace, algorithm, **workload_kwargs)
    return workload.run(
        backend=backend,
        enforce_legality=enforce_legality,
        max_rounds=max_rounds,
        observers=observers,
    )
