"""The seeded workload-generator catalog.

Each generator renders one realistic demand pattern into a
:class:`~repro.workloads.trace.Trace`.  All randomness flows through
:func:`repro.sim.rng.derive_rng` with a per-generator salt path, so a
``(generator, n, seed, params)`` tuple always produces the same trace —
across processes, platforms, and Python versions.

The catalog (``WORKLOADS``):

* ``zipf`` — lookup popularity follows a Zipf law: the rank-``r`` target
  receives weight ``1 / (r + 1)^alpha`` ("Searching in Unstructured
  Overlays Using Local Knowledge and Gossip", arXiv 1403.3017, motivates
  exactly this skew for content lookups).  ``alpha=0`` degenerates to
  uniform demand, the control cell of the T9 skew sweep.
* ``diurnal`` — arrival *rate* follows a sinusoidal day/night curve;
  per-round request counts are apportioned by largest remainder, so the
  total is exact and every round's load is provably inside
  ``[1 - amplitude, 1 + amplitude]`` times the mean.
* ``flash_crowd`` — a baseline uniform trickle with a step burst: for
  ``spike_width`` rounds the arrival rate multiplies by ``spike_factor``
  and every burst request targets one of ``hot_keys`` hot machines.
* ``correlated_failures`` — whole *regions* fail together: victims are
  drawn from ``victim_clusters`` randomly-chosen clusters of the
  ``node % clusters`` membership rule (deliberately the same rule as the
  ``clustered`` topology generator, so a trace built for a clustered
  graph crashes machines that really are topological neighbours).
* ``dynamic_graph`` — the input graph evolves mid-run: new contact
  edges appear at round starts ("Discovery through Gossip",
  arXiv 1202.2092, studies discovery under exactly this kind of graph
  dynamics).

Generators record their *resolved* parameters into ``Trace.params``, so
the emitted manifest is a complete regeneration recipe.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..sim.rng import derive_rng
from .trace import Trace, TraceEvent

#: Registry mapping generator name to its build function
#: ``(n, *, seed=0, **params) -> Trace``.
WORKLOADS: Dict[str, Callable[..., Trace]] = {}


def _register(name: str) -> Callable[[Callable[..., Trace]], Callable[..., Trace]]:
    def wrap(function: Callable[..., Trace]) -> Callable[..., Trace]:
        WORKLOADS[name] = function
        return function

    return wrap


def workload_names() -> List[str]:
    return sorted(WORKLOADS)


def make_workload(name: str, n: int, *, seed: int = 0, **params: Any) -> Trace:
    """Build the named workload trace for *n* machines."""
    try:
        build = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; expected one of {workload_names()}"
        ) from None
    return build(n, seed=seed, **params)


# -- shared numeric helpers (exported for the property tests) -----------------------


def zipf_weights(n: int, alpha: float) -> List[float]:
    """Unnormalized Zipf popularity weights by rank: ``1 / (r + 1)^alpha``.

    Strictly positive and monotone non-increasing in rank for every
    ``alpha >= 0`` — the invariant the hypothesis suite pins.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    return [1.0 / float(rank + 1) ** alpha for rank in range(n)]


def diurnal_curve(rounds: int, period: int, amplitude: float) -> List[float]:
    """Per-round relative load of a sinusoidal day/night cycle.

    Every value is inside ``[1 - amplitude, 1 + amplitude]`` by
    construction, and the curve has mean ~1 over whole periods.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError(f"amplitude must be in [0, 1], got {amplitude}")
    return [
        1.0 + amplitude * math.sin(2.0 * math.pi * index / period)
        for index in range(rounds)
    ]


def apportion(total: int, weights: Sequence[float]) -> List[int]:
    """Split *total* integer units proportionally to *weights*.

    Largest-remainder apportionment with deterministic tie-breaking
    (larger fractional part first, then lower index), so the result is a
    pure function of its inputs and sums to *total* exactly.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    mass = float(sum(weights))
    if mass <= 0.0:
        raise ValueError("weights must have positive total mass")
    quotas = [total * weight / mass for weight in weights]
    counts = [int(quota) for quota in quotas]
    shortfall = total - sum(counts)
    order = sorted(
        range(len(weights)), key=lambda index: (counts[index] - quotas[index], index)
    )
    for index in order[:shortfall]:
        counts[index] += 1
    return counts


def _weighted_rank(rng, cumulative: Sequence[float]) -> int:
    """Draw a rank from a cumulative-weight table (binary search)."""
    point = rng.random() * cumulative[-1]
    low, high = 0, len(cumulative) - 1
    while low < high:
        mid = (low + high) // 2
        if cumulative[mid] <= point:
            low = mid + 1
        else:
            high = mid
    return low


# -- the catalog --------------------------------------------------------------------


@_register("zipf")
def zipf_lookups(
    n: int,
    *,
    seed: int = 0,
    requests: Optional[int] = None,
    alpha: float = 1.1,
    rounds: int = 12,
) -> Trace:
    """Zipf-skewed lookup demand, uniformly spread over *rounds*.

    The rank→machine assignment is a seeded permutation, so the hot
    targets are not simply the low-numbered machines (which tend to be
    structurally special in synthetic topologies).
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    resolved_requests = 4 * n if requests is None else requests
    if resolved_requests < 0:
        raise ValueError(f"requests must be >= 0, got {resolved_requests}")
    rng = derive_rng(seed, "workload", "zipf", n, alpha, rounds, resolved_requests)
    ranked = list(range(n))
    rng.shuffle(ranked)
    weights = zipf_weights(n, alpha)
    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)
    events = []
    for _ in range(resolved_requests):
        round_no = rng.randint(1, rounds)
        target = ranked[_weighted_rank(rng, cumulative)]
        attach = rng.randrange(n)
        events.append(TraceEvent(round_no, "lookup", attach, target))
    return Trace(
        generator="zipf",
        n=n,
        seed=seed,
        params={"alpha": alpha, "requests": resolved_requests, "rounds": rounds},
        events=tuple(events),
    )


@_register("diurnal")
def diurnal_lookups(
    n: int,
    *,
    seed: int = 0,
    requests: Optional[int] = None,
    rounds: int = 48,
    period: int = 24,
    amplitude: float = 0.8,
) -> Trace:
    """Uniform-target lookups whose arrival rate follows a day/night curve."""
    resolved_requests = 4 * n if requests is None else requests
    if resolved_requests < 0:
        raise ValueError(f"requests must be >= 0, got {resolved_requests}")
    curve = diurnal_curve(rounds, period, amplitude)
    per_round = apportion(resolved_requests, curve)
    rng = derive_rng(
        seed, "workload", "diurnal", n, rounds, period, amplitude, resolved_requests
    )
    events = []
    for index, count in enumerate(per_round):
        round_no = index + 1
        for _ in range(count):
            attach = rng.randrange(n)
            target = rng.randrange(n)
            events.append(TraceEvent(round_no, "lookup", attach, target))
    return Trace(
        generator="diurnal",
        n=n,
        seed=seed,
        params={
            "amplitude": amplitude,
            "period": period,
            "requests": resolved_requests,
            "rounds": rounds,
        },
        events=tuple(events),
    )


@_register("flash_crowd")
def flash_crowd(
    n: int,
    *,
    seed: int = 0,
    requests: Optional[int] = None,
    rounds: int = 24,
    spike_round: Optional[int] = None,
    spike_width: int = 2,
    spike_factor: float = 8.0,
    hot_keys: Optional[int] = None,
) -> Trace:
    """A uniform trickle with a step burst of hot-key demand.

    During rounds ``[spike_round, spike_round + spike_width)`` the
    arrival rate multiplies by *spike_factor* and every burst request
    targets one of *hot_keys* seed-chosen machines — the flash-crowd
    shape (everyone suddenly wants the same few things).
    ``spike_factor=1`` degenerates to the uniform baseline, giving the
    T9 flash table its control row.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    resolved_requests = 4 * n if requests is None else requests
    if resolved_requests < 0:
        raise ValueError(f"requests must be >= 0, got {resolved_requests}")
    resolved_spike = max(1, rounds // 3) if spike_round is None else spike_round
    if not 1 <= resolved_spike <= rounds:
        raise ValueError(
            f"spike_round must be in [1, {rounds}], got {resolved_spike}"
        )
    if spike_width < 1:
        raise ValueError(f"spike_width must be >= 1, got {spike_width}")
    if spike_factor < 1.0:
        raise ValueError(f"spike_factor must be >= 1, got {spike_factor}")
    hot_keys = min(4, n) if hot_keys is None else hot_keys
    if not 1 <= hot_keys <= n:
        raise ValueError(f"hot_keys must be in [1, {n}], got {hot_keys}")
    spike_rounds = frozenset(
        range(resolved_spike, min(rounds, resolved_spike + spike_width - 1) + 1)
    )
    weights = [
        spike_factor if (index + 1) in spike_rounds else 1.0
        for index in range(rounds)
    ]
    per_round = apportion(resolved_requests, weights)
    rng = derive_rng(
        seed,
        "workload",
        "flash-crowd",
        n,
        rounds,
        resolved_spike,
        spike_width,
        spike_factor,
        hot_keys,
        resolved_requests,
    )
    hot = rng.sample(range(n), hot_keys)
    events = []
    for index, count in enumerate(per_round):
        round_no = index + 1
        in_spike = round_no in spike_rounds
        for _ in range(count):
            attach = rng.randrange(n)
            target = hot[rng.randrange(hot_keys)] if in_spike else rng.randrange(n)
            events.append(TraceEvent(round_no, "lookup", attach, target))
    return Trace(
        generator="flash_crowd",
        n=n,
        seed=seed,
        params={
            "hot_keys": hot_keys,
            "requests": resolved_requests,
            "rounds": rounds,
            "spike_factor": spike_factor,
            "spike_round": resolved_spike,
            "spike_width": spike_width,
        },
        events=tuple(events),
    )


@_register("correlated_failures")
def correlated_failures(
    n: int,
    *,
    seed: int = 0,
    clusters: int = 8,
    victim_clusters: int = 1,
    fail_fraction: float = 0.9,
    failure_round: int = 6,
    stagger: int = 2,
) -> Trace:
    """Regional crash bursts keyed to the ``node % clusters`` membership.

    The membership rule matches the ``clustered`` topology generator
    exactly, so replaying this trace against ``make_topology("clustered",
    n, clusters=clusters)`` crashes machines that share a region of the
    actual graph.  Each victim crashes at ``failure_round + offset`` with
    a seeded ``offset < stagger`` (a real regional outage is near- but
    not perfectly simultaneous).
    """
    if not 1 <= clusters <= n:
        raise ValueError(f"clusters must be in [1, {n}], got {clusters}")
    if not 1 <= victim_clusters <= clusters:
        raise ValueError(
            f"victim_clusters must be in [1, {clusters}], got {victim_clusters}"
        )
    if not 0.0 <= fail_fraction <= 1.0:
        raise ValueError(f"fail_fraction must be in [0, 1], got {fail_fraction}")
    if failure_round < 1:
        raise ValueError(f"failure_round must be >= 1, got {failure_round}")
    if stagger < 1:
        raise ValueError(f"stagger must be >= 1, got {stagger}")
    rng = derive_rng(
        seed,
        "workload",
        "correlated-failures",
        n,
        clusters,
        victim_clusters,
        fail_fraction,
        failure_round,
        stagger,
    )
    victim_regions = sorted(rng.sample(range(clusters), victim_clusters))
    events = []
    for region in victim_regions:
        members = [node for node in range(n) if node % clusters == region]
        count = int(len(members) * fail_fraction)
        for victim in sorted(rng.sample(members, count)):
            events.append(
                TraceEvent(failure_round + rng.randrange(stagger), "crash", victim)
            )
    return Trace(
        generator="correlated_failures",
        n=n,
        seed=seed,
        params={
            "clusters": clusters,
            "fail_fraction": fail_fraction,
            "failure_round": failure_round,
            "stagger": stagger,
            "victim_clusters": victim_clusters,
        },
        events=tuple(events),
    )


@_register("dynamic_graph")
def dynamic_graph(
    n: int,
    *,
    seed: int = 0,
    edges_per_round: int = 4,
    churn_rounds: int = 8,
    start_round: int = 2,
) -> Trace:
    """Mid-run contact-edge churn: the input graph evolves under the run.

    For *churn_rounds* consecutive rounds starting at *start_round*,
    *edges_per_round* fresh directed contact edges appear (a machine
    learns another machine's address out of band).  Knowledge being
    monotone, edge *additions* are the sound half of graph dynamics —
    removals would violate the model's ball-containment lemma.
    """
    if edges_per_round < 1:
        raise ValueError(f"edges_per_round must be >= 1, got {edges_per_round}")
    if churn_rounds < 1:
        raise ValueError(f"churn_rounds must be >= 1, got {churn_rounds}")
    if start_round < 1:
        raise ValueError(f"start_round must be >= 1, got {start_round}")
    if n < 2:
        raise ValueError(f"dynamic_graph needs n >= 2, got {n}")
    rng = derive_rng(
        seed, "workload", "dynamic-graph", n, edges_per_round, churn_rounds, start_round
    )
    events = []
    for offset in range(churn_rounds):
        round_no = start_round + offset
        for _ in range(edges_per_round):
            node = rng.randrange(n)
            target = rng.randrange(n - 1)
            if target >= node:
                target += 1
            events.append(TraceEvent(round_no, "edge", node, target))
    return Trace(
        generator="dynamic_graph",
        n=n,
        seed=seed,
        params={
            "churn_rounds": churn_rounds,
            "edges_per_round": edges_per_round,
            "start_round": start_round,
        },
        events=tuple(events),
    )
