"""Schema-versioned, replayable demand traces.

A :class:`Trace` is the unit the workload suite moves around: an ordered,
immutable sequence of timed events (skewed lookups, correlated crashes,
mid-run contact edges) plus the full recipe that produced it (generator
name, ``n``, seed, resolved parameters).  Two guarantees make traces a
sound experiment input:

* **Replayability** — a trace is pure data.  Feeding the same trace to
  the engine twice (any backend) yields byte-identical knowledge
  digests; regenerating it from its recorded recipe yields the same
  trace, event for event.
* **Byte-stable persistence** — :func:`save_trace` writes canonical
  JSONL (sorted keys, one fsync), so the same trace always serializes to
  the same bytes and ``cmp`` is a valid determinism check.  The on-disk
  shape is the journal-record format of :mod:`repro.bench.store`
  (manifest first, one record per line), and :func:`load_trace` reads it
  back through :func:`repro.bench.store.read_journal`, inheriting its
  torn-tail tolerance.

Events carry *dense indices* ``0 .. n-1``, not concrete machine ids:
the driver (:mod:`repro.workloads.driver`) maps index ``i`` to the
``i``-th smallest machine id of whatever graph the trace is replayed
against, so one trace is portable across id namespaces and topologies
of the same size.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

from ..bench.store import read_journal

#: Schema version stamped into trace manifests; bump when the record
#: shapes change incompatibly.
TRACE_SCHEMA = 1

#: The manifest ``kind`` tag distinguishing trace files from sweep
#: journals (both are manifest-first JSONL).
TRACE_KIND = "workload-trace"

#: Recognized event kinds, in canonical sort order:
#:
#: * ``"lookup"`` — a client attached at ``node`` asks for ``target``'s
#:   address at the start of ``round_no`` (read-only demand: served once
#:   the attach node knows the target).
#: * ``"crash"`` — ``node`` fail-stops at the start of ``round_no``
#:   (``target`` unused); synthesized into a
#:   :class:`repro.sim.faults.FaultPlan`.
#: * ``"edge"`` — a new contact edge ``node -> target`` appears at the
#:   start of ``round_no`` (the dynamic-graph mode: the overlay evolves
#:   out of band, gossip-style).
EVENT_KINDS = ("lookup", "crash", "edge")

_KIND_ORDER = {kind: order for order, kind in enumerate(EVENT_KINDS)}


@dataclass(frozen=True)
class TraceEvent:
    """One timed workload event, in dense-index coordinates.

    ``round_no`` is 1-based and names the round at whose *start* the
    event takes effect, matching the fault injector's crash semantics.
    """

    round_no: int
    kind: str
    node: int
    target: Optional[int] = None

    def sort_key(self) -> Tuple[int, int, int, int]:
        return (
            self.round_no,
            _KIND_ORDER[self.kind],
            self.node,
            -1 if self.target is None else self.target,
        )

    def to_record(self) -> Dict[str, Any]:
        return {
            "type": "event",
            "round": self.round_no,
            "kind": self.kind,
            "node": self.node,
            "target": self.target,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "TraceEvent":
        return cls(
            round_no=record["round"],
            kind=record["kind"],
            node=record["node"],
            target=record.get("target"),
        )


@dataclass(frozen=True)
class Trace:
    """An immutable, canonically-ordered demand trace.

    ``params`` records the generator's *resolved* parameters (defaults
    included), so the manifest alone is a complete regeneration recipe.
    """

    generator: str
    n: int
    seed: int
    params: Mapping[str, Any] = field(default_factory=dict)
    events: Tuple[TraceEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"trace n must be >= 1, got {self.n}")
        for event in self.events:
            if event.kind not in _KIND_ORDER:
                raise ValueError(
                    f"unknown event kind {event.kind!r}; expected one of {EVENT_KINDS}"
                )
        ordered = tuple(sorted(self.events, key=TraceEvent.sort_key))
        object.__setattr__(self, "events", ordered)
        object.__setattr__(self, "params", dict(self.params))
        for event in ordered:
            if event.round_no < 1:
                raise ValueError(f"event round must be >= 1, got {event.round_no}")
            if not 0 <= event.node < self.n:
                raise ValueError(
                    f"event node {event.node} outside dense range [0, {self.n})"
                )
            needs_target = event.kind in ("lookup", "edge")
            if needs_target:
                if event.target is None:
                    raise ValueError(f"{event.kind} event requires a target")
                if not 0 <= event.target < self.n:
                    raise ValueError(
                        f"event target {event.target} outside dense range [0, {self.n})"
                    )
            elif event.target is not None:
                raise ValueError(f"{event.kind} event must not carry a target")

    # -- views ---------------------------------------------------------------------

    @property
    def horizon(self) -> int:
        """The last round any event touches (0 for an empty trace)."""
        return max((event.round_no for event in self.events), default=0)

    def events_of(self, kind: str) -> Tuple[TraceEvent, ...]:
        if kind not in _KIND_ORDER:
            raise ValueError(f"unknown event kind {kind!r}")
        return tuple(event for event in self.events if event.kind == kind)

    def lookup_counts(self) -> Dict[int, int]:
        """Total demand per target (dense index), over the whole trace."""
        counts: Dict[int, int] = {}
        for event in self.events:
            if event.kind == "lookup":
                counts[event.target] = counts.get(event.target, 0) + 1
        return counts

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    # -- canonical serialization ---------------------------------------------------

    def _header(self) -> Dict[str, Any]:
        return {
            "generator": self.generator,
            "n": self.n,
            "params": dict(self.params),
            "seed": self.seed,
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON rendering of recipe + events.

        The digest is stored in the manifest and re-verified on load, so
        a trace file cannot silently drift from its recipe.
        """
        hasher = hashlib.sha256()
        hasher.update(json.dumps(self._header(), sort_keys=True).encode())
        for event in self.events:
            hasher.update(b"\n")
            hasher.update(json.dumps(event.to_record(), sort_keys=True).encode())
        return hasher.hexdigest()

    def to_records(self) -> Sequence[Dict[str, Any]]:
        """Manifest-first record sequence (the JSONL lines, as dicts)."""
        manifest: Dict[str, Any] = {
            "type": "manifest",
            "schema": TRACE_SCHEMA,
            "kind": TRACE_KIND,
            "events": len(self.events),
            "digest": self.digest(),
        }
        manifest.update(self._header())
        return [manifest] + [event.to_record() for event in self.events]

    @classmethod
    def from_records(
        cls, records: Sequence[Mapping[str, Any]], source: str = "<records>"
    ) -> "Trace":
        if not records or records[0].get("type") != "manifest":
            raise ValueError(f"{source}: no manifest record; not a workload trace")
        manifest = records[0]
        if manifest.get("kind") != TRACE_KIND:
            raise ValueError(
                f"{source}: manifest kind {manifest.get('kind')!r} is not "
                f"{TRACE_KIND!r}"
            )
        schema = manifest.get("schema")
        if schema != TRACE_SCHEMA:
            raise ValueError(
                f"{source}: unsupported trace schema {schema!r} "
                f"(expected {TRACE_SCHEMA})"
            )
        events = tuple(
            TraceEvent.from_record(record)
            for record in records[1:]
            if record.get("type") == "event"
        )
        if len(events) != manifest.get("events"):
            raise ValueError(
                f"{source}: manifest promises {manifest.get('events')} events, "
                f"found {len(events)} (truncated file?)"
            )
        trace = cls(
            generator=manifest["generator"],
            n=manifest["n"],
            seed=manifest["seed"],
            params=dict(manifest.get("params", {})),
            events=events,
        )
        digest = manifest.get("digest")
        if digest != trace.digest():
            raise ValueError(
                f"{source}: trace digest mismatch (manifest {digest!r}, "
                f"recomputed {trace.digest()!r})"
            )
        return trace


def save_trace(trace: Trace, path: Union[str, Path]) -> int:
    """Write *trace* as canonical JSONL; returns the number of events.

    One open, one fsync: unlike the incremental sweep journal, a trace is
    complete before it is written.  Identical traces always produce
    byte-identical files (``json.dumps`` with sorted keys is
    deterministic), which the determinism tests and the CI smoke rely on.
    """
    lines = [
        json.dumps(record, sort_keys=True) for record in trace.to_records()
    ]
    with open(path, "w", encoding="utf-8") as stream:
        stream.write("\n".join(lines) + "\n")
        stream.flush()
        os.fsync(stream.fileno())
    return len(trace.events)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`, verifying schema,
    event count, and digest."""
    return Trace.from_records(read_journal(path), source=str(path))
