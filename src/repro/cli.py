"""Command-line interface: ``python -m repro`` / ``repro-discover``.

Sub-commands:

* ``list`` — show registered algorithms, topologies, and experiments.
* ``run`` — one discovery run, printing the complexity summary::

      python -m repro run --topology kout --n 512 --algorithm sublog

* ``experiment`` — regenerate an evaluation table/figure (or ``all``)::

      python -m repro experiment T1 --scale small
      python -m repro experiment all --scale full --out results/

* ``fuzz`` — run seeded adversarial schedules under the invariant
  oracle (see :mod:`repro.oracle`), shrinking any failure to a minimal
  replayable script::

      python -m repro fuzz --cases 50 --seed 7 --out fuzz.jsonl
      python -m repro fuzz --replay violation.json

* ``serve`` — host the protocol core in the live asyncio runtime: a
  TCP-loopback cluster of concurrent node tasks, optionally verified
  digest-for-digest against a seeded simulator run::

      python -m repro serve --n 8 --algorithm sublog --verify-digest
      python -m repro serve --n 8 --kill 3@3 --verify-digest  # fault injection

* ``loadgen`` — concurrent census/ring lookups against a live cluster
  (self-hosted, or ``--endpoints`` for one already running)::

      python -m repro loadgen --n 8 --requests 200 --concurrency 8
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from .algorithms.registry import ALGORITHMS, algorithm_names
from .bench.experiments import EXPERIMENTS, get_experiment
from .bench.seeds import SCALES, bench_scale
from .graphs.generators import TOPOLOGIES, make_topology
from .sim.faults import FaultPlan
from .sim.transport import DELIVERY_MODELS, parse_delivery
from .workloads import workload_names


def _cmd_list(_: argparse.Namespace) -> int:
    print("algorithms:")
    for name in algorithm_names():
        print(f"  {name:12s} {ALGORITHMS[name].description}")
    print("topologies:")
    for name in sorted(TOPOLOGIES):
        print(f"  {name}")
    print("delivery models:")
    for name in sorted(DELIVERY_MODELS):
        print(f"  {name}")
    print("experiments:")
    for experiment_id, module in EXPERIMENTS.items():
        print(f"  {experiment_id:4s} {module.TITLE}")
    print("workloads:")
    for name in workload_names():
        print(f"  {name}")
    print(f"scales: {', '.join(SCALES)}")
    return 0


def _delivery_spec(spec: str) -> str:
    """argparse validator: check a --delivery spec early, keep the string."""
    try:
        parse_delivery(spec)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return spec


def _cmd_run(args: argparse.Namespace) -> int:
    from . import discover  # late import keeps --help fast
    from .analysis.convergence import curve_from_history
    from .sim.observers import KnowledgeSizeObserver
    from .sim.trace import TraceObserver

    graph = make_topology(args.topology, args.n, seed=args.seed, id_space=args.id_space)
    fault_plan = FaultPlan(loss_rate=args.loss, seed=args.seed) if args.loss else None
    hostile_delivery = bool(args.delivery) and args.delivery != "lockstep"
    params = {}
    if args.loss or hostile_delivery:
        params = dict(ALGORITHMS[args.algorithm].hostile_params)
    observers = []
    trace_observer = None
    size_observer = None
    if args.trace:
        trace_observer = TraceObserver()
        observers.append(trace_observer)
    if args.sparkline:
        size_observer = KnowledgeSizeObserver()
        observers.append(size_observer)
    if args.backend is not None and args.legacy_engine:
        print("error: pass either --backend or --legacy-engine, not both",
              file=sys.stderr)
        return 2
    backend = args.backend
    if backend is None and args.legacy_engine:
        backend = "legacy"
    started = time.perf_counter()
    result = discover(
        graph,
        algorithm=args.algorithm,
        seed=args.seed,
        goal=args.goal,
        fault_plan=fault_plan,
        delivery=args.delivery,
        observers=observers,
        backend=backend,
        profile=args.profile,
        **params,
    )
    elapsed = time.perf_counter() - started
    print(f"algorithm : {result.algorithm}")
    print(f"topology  : {args.topology} (n={args.n}, seed={args.seed})")
    print(f"goal      : {args.goal}")
    if args.delivery:
        print(f"delivery  : {args.delivery}")
    print(f"completed : {result.completed}")
    print(f"rounds    : {result.rounds}")
    print(f"messages  : {result.messages:,}")
    print(f"pointers  : {result.pointers:,}")
    print(f"bits      : {result.bits:,}")
    if result.dropped_messages:
        reasons = ", ".join(
            f"{reason}={count:,}"
            for reason, count in sorted(result.dropped_by_reason.items())
        )
        print(f"dropped   : {result.dropped_messages:,} ({reasons})")
    print(f"wall time : {elapsed:.2f}s")
    if args.profile:
        timings = result.extra.get("phase_timings", {})
        total = sum(timings.values()) or 1.0
        print("profile   : " + "  ".join(
            f"{phase}={seconds * 1e3:.1f}ms ({seconds / total:.0%})"
            for phase, seconds in timings.items()
        ))
    if size_observer is not None:
        curve = curve_from_history(size_observer.history, n=args.n)
        print(f"converge  : {curve.sparkline()}")
        stones = curve.milestones()
        print(
            "milestones: "
            + "  ".join(f"{name}={value}" for name, value in stones.items())
        )
    if trace_observer is not None:
        with open(args.trace, "w") as stream:
            count = trace_observer.write_jsonl(stream)
        print(f"trace     : {count:,} events -> {args.trace}")
    return 0 if result.completed else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    scale = bench_scale(args.scale)
    if args.experiment.lower() == "all":
        ids = list(EXPERIMENTS)
    else:
        ids = [args.experiment.upper()]
    out_dir: Optional[Path] = Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    options = None
    journal = getattr(args, "journal", None)
    if args.workers or args.retries or args.cell_timeout or journal:
        from .bench.sweeprun import SweepOptions

        options = SweepOptions(
            workers=args.workers,
            retries=args.retries,
            cell_timeout=args.cell_timeout,
            journal=Path(journal) if journal else None,
            resume=getattr(args, "resume", False),
        )
    failures = 0
    for experiment_id in ids:
        module = get_experiment(experiment_id)
        started = time.perf_counter()
        # Older drivers take only (scale); pass options where accepted.
        if options is not None and "options" in inspect.signature(module.run).parameters:
            report = module.run(scale, options=options)
        else:
            report = module.run(scale)
        elapsed = time.perf_counter() - started
        text = report.render()
        print(text)
        print(f"({experiment_id} took {elapsed:.1f}s at scale={scale.name})\n")
        if out_dir:
            (out_dir / f"{experiment_id}.txt").write_text(text)
    return failures


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .bench.runner import build_cases
    from .bench.store import save_results
    from .bench.sweeprun import SweepProgress, SweepRunner

    cases = build_cases(
        args.algorithms,
        args.topology,
        args.sizes,
        args.seeds,
        delivery=args.delivery,
    )

    def render(event: SweepProgress) -> None:
        line = event.format()
        if event.retried:
            line += f"  [retries: {event.retried}]"
        print(line, flush=True)

    runner = SweepRunner(
        workers=args.workers,
        retries=args.retries,
        cell_timeout=args.cell_timeout,
        journal=args.journal,
        resume=args.resume,
        progress=render if not args.quiet else None,
        backend=args.backend,
        metadata={
            "topology": args.topology,
            "sizes": args.sizes,
            "seeds": args.seeds,
            "algorithms": args.algorithms,
            "delivery": args.delivery,
            "backend": args.backend,
        },
    )
    started = time.perf_counter()
    try:
        report = runner.run(cases)
    except (FileExistsError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    count = save_results(
        report.results,
        args.out,
        metadata={
            "topology": args.topology,
            "sizes": args.sizes,
            "seeds": args.seeds,
            "algorithms": args.algorithms,
            "workers": args.workers,
            "delivery": args.delivery,
            "backend": args.backend,
        },
    )
    summary = f"saved {count} results to {args.out} in {elapsed:.1f}s"
    if report.resumed:
        summary += f" ({report.resumed} resumed from journal)"
    if report.retried:
        summary += f" ({report.retried} retries)"
    print(summary)
    incomplete = sum(1 for result in report.results if not result.completed)
    if incomplete:
        print(f"warning: {incomplete} runs hit the round cap")
    if report.failures:
        print(f"error: {len(report.failures)} cell(s) failed:", file=sys.stderr)
        for failure in report.failures:
            print(
                f"  {failure.case.display} n={failure.case.n} "
                f"seed={failure.case.seed}: {failure.error_type}: "
                f"{failure.error_message} (after {failure.attempts} attempts)",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from .oracle.fuzzer import FuzzCase, fuzz, replay
    from .oracle.invariants import OracleViolation
    from .oracle.script import ScheduleScript

    if args.replay:
        text = Path(args.replay).read_text() if Path(args.replay).is_file() else args.replay
        script = ScheduleScript.from_dict(json.loads(text))
        print(f"replaying {script.describe()}")
        try:
            result = replay(script)
        except OracleViolation as violation:
            print(f"violation reproduced: {violation}")
            return 1
        print(
            f"clean: completed={result.completed} rounds={result.rounds} "
            f"messages={result.messages:,}"
        )
        return 0

    def render(case: FuzzCase) -> None:
        print(f"case {case.index:>4}  {case.script.describe()}  -> {case.status}")

    started = time.perf_counter()
    report = fuzz(
        cases=args.cases,
        seed=args.seed,
        algorithms=args.algorithms,
        max_n=args.max_n,
        differential=not args.no_differential,
        reduction=not args.no_differential,
        shrink_failures=not args.no_shrink,
        time_budget=args.time_budget,
        report_path=args.out,
        progress=None if args.quiet else render,
    )
    elapsed = time.perf_counter() - started
    summary = (
        f"fuzz: {len(report.cases)} cases, {len(report.failures)} "
        f"failure(s) in {elapsed:.1f}s (seed={args.seed})"
    )
    if args.out:
        summary += f" -> {args.out}"
    print(summary)
    for case in report.failures:
        print(f"\n[{case.status}] case {case.index}: {case.detail}", file=sys.stderr)
        reproduction = case.shrunk if case.shrunk is not None else case.script
        print(f"  replay: {reproduction.to_json()}", file=sys.stderr)
    return 1 if report.failures else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .live.cluster import ClusterSpec, LiveCluster, reference_digest
    from .live.faults import LiveFaultPlan
    from .live.wire import encode_frame, read_frame

    try:
        fault_plan = LiveFaultPlan.from_kill_specs(
            args.kill,
            restart=[int(piece) for piece in args.restart.split(",") if piece.strip()],
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # Same convention as `repro run --loss`: faults auto-enable the
    # algorithm's registered hostile hardening (e.g. the sublog family's
    # resilient knobs — plain sublog's assignment structure does not
    # heal around a crashed member).
    params = {}
    if fault_plan.has_faults:
        params = dict(ALGORITHMS[args.algorithm].hostile_params)
    spec = ClusterSpec(
        n=args.n,
        topology=args.topology,
        algorithm=args.algorithm,
        seed=args.seed,
        rounds=args.rounds,
        max_rounds=args.max_rounds,
        params=params,
        fault_plan=fault_plan if fault_plan.has_faults else None,
        marker_timeout=args.marker_timeout,
    )

    async def drive():
        cluster = LiveCluster(spec)
        await cluster.start()
        try:
            report = await cluster.run_discovery()
            # Prove revived endpoints actually serve: query each one's
            # status over a fresh TCP connection before teardown.
            restarted = []
            for node_id in fault_plan.restart:
                runtime = cluster.nodes[node_id]
                reader, writer = await asyncio.open_connection(
                    runtime.host, runtime.port
                )
                writer.write(encode_frame({"t": "status"}))
                await writer.drain()
                restarted.append(await read_frame(reader))
                writer.close()
                await writer.wait_closed()
            return report, restarted
        finally:
            await cluster.close()

    started = time.perf_counter()
    report, restarted = asyncio.run(drive())
    elapsed = time.perf_counter() - started
    print(f"algorithm : {report.algorithm}")
    print(f"cluster   : n={report.n} seed={report.seed} (loopback TCP)")
    if fault_plan.has_faults:
        kills = ", ".join(
            f"{node}@{fault_plan.crash_rounds[node]}" for node in fault_plan.victims()
        )
        print(f"faults    : kill {kills}")
        print(f"survivors : {len(report.survivors)}/{report.n} {list(report.survivors)}")
    print(f"complete  : {report.complete}")
    print(f"rounds    : {report.rounds}")
    print(f"messages  : {report.messages:,}")
    scope = " (survivors)" if fault_plan.has_faults else ""
    print(f"digest    : {report.digest}{scope}")
    print(f"wall time : {elapsed:.2f}s")
    for status in restarted:
        print(
            f"restarted : node {status['from']} serving again "
            f"(crashed at round {status['crashed_at']}, service plane only)"
        )
    if args.verify_digest:
        expected, sim_rounds = reference_digest(spec)
        verdict = "MATCH" if expected == report.digest else "MISMATCH"
        print(f"sim digest: {expected} (rounds={sim_rounds}) -> {verdict}")
        if expected != report.digest:
            return 1
    return 0 if (report.complete or args.rounds is not None) else 1


def _workload_param(spec: str) -> tuple:
    """argparse validator: ``key=value`` with value coerced int>float>str."""
    key, sep, raw = spec.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(f"expected key=value, got {spec!r}")
    value: object = raw
    for cast in (int, float):
        try:
            value = cast(raw)
            break
        except ValueError:
            continue
    return key, value


def _cmd_workload(args: argparse.Namespace) -> int:
    from .workloads import make_workload, run_trace_workload, save_trace

    params = dict(args.param or ())
    try:
        trace = make_workload(args.generator, args.n, seed=args.seed, **params)
    except (TypeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    lookups = len(trace.events_of("lookup"))
    crashes = len(trace.events_of("crash"))
    edges = len(trace.events_of("edge"))
    print(f"trace     : {trace.generator} n={trace.n} seed={trace.seed}")
    print(f"events    : {len(trace)} ({lookups} lookup, {crashes} crash, "
          f"{edges} edge) over {trace.horizon} rounds")
    print(f"params    : {json.dumps(trace.params, sort_keys=True)}")
    print(f"digest    : {trace.digest()}")
    if args.out:
        save_trace(trace, Path(args.out))
        print(f"saved     : {args.out}")
    if args.replay:
        report = run_trace_workload(
            trace, args.replay, seed=args.seed, enforce_legality=False
        )
        stats = report.lookups
        print(f"replay    : {args.replay} "
              f"{'completed' if report.result.completed else 'DID NOT complete'} "
              f"in {report.result.rounds} rounds "
              f"({report.result.messages} messages)")
        if stats["requests"]:
            print(f"service   : {100.0 * report.served_at_arrival_fraction:.0f}% "
                  f"served at arrival, mean delay "
                  f"{stats['mean_delay']:.1f} rounds, "
                  f"p95 {stats['p95_delay']:.0f}")
        print(f"digest    : {report.digest} (engine knowledge)")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from .live.cluster import ClusterSpec, LiveCluster
    from .live.loadgen import run_loadgen

    trace = None
    if args.trace:
        from .workloads import load_trace

        trace = load_trace(Path(args.trace))
        if not args.endpoints and args.n != trace.n:
            args.n = trace.n

    async def drive() -> int:
        if args.endpoints:
            endpoints = []
            for spec in args.endpoints.split(","):
                host, _, port = spec.strip().rpartition(":")
                endpoints.append((host or "127.0.0.1", int(port)))
            cluster = None
        else:
            cluster = LiveCluster(
                ClusterSpec(
                    n=args.n,
                    topology=args.topology,
                    algorithm=args.algorithm,
                    seed=args.seed,
                )
            )
            await cluster.start()
            report = await cluster.run_discovery()
            if not report.complete:
                print("error: discovery did not reach closure", file=sys.stderr)
                await cluster.close()
                return 1
            print(f"cluster   : n={report.n} closed in {report.rounds} rounds")
            endpoints = cluster.endpoints
        try:
            result = await run_loadgen(
                endpoints,
                requests=args.requests,
                concurrency=args.concurrency,
                seed=args.seed,
                trace=trace,
            )
        finally:
            if cluster is not None:
                await cluster.close()
        if trace is not None:
            print(f"trace     : {trace.generator} seed={trace.seed} "
                  f"({result.requests} lookup events)")
        print(f"requests  : {result.requests} ({args.concurrency} workers)")
        print(f"errors    : {result.errors}")
        consistency = (
            "not-sampled"
            if result.census_consistent is None
            else str(result.census_consistent)
        )
        print(f"census    : leader={result.leader} count={result.count} "
              f"consistent={consistency} samples={result.census_samples}")
        print(f"ring      : valid={result.ring_valid}")
        overall = result.percentiles()
        print(f"latency   : p50={overall['p50']:.2f}ms "
              f"p95={overall['p95']:.2f}ms p99={overall['p99']:.2f}ms")
        for worker, stats in result.worker_percentiles().items():
            print(f"  worker {worker:2d}: {int(stats['requests']):4d} req "
                  f"p50={stats['p50']:.2f}ms p95={stats['p95']:.2f}ms "
                  f"p99={stats['p99']:.2f}ms")
        for decile, stats in result.decile_percentiles().items():
            print(f"  decile {decile}: {int(stats['requests']):4d} req "
                  f"p50={stats['p50']:.2f}ms p95={stats['p95']:.2f}ms "
                  f"p99={stats['p99']:.2f}ms")
        print(f"duration  : {result.duration_s:.2f}s")
        return 0 if result.ok else 1

    return asyncio.run(drive())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Distributed Resource Discovery in "
            "Sub-Logarithmic Time' (Haeupler & Malkhi, PODC 2015)"
        ),
    )
    from . import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list algorithms/topologies/experiments")
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = sub.add_parser("run", help="run one discovery")
    run_parser.add_argument("--algorithm", default="sublog", choices=algorithm_names())
    run_parser.add_argument("--topology", default="kout", choices=sorted(TOPOLOGIES))
    run_parser.add_argument("--n", type=int, default=256)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--goal", default="strong", choices=("strong", "weak", "strong_alive")
    )
    run_parser.add_argument("--loss", type=float, default=0.0, help="message loss rate")
    run_parser.add_argument(
        "--delivery",
        type=_delivery_spec,
        default=None,
        metavar="SPEC",
        help="delivery model: lockstep, jitter:J, adversarial[:D], "
        "perlink[:S], or partition:A-B",
    )
    run_parser.add_argument("--id-space", default="dense", choices=("dense", "random"))
    run_parser.add_argument(
        "--trace", default=None, metavar="FILE", help="write a JSONL message trace"
    )
    run_parser.add_argument(
        "--sparkline",
        action="store_true",
        help="print the convergence sparkline and milestones",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase engine timings (protocol/dispatch/deliver/observers)",
    )
    run_parser.add_argument(
        "--backend",
        default=None,
        choices=("legacy", "fast", "vector"),
        help="engine backend: legacy (reference per-id loops), fast "
        "(dense Python-int bitmasks, the default), or vector (bit-packed "
        "numpy matrix for large n)",
    )
    run_parser.add_argument(
        "--legacy-engine",
        action="store_true",
        help="alias for --backend legacy (kept for compatibility)",
    )
    run_parser.set_defaults(handler=_cmd_run)

    experiment_parser = sub.add_parser("experiment", help="regenerate a table/figure")
    experiment_parser.add_argument(
        "experiment", help=f"experiment id ({', '.join(EXPERIMENTS)}) or 'all'"
    )
    experiment_parser.add_argument("--scale", default=None, choices=tuple(SCALES))
    experiment_parser.add_argument("--out", default=None, help="directory for .txt reports")
    experiment_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan experiment sweeps out over N worker processes",
    )
    experiment_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry a failing sweep cell up to N times",
    )
    experiment_parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per sweep cell attempt",
    )
    experiment_parser.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="journal completed cells to per-stage JSONL files "
        "(experiments that sweep fork <stem>.<stage>.jsonl siblings)",
    )
    experiment_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already recorded in --journal",
    )
    experiment_parser.set_defaults(handler=_cmd_experiment)

    sweep_parser = sub.add_parser(
        "sweep", help="run an algorithm x size matrix and save JSON results"
    )
    sweep_parser.add_argument(
        "--algorithms", nargs="+", default=["sublog", "namedropper"],
        choices=algorithm_names(),
    )
    sweep_parser.add_argument("--topology", default="kout", choices=sorted(TOPOLOGIES))
    sweep_parser.add_argument("--sizes", nargs="+", type=int, default=[64, 128, 256])
    sweep_parser.add_argument("--seeds", nargs="+", type=int, default=[11, 23, 37])
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the sweep out over N worker processes (results stay "
        "deterministic and ordered)",
    )
    sweep_parser.add_argument(
        "--delivery",
        type=_delivery_spec,
        default=None,
        metavar="SPEC",
        help="delivery model applied to every cell (see 'run --delivery')",
    )
    sweep_parser.add_argument("--out", required=True, help="JSON results file")
    sweep_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry a failing cell up to N times (seed-deterministic backoff)",
    )
    sweep_parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per cell attempt; a cell over budget "
        "counts as failed (and retries, if --retries)",
    )
    sweep_parser.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="append completed cells to a JSONL journal as the sweep "
        "runs, so an interrupted sweep can be resumed",
    )
    sweep_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already recorded in --journal (failing if the "
        "journal belongs to a different case matrix)",
    )
    sweep_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    sweep_parser.add_argument(
        "--backend",
        default=None,
        choices=("legacy", "fast", "vector"),
        help="pin every cell to one engine backend (default: auto — fast, "
        "upgrading to vector at large n when numpy is available)",
    )
    sweep_parser.set_defaults(handler=_cmd_sweep)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="fuzz seeded adversarial schedules under the invariant oracle",
    )
    fuzz_parser.add_argument(
        "--cases", type=int, default=50, help="number of fuzz cases to run"
    )
    fuzz_parser.add_argument("--seed", type=int, default=0, help="fuzz master seed")
    fuzz_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        choices=algorithm_names(),
        help="restrict fuzzing to these algorithms (default: all registered)",
    )
    fuzz_parser.add_argument(
        "--max-n", type=int, default=24, help="largest fuzzed machine count"
    )
    fuzz_parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop starting new cases after this much wall clock",
    )
    fuzz_parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="append a JSONL report (manifest + one record per case)",
    )
    fuzz_parser.add_argument(
        "--no-differential",
        action="store_true",
        help="skip the fast-vs-legacy and lockstep-reduction diffs",
    )
    fuzz_parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing scripts as generated, without minimizing",
    )
    fuzz_parser.add_argument(
        "--replay",
        default=None,
        metavar="SCRIPT",
        help="replay one script (a JSON file or literal JSON) under the "
        "strict oracle instead of fuzzing",
    )
    fuzz_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-case progress lines"
    )
    fuzz_parser.set_defaults(handler=_cmd_fuzz)

    serve_parser = sub.add_parser(
        "serve",
        help="run a live TCP-loopback cluster of protocol nodes to closure",
    )
    serve_parser.add_argument("--algorithm", default="sublog", choices=algorithm_names())
    serve_parser.add_argument("--topology", default="kout", choices=sorted(TOPOLOGIES))
    serve_parser.add_argument("--n", type=int, default=8)
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="run exactly this many rounds (disables closure stopping; "
        "the strict mid-run digest comparison)",
    )
    serve_parser.add_argument(
        "--max-rounds", type=int, default=None, help="round budget override"
    )
    serve_parser.add_argument(
        "--verify-digest",
        action="store_true",
        help="run the same (config, seed) through the simulator and "
        "require byte-identical knowledge digests",
    )
    serve_parser.add_argument(
        "--kill",
        action="append",
        default=[],
        metavar="ID@ROUND",
        help="fault injection: kill node ID at the start of round ROUND "
        "(repeatable, or comma-separated); with --verify-digest the "
        "survivors are checked against the FaultInjector prediction",
    )
    serve_parser.add_argument(
        "--restart",
        default="",
        metavar="IDS",
        help="comma-separated killed node ids to revive after the run "
        "(service plane only: queries answered from frozen knowledge)",
    )
    serve_parser.add_argument(
        "--marker-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-round marker-wait deadline before a silent peer is "
        "suspected (default: derived from the round budget; 0 waits forever)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    loadgen_parser = sub.add_parser(
        "loadgen",
        help="drive concurrent census/overlay lookups against a live cluster",
    )
    loadgen_parser.add_argument(
        "--endpoints",
        default=None,
        metavar="HOST:PORT,...",
        help="target an already-running cluster instead of self-hosting one",
    )
    loadgen_parser.add_argument(
        "--algorithm", default="sublog", choices=algorithm_names()
    )
    loadgen_parser.add_argument("--topology", default="kout", choices=sorted(TOPOLOGIES))
    loadgen_parser.add_argument("--n", type=int, default=8)
    loadgen_parser.add_argument("--seed", type=int, default=0)
    loadgen_parser.add_argument("--requests", type=int, default=100)
    loadgen_parser.add_argument("--concurrency", type=int, default=8)
    loadgen_parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="replay a saved workload trace (see 'repro workload'): issue "
        "exactly its lookup demand and report latency percentiles split "
        "by popularity decile; self-hosted clusters size to the trace",
    )
    loadgen_parser.set_defaults(handler=_cmd_loadgen)

    workload_parser = sub.add_parser(
        "workload",
        help="generate a seeded, replayable demand trace (JSONL)",
    )
    workload_parser.add_argument(
        "--generator", default="zipf", choices=workload_names()
    )
    workload_parser.add_argument("--n", type=int, default=256)
    workload_parser.add_argument("--seed", type=int, default=0)
    workload_parser.add_argument(
        "--param",
        action="append",
        type=_workload_param,
        metavar="KEY=VALUE",
        help="generator parameter override (repeatable), e.g. "
        "--param alpha=1.4 --param rounds=24",
    )
    workload_parser.add_argument(
        "--out", default=None, metavar="FILE", help="write the trace JSONL here"
    )
    workload_parser.add_argument(
        "--replay",
        default=None,
        choices=algorithm_names(),
        metavar="ALGORITHM",
        help="also replay the trace through the simulator with this "
        "algorithm and print the service stats",
    )
    workload_parser.set_defaults(handler=_cmd_workload)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
