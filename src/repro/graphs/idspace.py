"""Identifier namespaces for knowledge graphs.

Resource-discovery algorithms must treat machine identifiers as opaque —
comparable, hashable, but not assumed dense in ``[0, n)`` and certainly not
usable to *guess* addresses.  To keep the shipped algorithms honest, every
generator can emit graphs under two namespaces:

* ``"dense"`` — ids ``0 .. n-1`` (convenient for debugging);
* ``"random"`` — distinct pseudorandom 48-bit labels (deterministic in the
  seed), which instantly breaks any accidental reliance on density.

Tests run the full algorithm suite under both namespaces.

The module also provides the **ring metric** over the identifier space:
both namespaces embed into the ring of integers modulo ``2**RING_BITS``,
and structured-overlay algorithms (``chord_discover``) navigate that ring
via :func:`ring_distance`, :func:`ring_successor`, :func:`ring_nearest`,
and :func:`finger_targets`.  Every helper is deterministic — ties break
the same way on every backend — because overlay routing decisions feed
directly into cross-backend digest comparisons.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..sim.rng import derive_rng

ID_SPACES = ("dense", "random")

#: Width of the identifier ring.  Random-namespace labels are drawn from
#: exactly this many bits, and dense ids ``0..n-1`` embed trivially, so a
#: single modulus serves both namespaces.
RING_BITS = 48

#: Size of the identifier ring, ``2**RING_BITS``.
RING_MODULUS = 1 << RING_BITS

_RANDOM_ID_BITS = RING_BITS


def make_id_mapping(count: int, id_space: str, seed: int) -> Dict[int, int]:
    """Map dense ids ``0..count-1`` into the requested namespace."""
    if id_space == "dense":
        return {index: index for index in range(count)}
    if id_space == "random":
        rng = derive_rng(seed, "idspace", count)
        labels: set[int] = set()
        while len(labels) < count:
            labels.add(rng.getrandbits(_RANDOM_ID_BITS))
        ordered = sorted(labels)
        rng.shuffle(ordered)
        return {index: label for index, label in enumerate(ordered)}
    raise ValueError(f"unknown id space {id_space!r}; expected one of {ID_SPACES}")


def ring_distance(a: int, b: int) -> int:
    """Clockwise distance from *a* to *b* on the identifier ring.

    ``ring_distance(a, a) == 0``; the metric is asymmetric by design
    (Chord's successor relation walks clockwise only).
    """
    return (b - a) % RING_MODULUS


def ring_successor(target: int, candidates: Sequence[int]) -> Optional[int]:
    """First candidate at or clockwise-after *target*; ``None`` if empty.

    *candidates* must be sorted ascending (the caller typically maintains
    one sorted view and queries it many times — this keeps each lookup at
    ``O(log n)`` via bisect).  Wraps around: a target past the largest
    candidate resolves to the smallest.
    """
    if not candidates:
        return None
    position = bisect_left(candidates, target % RING_MODULUS)
    if position == len(candidates):
        return candidates[0]
    return candidates[position]


def ring_nearest(target: int, candidates: Sequence[int]) -> Optional[int]:
    """Candidate minimizing symmetric ring distance to *target*.

    *candidates* must be sorted ascending.  On an exact tie (successor
    and predecessor equidistant from the target) the **successor** wins —
    clockwise is the deterministic tie-break everywhere in this module.
    """
    successor = ring_successor(target, candidates)
    if successor is None:
        return None
    position = bisect_left(candidates, target % RING_MODULUS)
    predecessor = candidates[position - 1] if candidates else None
    forward = ring_distance(target, successor)
    backward = ring_distance(predecessor, target)
    if backward < forward:
        return predecessor
    return successor


def finger_targets(origin: int, bits: int = RING_BITS) -> Tuple[int, ...]:
    """Chord finger targets ``(origin + 2**k) mod RING_MODULUS``, k < bits."""
    return tuple((origin + (1 << k)) % RING_MODULUS for k in range(bits))


def densify(node_ids: Sequence[int]) -> Dict[int, int]:
    """Inverse helper: map arbitrary ids onto ``0..n-1`` preserving order."""
    return {node: index for index, node in enumerate(sorted(node_ids))}


def dense_index(node_ids: Iterable[int]) -> Tuple[Tuple[int, ...], Dict[int, int]]:
    """Sorted id tuple plus its id → dense-index inverse, in one pass.

    The simulator's dense fast and vector paths need both directions of
    the remap: ``ordered[i]`` recovers the opaque id sitting at bit ``i``
    of a knowledge bitmask (or matrix column), and ``index[id]`` finds an
    id's bit.  Index ``i`` of the returned tuple always equals
    ``densify(node_ids)[ordered[i]]``.

    Duplicate ids are rejected: two nodes sharing a bit would silently
    merge their knowledge in every bitmask representation, so a collision
    is always caller error (mapping inputs deduplicate by construction,
    but sequences from recordings or hand-built graphs may not).
    """
    ordered = tuple(sorted(node_ids))
    index = {node: position for position, node in enumerate(ordered)}
    if len(index) != len(ordered):
        seen: set[int] = set()
        duplicates = sorted(
            {node for node in ordered if node in seen or seen.add(node)}
        )
        raise ValueError(
            f"duplicate node ids in dense index: {duplicates[:5]}"
        )
    return ordered, index
