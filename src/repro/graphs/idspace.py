"""Identifier namespaces for knowledge graphs.

Resource-discovery algorithms must treat machine identifiers as opaque —
comparable, hashable, but not assumed dense in ``[0, n)`` and certainly not
usable to *guess* addresses.  To keep the shipped algorithms honest, every
generator can emit graphs under two namespaces:

* ``"dense"`` — ids ``0 .. n-1`` (convenient for debugging);
* ``"random"`` — distinct pseudorandom 48-bit labels (deterministic in the
  seed), which instantly breaks any accidental reliance on density.

Tests run the full algorithm suite under both namespaces.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from ..sim.rng import derive_rng

ID_SPACES = ("dense", "random")

_RANDOM_ID_BITS = 48


def make_id_mapping(count: int, id_space: str, seed: int) -> Dict[int, int]:
    """Map dense ids ``0..count-1`` into the requested namespace."""
    if id_space == "dense":
        return {index: index for index in range(count)}
    if id_space == "random":
        rng = derive_rng(seed, "idspace", count)
        labels: set[int] = set()
        while len(labels) < count:
            labels.add(rng.getrandbits(_RANDOM_ID_BITS))
        ordered = sorted(labels)
        rng.shuffle(ordered)
        return {index: label for index, label in enumerate(ordered)}
    raise ValueError(f"unknown id space {id_space!r}; expected one of {ID_SPACES}")


def densify(node_ids: Sequence[int]) -> Dict[int, int]:
    """Inverse helper: map arbitrary ids onto ``0..n-1`` preserving order."""
    return {node: index for index, node in enumerate(sorted(node_ids))}


def dense_index(node_ids: Iterable[int]) -> Tuple[Tuple[int, ...], Dict[int, int]]:
    """Sorted id tuple plus its id → dense-index inverse, in one pass.

    The simulator's dense fast and vector paths need both directions of
    the remap: ``ordered[i]`` recovers the opaque id sitting at bit ``i``
    of a knowledge bitmask (or matrix column), and ``index[id]`` finds an
    id's bit.  Index ``i`` of the returned tuple always equals
    ``densify(node_ids)[ordered[i]]``.

    Duplicate ids are rejected: two nodes sharing a bit would silently
    merge their knowledge in every bitmask representation, so a collision
    is always caller error (mapping inputs deduplicate by construction,
    but sequences from recordings or hand-built graphs may not).
    """
    ordered = tuple(sorted(node_ids))
    index = {node: position for position, node in enumerate(ordered)}
    if len(index) != len(ordered):
        seen: set[int] = set()
        duplicates = sorted(
            {node for node in ordered if node in seen or seen.add(node)}
        )
        raise ValueError(
            f"duplicate node ids in dense index: {duplicates[:5]}"
        )
    return ordered, index
