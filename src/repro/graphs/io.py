"""Knowledge-graph serialization and interop.

Formats:

* **edge list** — one ``u v`` pair per line plus ``# node u`` lines for
  isolated-out nodes; the lowest-common-denominator exchange format.
* **JSON** — ``{"nodes": [...], "edges": [[u, v], ...]}`` with sorted,
  deterministic output (diffs cleanly).
* **networkx** — conversion to/from ``networkx.DiGraph`` for users who
  want its algorithm zoo on the side.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Set

import networkx as nx

from .knowledge import KnowledgeGraph


def to_edge_list(graph: KnowledgeGraph, stream: IO[str]) -> int:
    """Write *graph* as an edge list; returns the number of lines."""
    lines = 0
    for node in graph.node_ids:
        neighbors = sorted(graph.out(node))
        if not neighbors:
            stream.write(f"# node {node}\n")
            lines += 1
        for neighbor in neighbors:
            stream.write(f"{node} {neighbor}\n")
            lines += 1
    return lines


def from_edge_list(stream: IO[str]) -> KnowledgeGraph:
    """Parse an edge list written by :func:`to_edge_list`."""
    adjacency: Dict[int, Set[int]] = {}
    for raw in stream:
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) == 3 and parts[1] == "node":
                adjacency.setdefault(int(parts[2]), set())
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"malformed edge line: {line!r}")
        source, target = int(parts[0]), int(parts[1])
        adjacency.setdefault(source, set()).add(target)
        adjacency.setdefault(target, set())
    if not adjacency:
        raise ValueError("edge list contained no nodes")
    return KnowledgeGraph(adjacency)


def to_json(graph: KnowledgeGraph) -> str:
    """Serialize *graph* as deterministic JSON."""
    edges = sorted(
        (node, neighbor)
        for node in graph.node_ids
        for neighbor in graph.out(node)
    )
    return json.dumps(
        {"nodes": list(graph.node_ids), "edges": [list(edge) for edge in edges]},
        separators=(",", ":"),
    )


def from_json(payload: str) -> KnowledgeGraph:
    """Parse JSON produced by :func:`to_json`."""
    raw = json.loads(payload)
    if not isinstance(raw, dict) or "nodes" not in raw or "edges" not in raw:
        raise ValueError("expected an object with 'nodes' and 'edges'")
    adjacency: Dict[int, Set[int]] = {int(node): set() for node in raw["nodes"]}
    for edge in raw["edges"]:
        source, target = int(edge[0]), int(edge[1])
        if source not in adjacency or target not in adjacency:
            raise ValueError(f"edge ({source}, {target}) references unknown node")
        adjacency[source].add(target)
    if not adjacency:
        raise ValueError("graph has no nodes")
    return KnowledgeGraph(adjacency)


def to_networkx(graph: KnowledgeGraph) -> "nx.DiGraph":
    """Convert to a ``networkx.DiGraph``."""
    digraph = nx.DiGraph()
    digraph.add_nodes_from(graph.node_ids)
    for node in graph.node_ids:
        for neighbor in graph.out(node):
            digraph.add_edge(node, neighbor)
    return digraph


def from_networkx(digraph: "nx.DiGraph") -> KnowledgeGraph:
    """Convert from a ``networkx`` directed graph."""
    adjacency: Dict[int, Set[int]] = {
        int(node): set() for node in digraph.nodes
    }
    for source, target in digraph.edges:
        adjacency[int(source)].add(int(target))
    if not adjacency:
        raise ValueError("graph has no nodes")
    return KnowledgeGraph(adjacency)
