"""The knowledge graph: who initially knows whom.

A :class:`KnowledgeGraph` is an immutable directed graph over machine
identifiers.  An edge ``u -> v`` means "u knows v's address".  The
resource-discovery problem assumes the input is *weakly connected* — the
undirected closure is connected — since otherwise complete discovery is
information-theoretically impossible.

Identifiers are opaque: algorithms may compare them but the namespace is
arbitrary (see :mod:`repro.graphs.idspace` for dense vs. random-label
namespaces).  The graph offers the undirected-metric utilities (balls,
eccentricities, diameter) needed by the lower-bound machinery of
:mod:`repro.analysis.invariants`.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)


class KnowledgeGraph:
    """Immutable directed knowledge graph.

    Args:
        adjacency: Mapping from node id to an iterable of out-neighbors.
            Every referenced neighbor must itself appear as a key.
            Self-loops are ignored (every machine implicitly knows itself).
    """

    __slots__ = ("_out", "_node_ids", "_undirected", "_edge_count")

    def __init__(self, adjacency: Mapping[int, Iterable[int]]) -> None:
        out: Dict[int, FrozenSet[int]] = {}
        for node, neighbors in adjacency.items():
            out[node] = frozenset(v for v in neighbors if v != node)
        node_set = frozenset(out)
        for node, neighbors in out.items():
            stray = neighbors - node_set
            if stray:
                raise ValueError(
                    f"node {node} references unknown neighbors {sorted(stray)[:5]}"
                )
        self._out = out
        self._node_ids: Tuple[int, ...] = tuple(sorted(out))
        self._undirected: Optional[Dict[int, FrozenSet[int]]] = None
        self._edge_count = sum(len(neighbors) for neighbors in out.values())

    # -- basic accessors -----------------------------------------------------------

    @property
    def node_ids(self) -> Tuple[int, ...]:
        """All node identifiers, sorted ascending."""
        return self._node_ids

    @property
    def n(self) -> int:
        return len(self._node_ids)

    @property
    def edge_count(self) -> int:
        """Number of directed knowledge edges (self-knowledge excluded)."""
        return self._edge_count

    def out(self, node: int) -> FrozenSet[int]:
        """Out-neighbors: the machines *node* initially knows."""
        return self._out[node]

    def __contains__(self, node: int) -> bool:
        return node in self._out

    def __iter__(self) -> Iterator[int]:
        return iter(self._node_ids)

    def __len__(self) -> int:
        return len(self._node_ids)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KnowledgeGraph):
            return NotImplemented
        return self._out == other._out

    def __hash__(self) -> int:
        return hash(tuple(sorted((u, tuple(sorted(vs))) for u, vs in self._out.items())))

    def __repr__(self) -> str:
        return f"KnowledgeGraph(n={self.n}, edges={self.edge_count})"

    def adjacency(self) -> Dict[int, FrozenSet[int]]:
        """A copy of the out-adjacency mapping."""
        return dict(self._out)

    # -- undirected closure ----------------------------------------------------------

    def undirected(self, node: int) -> FrozenSet[int]:
        """Neighbors of *node* in the undirected closure."""
        return self._undirected_adjacency()[node]

    def _undirected_adjacency(self) -> Dict[int, FrozenSet[int]]:
        if self._undirected is None:
            building: Dict[int, Set[int]] = {node: set() for node in self._node_ids}
            for node, neighbors in self._out.items():
                for neighbor in neighbors:
                    building[node].add(neighbor)
                    building[neighbor].add(node)
            self._undirected = {
                node: frozenset(neighbors) for node, neighbors in building.items()
            }
        return self._undirected

    def is_weakly_connected(self) -> bool:
        return len(self.weak_components()) == 1

    def weak_components(self) -> List[FrozenSet[int]]:
        """Connected components of the undirected closure."""
        undirected = self._undirected_adjacency()
        seen: Set[int] = set()
        components: List[FrozenSet[int]] = []
        for start in self._node_ids:
            if start in seen:
                continue
            component: Set[int] = set()
            queue = deque([start])
            seen.add(start)
            while queue:
                node = queue.popleft()
                component.add(node)
                for neighbor in undirected[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        queue.append(neighbor)
            components.append(frozenset(component))
        return components

    # -- undirected metric utilities ----------------------------------------------------

    def undirected_distances(self, source: int) -> Dict[int, int]:
        """BFS distances from *source* in the undirected closure.

        Unreachable nodes are absent from the result (only possible when
        the graph is not weakly connected).
        """
        undirected = self._undirected_adjacency()
        distances = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            next_distance = distances[node] + 1
            for neighbor in undirected[node]:
                if neighbor not in distances:
                    distances[neighbor] = next_distance
                    queue.append(neighbor)
        return distances

    def undirected_ball(self, center: int, radius: int) -> FrozenSet[int]:
        """All nodes within undirected distance *radius* of *center*."""
        if radius < 0:
            return frozenset()
        undirected = self._undirected_adjacency()
        ball = {center}
        frontier = [center]
        for _ in range(radius):
            next_frontier: List[int] = []
            for node in frontier:
                for neighbor in undirected[node]:
                    if neighbor not in ball:
                        ball.add(neighbor)
                        next_frontier.append(neighbor)
            if not next_frontier:
                break
            frontier = next_frontier
        return frozenset(ball)

    def eccentricity(self, node: int) -> int:
        """Maximum undirected distance from *node* (graph must be connected)."""
        distances = self.undirected_distances(node)
        if len(distances) != self.n:
            raise ValueError("eccentricity undefined: graph is not weakly connected")
        return max(distances.values())

    def undirected_diameter(self, exact: bool = True) -> int:
        """Diameter of the undirected closure.

        With ``exact=False`` a double-sweep BFS lower bound is returned
        (equal to the diameter on trees and usually tight in practice) at
        O(E) cost instead of O(nE).
        """
        if self.n == 1:
            return 0
        if not self.is_weakly_connected():
            raise ValueError("diameter undefined: graph is not weakly connected")
        if exact:
            return max(self.eccentricity(node) for node in self._node_ids)
        first = self.undirected_distances(self._node_ids[0])
        far_node = max(first, key=lambda node: first[node])
        second = self.undirected_distances(far_node)
        return max(second.values())

    # -- derived graphs -------------------------------------------------------------------

    def reversed(self) -> "KnowledgeGraph":
        """The graph with every knowledge edge reversed."""
        reversed_adj: Dict[int, Set[int]] = {node: set() for node in self._node_ids}
        for node, neighbors in self._out.items():
            for neighbor in neighbors:
                reversed_adj[neighbor].add(node)
        return KnowledgeGraph(reversed_adj)

    def relabeled(self, mapping: Mapping[int, int]) -> "KnowledgeGraph":
        """Apply an id bijection (see :mod:`repro.graphs.idspace`)."""
        image = set(mapping.values())
        if len(image) != len(self._node_ids) or set(mapping) != set(self._node_ids):
            raise ValueError("relabeling must be a bijection over the node ids")
        return KnowledgeGraph(
            {
                mapping[node]: [mapping[neighbor] for neighbor in neighbors]
                for node, neighbors in self._out.items()
            }
        )

    def degree_stats(self) -> Dict[str, float]:
        """Min/mean/max out-degree, for workload characterization tables."""
        degrees = [len(self._out[node]) for node in self._node_ids]
        return {
            "min": float(min(degrees)),
            "mean": sum(degrees) / len(degrees),
            "max": float(max(degrees)),
        }


def complete_knowledge(node_ids: Sequence[int]) -> KnowledgeGraph:
    """The complete graph — the target state of strong discovery."""
    universe = frozenset(node_ids)
    return KnowledgeGraph({node: universe - {node} for node in node_ids})


def digest_knowledge(knowledge: Mapping[int, Iterable[int]]) -> str:
    """Canonical SHA-256 digest of a knowledge state.

    Each machine's knowledge is rendered as a little-endian dense bitmask
    (bit ``i`` = the ``i``-th smallest node id), and the per-machine masks
    are concatenated in ascending-id order before hashing.  This is the
    byte layout every host of the protocol core agrees on — the simulator's
    three backends and the live asyncio runtime all reduce their final
    state to this digest, which is how cross-host runs are checked for
    bit-identity.  Ids naming no machine in ``knowledge`` are ignored,
    keeping the digest well-defined when legality enforcement is off.

    The machine's own id is expected to be present in its knowledge set
    (every machine knows itself); callers holding self-less sets must add
    it back before digesting.
    """
    node_ids = sorted(knowledge)
    index = {node: position for position, node in enumerate(node_ids)}
    nbytes = (len(node_ids) + 7) >> 3
    digest = hashlib.sha256()
    for node in node_ids:
        buf = bytearray(nbytes)
        for target in knowledge[node]:
            bit = index.get(target)
            if bit is not None:
                buf[bit >> 3] |= 1 << (bit & 7)
        digest.update(bytes(buf))
    return digest.hexdigest()
