"""Workload characterization of knowledge graphs.

These helpers feed the experiment tables (which record, next to every
measurement, the structural facts that explain it: diameter bound, degree
profile, connectivity) and the theoretical-bound calculators in
:mod:`repro.analysis.bounds`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from .knowledge import KnowledgeGraph

#: Above this size, exact diameters switch to the double-sweep estimate.
_EXACT_DIAMETER_LIMIT = 1500


@dataclass(frozen=True)
class GraphProfile:
    """Structural summary of a knowledge graph."""

    n: int
    edges: int
    weakly_connected: bool
    diameter: int
    diameter_exact: bool
    min_out_degree: int
    mean_out_degree: float
    max_out_degree: int

    @property
    def discovery_lower_bound(self) -> int:
        """Rounds every algorithm needs: ceil(log2(diameter)), by the
        ball-containment argument of DESIGN.md section 1."""
        if self.diameter <= 1:
            return 0 if self.n <= 1 else 1
        return math.ceil(math.log2(self.diameter))


def profile(graph: KnowledgeGraph, exact_diameter: bool | None = None) -> GraphProfile:
    """Compute a :class:`GraphProfile` for *graph*."""
    connected = graph.is_weakly_connected()
    if exact_diameter is None:
        exact_diameter = graph.n <= _EXACT_DIAMETER_LIMIT
    if connected:
        diameter = graph.undirected_diameter(exact=exact_diameter)
    else:
        diameter = -1
    degrees = [len(graph.out(node)) for node in graph.node_ids]
    return GraphProfile(
        n=graph.n,
        edges=graph.edge_count,
        weakly_connected=connected,
        diameter=diameter,
        diameter_exact=bool(exact_diameter),
        min_out_degree=min(degrees),
        mean_out_degree=sum(degrees) / len(degrees),
        max_out_degree=max(degrees),
    )


def knowledge_completeness(knowledge: Dict[int, set[int]]) -> float:
    """Fraction of the complete graph currently known (1.0 = discovered).

    Accepts the engine's ground-truth ``knowledge`` mapping.
    """
    n = len(knowledge)
    if n <= 1:
        return 1.0
    known_pairs = sum(len(entries) for entries in knowledge.values()) - n
    return known_pairs / (n * (n - 1))
