"""Topology generators for discovery workloads.

Each generator builds the *initial* knowledge graph of a scenario: which
machines register with, or are configured to know, which others.  All
generators are deterministic in their ``seed``, produce weakly connected
graphs (augmenting minimally when a random draw is disconnected — see
:func:`ensure_weakly_connected`), and can emit either dense or random
identifier namespaces (see :mod:`repro.graphs.idspace`).

The family covers the regimes the evaluation needs:

* **high-diameter** inputs (path, cycle, grid, lollipop) where the
  ball-containment bound forces Ω(log n) rounds on *every* algorithm;
* **low-diameter** inputs (random k-out, G(n,p), hypercube, preferential
  attachment) where sub-logarithmic discovery is possible and the core
  algorithm should hit O(log log n);
* **pathological shapes** (stars, deep trees, clustered bridges) known to
  separate the classical baselines (e.g. Random Pointer Jump stalls on
  star-like inputs).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set

from ..sim.rng import derive_rng
from .idspace import make_id_mapping
from .knowledge import KnowledgeGraph

GeneratorFn = Callable[..., KnowledgeGraph]

#: Registry of generators addressable by name (CLI, bench specs).
TOPOLOGIES: Dict[str, GeneratorFn] = {}


def _register(name: str) -> Callable[[GeneratorFn], GeneratorFn]:
    def decorator(fn: GeneratorFn) -> GeneratorFn:
        TOPOLOGIES[name] = fn
        return fn

    return decorator


def _finalize(
    adjacency: Dict[int, Set[int]], id_space: str, seed: int
) -> KnowledgeGraph:
    """Connect, relabel, and freeze a dense-id adjacency into a graph."""
    ensure_weakly_connected(adjacency)
    graph = KnowledgeGraph(adjacency)
    if id_space != "dense":
        graph = graph.relabeled(make_id_mapping(len(adjacency), id_space, seed))
    return graph


def ensure_weakly_connected(adjacency: Dict[int, Set[int]]) -> None:
    """Minimally augment *adjacency* (in place) to be weakly connected.

    Weak components are chained by a single directed edge from one
    representative to the next, mirroring how a real deployment would seed
    a disconnected registration graph with one bootstrap address per
    island.  Deterministic: representatives are the minimum ids.
    """
    undirected: Dict[int, Set[int]] = {node: set() for node in adjacency}
    for node, neighbors in adjacency.items():
        for neighbor in neighbors:
            undirected[node].add(neighbor)
            undirected[neighbor].add(node)
    seen: Set[int] = set()
    representatives: List[int] = []
    for start in sorted(adjacency):
        if start in seen:
            continue
        stack = [start]
        seen.add(start)
        lowest = start
        while stack:
            node = stack.pop()
            lowest = min(lowest, node)
            for neighbor in undirected[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        representatives.append(lowest)
    for previous, current in zip(representatives, representatives[1:]):
        adjacency[previous].add(current)


def _empty(n: int) -> Dict[int, Set[int]]:
    if n < 1:
        raise ValueError(f"need at least one node, got n={n}")
    return {node: set() for node in range(n)}


# -- deterministic shapes ------------------------------------------------------------


@_register("path")
def path(n: int, seed: int = 0, id_space: str = "dense") -> KnowledgeGraph:
    """Directed path: machine i knows machine i+1.  Diameter n-1."""
    adjacency = _empty(n)
    for node in range(n - 1):
        adjacency[node].add(node + 1)
    return _finalize(adjacency, id_space, seed)


@_register("bipath")
def bipath(n: int, seed: int = 0, id_space: str = "dense") -> KnowledgeGraph:
    """Bidirectional path: i and i+1 know each other."""
    adjacency = _empty(n)
    for node in range(n - 1):
        adjacency[node].add(node + 1)
        adjacency[node + 1].add(node)
    return _finalize(adjacency, id_space, seed)


@_register("cycle")
def cycle(n: int, seed: int = 0, id_space: str = "dense") -> KnowledgeGraph:
    """Directed cycle: machine i knows machine (i+1) mod n."""
    adjacency = _empty(n)
    if n > 1:
        for node in range(n):
            adjacency[node].add((node + 1) % n)
    return _finalize(adjacency, id_space, seed)


@_register("complete")
def complete(n: int, seed: int = 0, id_space: str = "dense") -> KnowledgeGraph:
    """Complete graph — discovery is already done; useful as a base case."""
    universe = set(range(n))
    adjacency = {node: universe - {node} for node in range(n)}
    return _finalize(adjacency, id_space, seed)


@_register("star_in")
def star_in(n: int, seed: int = 0, id_space: str = "dense") -> KnowledgeGraph:
    """Registration star: every leaf knows the hub (node 0), hub knows nobody.

    Models clients configured with a rendezvous address.  Known to be hard
    for pull-flavored gossip (the hub is everyone's only contact).
    """
    adjacency = _empty(n)
    for node in range(1, n):
        adjacency[node].add(0)
    return _finalize(adjacency, id_space, seed)


@_register("star_out")
def star_out(n: int, seed: int = 0, id_space: str = "dense") -> KnowledgeGraph:
    """Broadcast star: the hub knows every leaf, leaves know nobody."""
    adjacency = _empty(n)
    adjacency[0] = set(range(1, n))
    return _finalize(adjacency, id_space, seed)


@_register("tree")
def tree(
    n: int, seed: int = 0, id_space: str = "dense", arity: int = 2
) -> KnowledgeGraph:
    """Registration tree: each node knows its parent in a complete k-ary tree.

    Models hierarchical bootstrap (children configured with their parent's
    address).  Diameter Θ(log_k n) between leaves through the root.
    """
    if arity < 1:
        raise ValueError(f"arity must be >= 1, got {arity}")
    adjacency = _empty(n)
    for node in range(1, n):
        adjacency[node].add((node - 1) // arity)
    return _finalize(adjacency, id_space, seed)


@_register("grid")
def grid(n: int, seed: int = 0, id_space: str = "dense") -> KnowledgeGraph:
    """Near-square 2-D grid with bidirectional adjacency.  Diameter Θ(√n)."""
    rows = max(1, int(math.isqrt(n)))
    cols = (n + rows - 1) // rows
    adjacency = _empty(n)

    def index(row: int, col: int) -> int:
        return row * cols + col

    for node in range(n):
        row, col = divmod(node, cols)
        if col + 1 < cols and index(row, col + 1) < n:
            adjacency[node].add(index(row, col + 1))
            adjacency[index(row, col + 1)].add(node)
        if row + 1 < rows and index(row + 1, col) < n:
            adjacency[node].add(index(row + 1, col))
            adjacency[index(row + 1, col)].add(node)
    return _finalize(adjacency, id_space, seed)


@_register("hypercube")
def hypercube(n: int, seed: int = 0, id_space: str = "dense") -> KnowledgeGraph:
    """Hypercube over the smallest power of two >= n (extra nodes trimmed).

    Bidirectional, degree log n, diameter log n.
    """
    dim = max(1, math.ceil(math.log2(max(2, n))))
    adjacency = _empty(n)
    for node in range(n):
        for bit in range(dim):
            neighbor = node ^ (1 << bit)
            if neighbor < n:
                adjacency[node].add(neighbor)
    return _finalize(adjacency, id_space, seed)


@_register("lollipop")
def lollipop(
    n: int, seed: int = 0, id_space: str = "dense", clique_fraction: float = 0.5
) -> KnowledgeGraph:
    """A clique with a path attached — mixes the two diameter regimes."""
    if not 0.0 < clique_fraction < 1.0:
        raise ValueError("clique_fraction must be strictly between 0 and 1")
    clique_size = min(n, max(2, int(n * clique_fraction)))
    adjacency = _empty(n)
    for u in range(clique_size):
        for v in range(clique_size):
            if u != v:
                adjacency[u].add(v)
    for node in range(clique_size - 1, n - 1):
        adjacency[node].add(node + 1)
        adjacency[node + 1].add(node)
    return _finalize(adjacency, id_space, seed)


# -- randomized shapes -------------------------------------------------------------


@_register("kout")
def random_k_out(
    n: int, seed: int = 0, id_space: str = "dense", k: int = 3
) -> KnowledgeGraph:
    """Each machine registers with *k* uniformly random others.

    The canonical resource-discovery workload: what a fresh fleet looks
    like after every machine contacted k random bootstrap addresses.
    Diameter Θ(log n / log k) whp, so the discovery lower bound here is
    Θ(log log n) — the regime where sub-logarithmic algorithms shine.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = derive_rng(seed, "kout", n, k)
    adjacency = _empty(n)
    if n > 1:
        for node in range(n):
            pool = rng.sample(range(n), min(k + 1, n))
            targets = [candidate for candidate in pool if candidate != node][:k]
            adjacency[node].update(targets)
    return _finalize(adjacency, id_space, seed)


@_register("gnp")
def gnp(
    n: int, seed: int = 0, id_space: str = "dense", p: Optional[float] = None
) -> KnowledgeGraph:
    """Directed Erdős–Rényi G(n, p); default p = 2 ln(n) / n (whp connected)."""
    if p is None:
        p = min(1.0, 2.0 * math.log(max(2, n)) / max(1, n))
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = derive_rng(seed, "gnp", n, p)
    adjacency = _empty(n)
    for node in range(n):
        for other in range(n):
            if other != node and rng.random() < p:
                adjacency[node].add(other)
    return _finalize(adjacency, id_space, seed)


@_register("prefattach")
def preferential_attachment(
    n: int, seed: int = 0, id_space: str = "dense", m: int = 2
) -> KnowledgeGraph:
    """Barabási–Albert-style growth: each newcomer knows *m* existing machines,
    chosen proportionally to in-degree.

    Models organic fleet growth where new machines register with popular
    existing ones; produces heavy-tailed degree distributions.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    rng = derive_rng(seed, "prefattach", n, m)
    adjacency = _empty(n)
    attachment_pool: List[int] = [0]
    for node in range(1, n):
        targets: Set[int] = set()
        limit = min(m, node)
        attempts = 0
        while len(targets) < limit and attempts < 20 * limit:
            targets.add(rng.choice(attachment_pool))
            attempts += 1
        while len(targets) < limit:
            targets.add(rng.randrange(node))
        adjacency[node].update(targets)
        attachment_pool.extend(targets)
        attachment_pool.append(node)
    return _finalize(adjacency, id_space, seed)


@_register("clustered")
def clustered(
    n: int,
    seed: int = 0,
    id_space: str = "dense",
    clusters: int = 8,
    bridges: int = 1,
) -> KnowledgeGraph:
    """Dense cliques joined by sparse random bridges.

    Models racks/availability zones with full intra-zone knowledge and a
    handful of cross-zone registrations; stresses the merging logic of
    cluster-based algorithms.
    """
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters}")
    clusters = min(clusters, n)
    rng = derive_rng(seed, "clustered", n, clusters, bridges)
    adjacency = _empty(n)
    membership = [node % clusters for node in range(n)]
    groups: Dict[int, List[int]] = {}
    for node, group in enumerate(membership):
        groups.setdefault(group, []).append(node)
    for members in groups.values():
        for u in members:
            for v in members:
                if u != v:
                    adjacency[u].add(v)
    group_list = sorted(groups)
    for index, group in enumerate(group_list):
        for _ in range(max(1, bridges)):
            hop = index + 1 + rng.randrange(max(1, len(group_list) - 1))
            other = group_list[hop % len(group_list)]
            if other == group:
                continue
            source = rng.choice(groups[group])
            target = rng.choice(groups[other])
            if source != target:
                adjacency[source].add(target)
    return _finalize(adjacency, id_space, seed)


@_register("smallworld")
def small_world(
    n: int, seed: int = 0, id_space: str = "dense", chords: int = 1
) -> KnowledgeGraph:
    """Bidirectional ring plus random chords (Watts–Strogatz flavor)."""
    rng = derive_rng(seed, "smallworld", n, chords)
    adjacency = _empty(n)
    if n > 1:
        for node in range(n):
            adjacency[node].add((node + 1) % n)
            adjacency[(node + 1) % n].add(node)
        for node in range(n):
            for _ in range(chords):
                target = rng.randrange(n)
                if target != node:
                    adjacency[node].add(target)
    return _finalize(adjacency, id_space, seed)


def make_topology(
    name: str, n: int, seed: int = 0, id_space: str = "dense", **kwargs: object
) -> KnowledgeGraph:
    """Build a registered topology by name."""
    try:
        generator = TOPOLOGIES[name]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGIES))
        raise ValueError(f"unknown topology {name!r}; known: {known}") from None
    return generator(n, seed=seed, id_space=id_space, **kwargs)
