"""chord_discover — Chord-style finger-table successor propagation.

A structured-overlay discovery baseline in the spirit of Chord-based
self-stabilizing overlays (arXiv 1401.2008): machines live on the
identifier ring of :mod:`repro.graphs.idspace` and route knowledge along
*fingers* — for every power of two, the nearest known machine clockwise
of ``self + 2**k``.  The k = 0 finger is the believed ring successor, so
at quiescence knowledge is closed under believed-successor edges; walking
those edges traverses the full sorted ring of any maximal knowledge set,
which (with weak connectivity of the initial graph) forces every machine
to know every identifier.  Discovery emerges from Chord stabilization:
"who knows u" migrates clockwise toward u's ring predecessor, whose
successor finger then greets u directly.

Per round, each machine recomputes its finger set from current knowledge
(an O(log n)-entry table; a cached sorted view of ``known`` makes each
recomputation ``O(RING_BITS · log n)``), greets first-time fingers with a
full knowledge snapshot, and pushes the round's knowledge delta to every
*link* — every machine that has ever been a finger.  Links only grow and
each link received the full snapshot when established plus every delta
since, so a link always knows at least what its owner knew last round;
fingers displaced by newly-learned closer machines keep receiving deltas,
which is what keeps the quiescence-implies-closure argument airtight as
the believed ring densifies.

The protocol is deterministic — finger selection uses only the ring
metric's clockwise tie-breaks, never the RNG — so all engine backends
and the live runtime agree digest-for-digest by construction.  Like the
other deterministic baselines it makes no liveness promise under crash
faults (a delta pushed to a dead successor is simply lost); the fault
tests treat that as incompletion, not as a violation.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

from ..graphs.idspace import finger_targets, ring_successor
from ..sim.messages import Message
from .base import DiscoveryNode


class ChordDiscoverNode(DiscoveryNode):
    """One machine running finger-table discovery on the identifier ring."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        #: Cached sorted view of ``known - {self}`` for bisect routing.
        self._sorted_known: Optional[List[int]] = None
        #: Every machine that has ever been a finger: greeted once with a
        #: full snapshot, then kept current with every subsequent delta.
        self._links: Set[int] = set()

    def _knowledge_changed(self) -> None:
        super()._knowledge_changed()
        self._sorted_known = None

    def _ring_view(self) -> List[int]:
        if self._sorted_known is None:
            self._sorted_known = sorted(self.known - {self.node_id})
        return self._sorted_known

    def finger_table(self) -> Tuple[int, ...]:
        """Distinct fingers, sorted: successor of ``self + 2**k`` per k."""
        ring = self._ring_view()
        if not ring:
            return ()
        fingers = {
            ring_successor(target, ring) for target in finger_targets(self.node_id)
        }
        return tuple(sorted(fingers))

    def on_round(
        self, round_no: int, inbox: Sequence[Message], rng: random.Random
    ) -> List[Message]:
        snapshot = self.knowledge_snapshot(include_self=False)
        delta = self.unsent_delta()
        self.mark_sent()
        outbox: List[Message] = []
        fresh: Set[int] = set()
        for peer in self.finger_table():
            if peer not in self._links:
                self._links.add(peer)
                fresh.add(peer)
                outbox.append(self.message(peer, "chord", ids=snapshot))
        if delta:
            for peer in sorted(self._links):
                if peer in fresh:
                    continue  # the greeting snapshot already covers the delta
                if len(delta) == 1 and peer in delta:
                    continue  # sole content is the recipient's own id
                outbox.append(self.message(peer, "chord", ids=delta))
        return outbox
