"""det_optimal — deterministic message-frugal aggregation/broadcast.

A reproduction-scale rendering of the Kniesburges–Koutsopoulos–Scheideler
deterministic message-optimal discovery structure (arXiv 1306.1692): KKS
recover a sorted-list/de-Bruijn overlay with O(n) messages in the worst
case by funnelling every identifier to a deterministic anchor and
re-broadcasting along the recovered structure.  This module keeps the
load-bearing ideas — **deterministic anchoring** (all knowledge converges
on the smallest known identifier; no coin flips anywhere, so all three
engine backends and the live runtime are digest-identical by
construction) and **aggregate-then-broadcast** (one gated dissemination
wave instead of re-flooding on every change) — inside the repository's
clean ``run_round``/``learn`` message-passing model.

Roles are emergent and monotone.  Knowledge only grows, so ``min(known)``
only decreases: a machine that once observes a smaller identifier is a
*member* forever; the unique global minimum is the final *root*.

Root (``min(known) == self``):
    *solicit* every newly-learned machine with an **empty** ``publish``
    (sender-learning teaches the recipient the root's identifier for one
    pointer of traffic — the root's BFS frontier); once a round delivers
    no new identifiers, broadcast to every known machine in one
    ``publish`` wave — a machine's first wave carries the full snapshot
    (it may have been learned after earlier waves and missed their
    deltas), every later one only the accumulated unsent delta.  The
    stability gate coalesces dissemination into a handful of waves,
    which is what keeps the message total linear.

Member (``min(known) < self``):
    report every identifier not yet reported to the current root in one
    ``report`` per round with pending content (the first report doubles
    as the announcement that lets the root learn the member exists via
    sender-learning).  A root change resets the bookkeeping — roots
    strictly decrease, so old state is dead weight.  A ``publish`` from
    the *current* root counts as already-reported content (the root
    evidently knows it), suppressing wave echo.

Rival-root collapse: a machine solicited by a stale root ``w`` (any
``publish`` whose sender exceeds the local minimum) *redirects* once,
reporting its better minimum straight back — the moment two aggregation
frontiers touch, the larger-rooted one learns a smaller identifier and
becomes a member, handing its entire harvest up in one report.  This
first-contact collapse (rather than waiting for the winning frontier to
reach the rival root itself) bounds duplicate solicitation.

Complexity: the root's frontier solicits each machine about once, each
machine reports a few times, and dissemination is one or two waves —
~8–13 messages per machine on the evaluation's random low-diameter
graphs, the message floor of the shipped suite (T2 measures it).  On
diameter-Θ(n) chains the member relay pipeline (each machine's interim
root is its neighbor until the true root's frontier arrives) degrades
the total to Θ(n·D) reports; rounds are Θ(D) with a small constant.
Crash faults void the liveness argument (a report aimed at a dead root
is lost; nothing retransmits), which the fault-model tests treat as
incompletion, never as an invariant violation.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set

from ..sim.messages import Message
from .base import DiscoveryNode


class DetOptimalNode(DiscoveryNode):
    """One machine running the deterministic aggregation/broadcast protocol."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        #: Current aggregation root (``None`` while this machine leads).
        self._report_root: Optional[int] = None
        #: Ids already reported to (or published by) the current root.
        self._reported: Set[int] = set()
        #: Whether the current root has heard from us at least once.
        self._announced = False
        #: Root-side: machines already solicited.
        self._greeted: Set[int] = set()
        #: Root-side: machines that have reported to us at least once.
        self._announcers: Set[int] = set()
        #: Root-side: machines that have received at least one wave.  A
        #: machine's first wave carries the full snapshot (it may have
        #: been learned after earlier waves and so missed their deltas);
        #: every later wave carries only the delta.
        self._waved: Set[int] = set()
        #: Stale roots already redirected (one collapse ping each).
        self._redirected: Set[int] = set()
        #: Knowledge size after the previous round — the stability gate.
        self._seen_size = 0

    def on_round(
        self, round_no: int, inbox: Sequence[Message], rng: random.Random
    ) -> List[Message]:
        root = min(self.known)
        if root != self.node_id and root != self._report_root:
            # Roots strictly decrease; bookkeeping for the old root is
            # permanently dead, so replace rather than accumulate.
            self._report_root = root
            self._reported = set()
            self._announced = False
        outbox: List[Message] = []
        for message in inbox:
            if message.kind == "report":
                self._announcers.add(message.sender)
            elif message.kind == "publish":
                if message.sender == self._report_root:
                    self._reported.update(message.ids)
                elif message.sender != root and message.sender not in self._redirected:
                    # Solicited by a stale root: teach it the better
                    # minimum once, collapsing its frontier on contact.
                    self._redirected.add(message.sender)
                    better = {root} - {self.node_id}
                    outbox.append(self.message(message.sender, "report", ids=better))
        grew = len(self.known) > self._seen_size
        self._seen_size = len(self.known)
        if root == self.node_id:
            outbox.extend(self._root_round(grew))
        else:
            outbox.extend(self._member_round(root))
        return outbox

    def _member_round(self, root: int) -> List[Message]:
        pending = self.known - self._reported - {self.node_id, root}
        if not pending and self._announced:
            return []
        self._reported.update(pending)
        self._announced = True
        return [self.message(root, "report", ids=sorted(pending))]

    def _root_round(self, grew: bool) -> List[Message]:
        snapshot = self.knowledge_snapshot(include_self=False)
        outbox: List[Message] = []
        for peer in sorted(snapshot - self._greeted - self._announcers):
            self._greeted.add(peer)
            outbox.append(self.message(peer, "publish"))
        delta = self.unsent_delta()
        if delta and not grew:
            self.mark_sent()
            for peer in sorted(snapshot):
                if peer not in self._waved:
                    self._waved.add(peer)
                    outbox.append(self.message(peer, "publish", ids=snapshot))
                elif not (len(delta) == 1 and peer in delta):
                    outbox.append(self.message(peer, "publish", ids=delta))
        return outbox
