"""Random Pointer Jump — the cautionary baseline.

Every round, every machine picks one uniformly random machine it knows and
*pulls*: it asks the chosen peer for the peer's knowledge; the peer replies
in the following round with everything it knows.  (The request itself also
teaches the peer the requester's address, as the model prescribes.)

Harchol-Balter, Leighton and Lewin introduced this algorithm to show that
naive random gossip can be extremely slow: on star-like and highly skewed
topologies the expected completion time is polynomial in n, because the
hub's knowledge grows but the leaves keep pulling from the same place while
the hub pulls from a random leaf.  The evaluation keeps it as the "what
goes wrong without structure" anchor; runs that exceed the round cap are
reported as incomplete rather than retried.

Complexity: Ω(n) rounds on adversarial inputs; O(n log n)-ish on benign
random graphs (measured, not proven, here).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..sim.messages import Message
from .base import DiscoveryNode


class RandomPointerJumpNode(DiscoveryNode):
    """One machine running random pointer jump (pull gossip)."""

    def on_round(
        self, round_no: int, inbox: Sequence[Message], rng: random.Random
    ) -> List[Message]:
        outbox: List[Message] = []
        # Serve pulls that arrived this round.
        requesters: List[int] = [
            message.sender for message in inbox if message.kind == "pull"
        ]
        if requesters:
            snapshot = self.knowledge_snapshot(include_self=False)
            for requester in sorted(set(requesters)):
                outbox.append(
                    self.message(requester, "reply", ids=snapshot - {requester})
                )

        peer = self.pick_random_peer(rng)
        if peer is not None:
            outbox.append(self.message(peer, "pull"))
        return outbox
