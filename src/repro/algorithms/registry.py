"""Algorithm registry: build any shipped discovery protocol by name.

Each entry maps a registry name to an :class:`AlgorithmSpec` that knows how
to construct node factories and how many rounds the algorithm may
reasonably need (used for per-algorithm round caps in the harness).

Registered algorithms:

============== ========================================================
name            protocol
============== ========================================================
flooding        Θ(D)-round flooding baseline
swamping        Θ(log D)-round knowledge-squaring baseline
                (``full=False`` for the delta variant)
rpj             Random Pointer Jump (pull gossip; adversarially slow)
namedropper     Name-Dropper, O(log² n) whp (``mode="pushpull"``
                variant)
sublog          the core sub-logarithmic cluster-merging algorithm
                (deterministic rank contraction with join-forwarding)
sublogcoin      randomized star-contraction ablation
                (``contraction="coin"``; depth-1 merges, Θ(log n)
                phases)
det_optimal     KKS-style deterministic aggregation/broadcast —
                the message-count floor of the suite
chord_discover  Chord-style finger-table successor propagation on the
                identifier ring
============== ========================================================

Downstream consumers (the fuzzer's coverage cycle, CLI ``choices``, the
correctness matrices) must derive the algorithm list from
:func:`algorithm_names` — never from a hard-coded tuple — so that an
algorithm added through :func:`register` is exercised everywhere
automatically.  Per-spec ``hostile_params`` centralizes the "extra knobs
under hostile schedules" policy the fuzzer/CLI/apps previously each
hard-coded for the sublog family.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Tuple

from ..core.config import SubLogConfig
from ..core.sublog import SubLogNode
from ..sim.node import ProtocolNode
from .chord_discover import ChordDiscoverNode
from .det_optimal import DetOptimalNode
from .flooding import FloodingNode
from .name_dropper import NameDropperNode
from .pointer_jump import RandomPointerJumpNode
from .swamping import SwampingNode

NodeFactory = Callable[[int], ProtocolNode]
FactoryBuilder = Callable[..., NodeFactory]
RoundCapFn = Callable[[int], int]


@dataclass(frozen=True)
class AlgorithmSpec:
    """Metadata and constructors for one registered algorithm."""

    name: str
    description: str
    build: FactoryBuilder
    round_cap: RoundCapFn
    default_params: Mapping[str, Any] = field(default_factory=dict)
    #: Extra params hosts merge in under hostile conditions (loss, a
    #: non-lockstep delivery model, crash faults).  Empty for algorithms
    #: with no hostile-hardening knobs.
    hostile_params: Mapping[str, Any] = field(default_factory=dict)

    def node_factory(self, **params: Any) -> NodeFactory:
        merged = dict(self.default_params)
        merged.update(params)
        return self.build(**merged)


def _log2(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n))))


def _flooding_factory() -> NodeFactory:
    return FloodingNode


def _swamping_factory(full: bool = True) -> NodeFactory:
    return lambda node_id: SwampingNode(node_id, full=full)


def _rpj_factory() -> NodeFactory:
    return RandomPointerJumpNode


def _namedropper_factory(mode: str = "push") -> NodeFactory:
    return lambda node_id: NameDropperNode(node_id, mode=mode)


def _sublog_factory(**config_kwargs: Any) -> NodeFactory:
    config = SubLogConfig(**config_kwargs)
    return lambda node_id: SubLogNode(node_id, config=config)


def _sublogcoin_factory(**config_kwargs: Any) -> NodeFactory:
    config_kwargs.setdefault("contraction", "coin")
    return _sublog_factory(**config_kwargs)


def _det_optimal_factory() -> NodeFactory:
    return DetOptimalNode


def _chord_discover_factory() -> NodeFactory:
    return ChordDiscoverNode


#: The self-healing knobs the sublog family enables under hostile
#: schedules (shared by both variants; see ``SubLogConfig``).
_SUBLOG_HOSTILE = {"resilient": True, "stagnation_phases": 4}


ALGORITHMS: Dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        AlgorithmSpec(
            name="flooding",
            description="flood new knowledge over discovered edges; Θ(D) rounds",
            build=_flooding_factory,
            round_cap=lambda n: 4 * n + 64,
        ),
        AlgorithmSpec(
            name="swamping",
            description="send everything to everyone known; Θ(log D) rounds",
            build=_swamping_factory,
            round_cap=lambda n: 8 * _log2(n) + 32,
        ),
        AlgorithmSpec(
            name="rpj",
            description="random pointer jump (pull gossip); slow on skewed inputs",
            build=_rpj_factory,
            round_cap=lambda n: 40 * n + 200,
        ),
        AlgorithmSpec(
            name="namedropper",
            description="HBLL Name-Dropper push gossip; O(log^2 n) whp",
            build=_namedropper_factory,
            round_cap=lambda n: 20 * _log2(n) ** 2 + 80,
        ),
        AlgorithmSpec(
            name="sublog",
            description=(
                "deterministic cluster merging with delegation and join "
                "forwarding; O(log log n) rounds on low-diameter inputs"
            ),
            build=_sublog_factory,
            round_cap=lambda n: 30 * _log2(n) + 120,
            hostile_params=_SUBLOG_HOSTILE,
        ),
        AlgorithmSpec(
            name="sublogcoin",
            description="randomized star-contraction ablation of sublog",
            build=_sublogcoin_factory,
            round_cap=lambda n: 60 * _log2(n) + 240,
            hostile_params=_SUBLOG_HOSTILE,
        ),
        AlgorithmSpec(
            name="det_optimal",
            description=(
                "KKS-style deterministic aggregation/broadcast; the "
                "message-count floor of the suite (arXiv 1306.1692)"
            ),
            build=_det_optimal_factory,
            round_cap=lambda n: 8 * n + 64,
        ),
        AlgorithmSpec(
            name="chord_discover",
            description=(
                "Chord-style finger-table successor propagation on the "
                "identifier ring (arXiv 1401.2008)"
            ),
            build=_chord_discover_factory,
            round_cap=lambda n: 8 * n + 64,
        ),
    )
}


def register(spec: AlgorithmSpec, *, replace: bool = False) -> AlgorithmSpec:
    """Add *spec* to the registry (the algorithm list everything derives).

    Registration makes the algorithm visible to every registry-driven
    consumer at once: CLI choices built at parser-construction time are
    the one exception, but the fuzzer's coverage cycle, the correctness
    matrices, and the live suite all read :func:`algorithm_names` at call
    time.  Refuses to shadow an existing name unless ``replace=True``.
    """
    if not replace and spec.name in ALGORITHMS:
        raise ValueError(f"algorithm {spec.name!r} is already registered")
    ALGORITHMS[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a registered algorithm (tests registering throwaways)."""
    try:
        del ALGORITHMS[name]
    except KeyError:
        known = ", ".join(algorithm_names())
        raise ValueError(f"unknown algorithm {name!r}; known: {known}") from None


def algorithm_names() -> Tuple[str, ...]:
    return tuple(sorted(ALGORITHMS))


def get_algorithm(name: str) -> AlgorithmSpec:
    try:
        return ALGORITHMS[name]
    except KeyError:
        known = ", ".join(algorithm_names())
        raise ValueError(f"unknown algorithm {name!r}; known: {known}") from None
