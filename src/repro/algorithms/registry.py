"""Algorithm registry: build any shipped discovery protocol by name.

Each entry maps a registry name to an :class:`AlgorithmSpec` that knows how
to construct node factories and how many rounds the algorithm may
reasonably need (used for per-algorithm round caps in the harness).

Registered algorithms:

========== ============================================================
name        protocol
========== ============================================================
flooding    Θ(D)-round flooding baseline
swamping    Θ(log D)-round knowledge-squaring baseline (``full=False``
            for the delta variant)
rpj         Random Pointer Jump (pull gossip; adversarially slow)
namedropper Name-Dropper, O(log² n) whp (``mode="pushpull"`` variant)
sublog      the core sub-logarithmic cluster-merging algorithm
            (deterministic rank contraction with join-forwarding)
sublogcoin  randomized star-contraction ablation (``contraction="coin"``;
            depth-1 merges, Θ(log n) phases)
========== ============================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Tuple

from ..core.config import SubLogConfig
from ..core.sublog import SubLogNode
from ..sim.node import ProtocolNode
from .flooding import FloodingNode
from .name_dropper import NameDropperNode
from .pointer_jump import RandomPointerJumpNode
from .swamping import SwampingNode

NodeFactory = Callable[[int], ProtocolNode]
FactoryBuilder = Callable[..., NodeFactory]
RoundCapFn = Callable[[int], int]


@dataclass(frozen=True)
class AlgorithmSpec:
    """Metadata and constructors for one registered algorithm."""

    name: str
    description: str
    build: FactoryBuilder
    round_cap: RoundCapFn
    default_params: Mapping[str, Any] = field(default_factory=dict)

    def node_factory(self, **params: Any) -> NodeFactory:
        merged = dict(self.default_params)
        merged.update(params)
        return self.build(**merged)


def _log2(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n))))


def _flooding_factory() -> NodeFactory:
    return FloodingNode


def _swamping_factory(full: bool = True) -> NodeFactory:
    return lambda node_id: SwampingNode(node_id, full=full)


def _rpj_factory() -> NodeFactory:
    return RandomPointerJumpNode


def _namedropper_factory(mode: str = "push") -> NodeFactory:
    return lambda node_id: NameDropperNode(node_id, mode=mode)


def _sublog_factory(**config_kwargs: Any) -> NodeFactory:
    config = SubLogConfig(**config_kwargs)
    return lambda node_id: SubLogNode(node_id, config=config)


def _sublogcoin_factory(**config_kwargs: Any) -> NodeFactory:
    config_kwargs.setdefault("contraction", "coin")
    return _sublog_factory(**config_kwargs)


ALGORITHMS: Dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        AlgorithmSpec(
            name="flooding",
            description="flood new knowledge over discovered edges; Θ(D) rounds",
            build=_flooding_factory,
            round_cap=lambda n: 4 * n + 64,
        ),
        AlgorithmSpec(
            name="swamping",
            description="send everything to everyone known; Θ(log D) rounds",
            build=_swamping_factory,
            round_cap=lambda n: 8 * _log2(n) + 32,
        ),
        AlgorithmSpec(
            name="rpj",
            description="random pointer jump (pull gossip); slow on skewed inputs",
            build=_rpj_factory,
            round_cap=lambda n: 40 * n + 200,
        ),
        AlgorithmSpec(
            name="namedropper",
            description="HBLL Name-Dropper push gossip; O(log^2 n) whp",
            build=_namedropper_factory,
            round_cap=lambda n: 20 * _log2(n) ** 2 + 80,
        ),
        AlgorithmSpec(
            name="sublog",
            description=(
                "deterministic cluster merging with delegation and join "
                "forwarding; O(log log n) rounds on low-diameter inputs"
            ),
            build=_sublog_factory,
            round_cap=lambda n: 30 * _log2(n) + 120,
        ),
        AlgorithmSpec(
            name="sublogcoin",
            description="randomized star-contraction ablation of sublog",
            build=_sublogcoin_factory,
            round_cap=lambda n: 60 * _log2(n) + 240,
        ),
    )
}


def algorithm_names() -> Tuple[str, ...]:
    return tuple(sorted(ALGORITHMS))


def get_algorithm(name: str) -> AlgorithmSpec:
    try:
        return ALGORITHMS[name]
    except KeyError:
        known = ", ".join(algorithm_names())
        raise ValueError(f"unknown algorithm {name!r}; known: {known}") from None
