"""Name-Dropper — the O(log² n)-round randomized algorithm of
Harchol-Balter, Leighton, and Lewin (PODC 1999).

Every round, every machine picks one uniformly random machine it knows and
*pushes* its entire pointer list to it.  HBLL prove completion in O(log² n)
rounds with high probability on any weakly connected input, with O(n log² n)
messages — the state of the art that both the deterministic O(log n)-phase
algorithms (Kutten–Peleg–Vishkin) and the sub-logarithmic algorithm
reproduced in :mod:`repro.core` set out to beat.

Variants:

* ``mode="push"`` — the original algorithm.
* ``mode="pushpull"`` — the recipient of a push replies with its own
  knowledge in the next round; a standard rumor-spreading strengthening
  that roughly halves the constant (measured in experiment T5-adjacent
  sweeps) without changing the asymptotics.

The implementation pushes full knowledge (not deltas) because Name-Dropper's
round analysis depends on every push carrying the sender's complete view.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..sim.messages import Message
from .base import DiscoveryNode

_MODES = ("push", "pushpull")


class NameDropperNode(DiscoveryNode):
    """One machine running Name-Dropper.

    Args:
        node_id: This machine's identifier.
        mode: ``"push"`` (HBLL original) or ``"pushpull"``.
    """

    def __init__(self, node_id: int, mode: str = "push") -> None:
        super().__init__(node_id)
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode

    def on_round(
        self, round_no: int, inbox: Sequence[Message], rng: random.Random
    ) -> List[Message]:
        snapshot = self.knowledge_snapshot(include_self=False)
        outbox: List[Message] = []

        if self.mode == "pushpull":
            pushers = sorted(
                {message.sender for message in inbox if message.kind == "push"}
            )
            for pusher in pushers:
                outbox.append(self.message(pusher, "pullback", ids=snapshot - {pusher}))

        peer = self.pick_random_peer(rng)
        if peer is not None:
            outbox.append(self.message(peer, "push", ids=snapshot - {peer}))
        return outbox
