"""Common machinery for discovery protocol implementations.

:class:`DiscoveryNode` extends the protocol core's :class:`ProtocolNode`
with the bookkeeping every gossip-style algorithm needs: knowledge
snapshots (shared, copy-once frozensets so that a broadcast to many
recipients does not materialize the pointer set per recipient) and delta
tracking (ids learned since the last send).

Both caches are derived views of ``self.known``; they are invalidated
through the core's :meth:`~repro.sim.node.ProtocolNode._knowledge_changed`
hook, which fires for *every* sanctioned knowledge write (``absorb``,
``bind``, and host-side ``learn()`` calls alike) — so no host can teach a
node and then read a stale snapshot.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional, Set


from ..sim.node import ProtocolNode


class DiscoveryNode(ProtocolNode):
    """Protocol node with knowledge snapshot/delta helpers."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self._snapshot: Optional[FrozenSet[int]] = None
        self._sent_before: Set[int] = set()

    def _knowledge_changed(self) -> None:
        self._snapshot = None  # knowledge changed; invalidate cache

    def knowledge_snapshot(self, include_self: bool = True) -> FrozenSet[int]:
        """A frozen copy of current knowledge, cached until it changes.

        Sharing one frozenset across all recipients of a round keeps the
        memory cost of full-knowledge broadcasts at O(|known|) per sender
        per round instead of O(|known| × recipients).
        """
        if self._snapshot is None:
            self._snapshot = frozenset(self.known)
        if include_self:
            return self._snapshot
        return self._snapshot - {self.node_id}

    def unsent_delta(self) -> FrozenSet[int]:
        """Ids learned since the last :meth:`mark_sent` call (self excluded)."""
        return frozenset(self.known - self._sent_before - {self.node_id})

    def mark_sent(self) -> None:
        """Record that everything currently known has been shared."""
        self._sent_before = set(self.known)

    def pick_random_peer(self, rng: Optional[random.Random] = None) -> Optional[int]:
        """A uniformly random known machine other than self, or ``None``.

        Draws from *rng* (defaulting to the node's bound stream).  Sorting
        before sampling keeps runs deterministic in the seed: Python set
        iteration order depends on insertion history, which in turn
        depends on inbox ordering — sorting removes that sensitivity.
        """
        peers = sorted(self.known - {self.node_id})
        if not peers:
            return None
        if rng is None:
            rng = self.rng
        return peers[rng.randrange(len(peers))]
