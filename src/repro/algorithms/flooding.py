"""Flooding — the classical O(diameter) baseline.

Each machine repeatedly forwards what it learns to a growing neighbor set:
its initial out-neighbors plus every machine that has ever messaged it
(the reverse edge becomes usable as soon as a neighbor introduces itself,
which happens in round 1).  A neighbor seen for the first time receives the
machine's full knowledge (so it catches up on earlier deltas); established
neighbors receive only the new ids.  Information therefore travels one
undirected hop per round, completing strong discovery in Θ(undirected
diameter) rounds.

Complexity (weakly connected input, diameter D, E initial edges):
    rounds   Θ(D)
    messages O(E · D)  (quiescent senders go silent, so typically less)
    pointers O(n · E)  — each id crosses each undirected edge O(1) times.

Reference: Harchol-Balter, Leighton, Lewin, PODC 1999 (baseline section).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Set

from ..sim.messages import Message
from .base import DiscoveryNode


class FloodingNode(DiscoveryNode):
    """One machine running the flooding baseline."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self._neighbors: Set[int] = set()
        self._greeted: Set[int] = set()

    def setup(self) -> None:
        self._neighbors = set(self.known - {self.node_id})

    def on_round(
        self, round_no: int, inbox: Sequence[Message], rng: random.Random
    ) -> List[Message]:
        for message in inbox:
            self._neighbors.add(message.sender)

        delta = self.unsent_delta()
        self.mark_sent()
        full = self.knowledge_snapshot(include_self=False)
        outbox: List[Message] = []
        for neighbor in sorted(self._neighbors):
            if neighbor not in self._greeted:
                # First contact: ship everything we know so the neighbor
                # catches up on deltas it missed, and introduce ourselves
                # (the empty message still reveals our address).
                self._greeted.add(neighbor)
                outbox.append(self.message(neighbor, "flood", ids=full - {neighbor}))
            else:
                payload = delta - {neighbor}
                if payload:
                    outbox.append(self.message(neighbor, "flood", ids=payload))
        return outbox
