"""Baseline discovery algorithms and the registry."""

from .base import DiscoveryNode
from .flooding import FloodingNode
from .name_dropper import NameDropperNode
from .pointer_jump import RandomPointerJumpNode
from .registry import ALGORITHMS, AlgorithmSpec, algorithm_names, get_algorithm
from .swamping import SwampingNode

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "DiscoveryNode",
    "FloodingNode",
    "NameDropperNode",
    "RandomPointerJumpNode",
    "SwampingNode",
    "algorithm_names",
    "get_algorithm",
]
