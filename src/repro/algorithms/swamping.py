"""Swamping — knowledge-graph squaring, the O(log diameter) round baseline.

Every round, every machine sends its knowledge to *every machine it knows*.
The knowledge graph squares each round (after round t a machine knows its
2^t-neighborhood), so strong discovery completes in ⌈log₂ D⌉ + O(1) rounds
— round-optimal by the ball-containment bound, but at brutal cost: the
number of messages per round grows towards n² and the pointer complexity
towards n³.  Swamping is the "round-optimal but unaffordable" anchor of the
evaluation; the point of the sub-logarithmic algorithm is to beat its round
count on low-diameter inputs while spending ~n messages per round, not n².

Two variants are provided:

* ``full=True`` (classic): sends the entire knowledge set every round —
  the textbook definition, used for the complexity tables at small n.
* ``full=False`` (delta): each established peer receives only ids that are
  new since the previous send *to anyone*; a peer contacted for the first
  time receives the full set.  Round behavior is identical (every known id
  still reaches every known peer — see the invariant below) at sharply
  lower pointer cost, which lets the round-scaling experiments run at
  larger n.

Delta-variant invariant: for every ordered pair (u, w), by the end of the
round after u learns w, every peer v that u knows has been sent w by u —
either inside a delta (v was already greeted) or inside the full greeting
snapshot (v greeted later).

Reference: Harchol-Balter, Leighton, Lewin, PODC 1999.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Set

from ..sim.messages import Message
from .base import DiscoveryNode


class SwampingNode(DiscoveryNode):
    """One machine running swamping.

    Args:
        node_id: This machine's identifier.
        full: Classic full-knowledge sends when ``True`` (default);
            delta sends when ``False``.
    """

    def __init__(self, node_id: int, full: bool = True) -> None:
        super().__init__(node_id)
        self.full = full
        self._greeted: Set[int] = set()

    def on_round(
        self, round_no: int, inbox: Sequence[Message], rng: random.Random
    ) -> List[Message]:
        # One shared snapshot per round: all recipients receive the SAME
        # frozenset object.  Subtracting the recipient per message
        # (``snapshot - {peer}``) would materialize n fresh n-element sets
        # per sender — n³ memory per round, observed as an OOM kill at
        # n = 1024.  Including the recipient's own id is harmless (it
        # knows itself) and matches HBLL's definition, where a machine
        # ships its entire pointer list.
        snapshot = self.knowledge_snapshot(include_self=False)
        outbox: List[Message] = []
        if self.full:
            for peer in sorted(snapshot):
                outbox.append(self.message(peer, "swamp", ids=snapshot))
            return outbox

        delta = self.unsent_delta()
        self.mark_sent()
        for peer in sorted(snapshot):
            if peer not in self._greeted:
                self._greeted.add(peer)
                outbox.append(self.message(peer, "swamp", ids=snapshot))
            else:
                if delta and not (len(delta) == 1 and peer in delta):
                    outbox.append(self.message(peer, "swamp", ids=delta))
        return outbox
