"""Convergence analysis: how fast knowledge saturates during a run.

Built on the per-round history of
:class:`repro.sim.observers.KnowledgeSizeObserver`, this module derives
the *completeness curve* — the fraction of the complete knowledge graph
known after each round — and the summary statistics experiment writeups
quote (rounds to 50/90/99% completeness), plus an ASCII sparkline for
terminal reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

_SPARK_LEVELS = " .:-=+*#%@"


@dataclass(frozen=True)
class ConvergenceCurve:
    """Completeness per round (index 0 = before round 1)."""

    n: int
    completeness: Sequence[float]

    def __post_init__(self) -> None:
        for value in self.completeness:
            if not 0.0 <= value <= 1.0 + 1e-9:
                raise ValueError(f"completeness out of range: {value}")

    @property
    def rounds(self) -> int:
        return max(0, len(self.completeness) - 1)

    def rounds_to(self, fraction: float) -> Optional[int]:
        """First round index at which completeness >= *fraction*."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        for round_index, value in enumerate(self.completeness):
            if value >= fraction - 1e-12:
                return round_index
        return None

    def milestones(self) -> Dict[str, Optional[int]]:
        return {
            "t50": self.rounds_to(0.50),
            "t90": self.rounds_to(0.90),
            "t99": self.rounds_to(0.99),
            "t100": self.rounds_to(1.0),
        }

    def sparkline(self) -> str:
        """One character per round, density proportional to completeness."""
        top = len(_SPARK_LEVELS) - 1
        return "".join(
            _SPARK_LEVELS[min(top, int(value * top))] for value in self.completeness
        )


def curve_from_history(
    history: Sequence[Mapping[str, float]], n: int
) -> ConvergenceCurve:
    """Build a curve from ``KnowledgeSizeObserver.history`` entries.

    Each history entry carries the mean knowledge-set size (including
    self); completeness is the mean fraction of *other* machines known.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return ConvergenceCurve(n=1, completeness=[1.0 for _ in history] or [1.0])
    values: List[float] = []
    for entry in history:
        known_others = max(0.0, float(entry["mean"]) - 1.0)
        values.append(min(1.0, known_others / (n - 1)))
    return ConvergenceCurve(n=n, completeness=values)


def compare_milestones(
    curves: Mapping[str, ConvergenceCurve]
) -> Dict[str, Dict[str, Optional[int]]]:
    """Milestones for several named curves (table-building helper)."""
    return {name: curve.milestones() for name, curve in curves.items()}
