"""Closed-form complexity predictions.

These are the theoretical reference curves the experiment tables print next
to the measurements: the ball-containment lower bound, the per-algorithm
upper-bound shapes, and the cluster-size squaring recurrence of the core
algorithm.
"""

from __future__ import annotations

import math
from typing import List

from ..graphs.knowledge import KnowledgeGraph


def log2(n: float) -> float:
    """log₂ clamped below at 1 (keeps round predictions positive)."""
    return max(1.0, math.log2(max(2.0, float(n))))


def loglog2(n: float) -> float:
    """log₂ log₂, clamped below at 1."""
    return max(1.0, math.log2(log2(n)))


def lower_bound_rounds(graph: KnowledgeGraph, exact: bool = True) -> int:
    """Rounds *every* algorithm needs on *graph*: ⌈log₂ diameter⌉.

    After t rounds a machine's knowledge is contained in its 2^t-ball
    (DESIGN.md section 1), so a machine at undirected distance D from some
    other machine cannot know it before round ⌈log₂ D⌉.  An input that is
    already the complete graph needs 0 rounds; any incomplete input needs
    at least 1 (someone must still be told something).
    """
    if graph.n <= 1:
        return 0
    if all(len(graph.out(node)) == graph.n - 1 for node in graph.node_ids):
        return 0
    diameter = graph.undirected_diameter(exact=exact)
    if diameter <= 1:
        return 1
    return math.ceil(math.log2(diameter))


def swamping_round_bound(graph: KnowledgeGraph, exact: bool = True) -> int:
    """Swamping's round count: ⌈log₂ D⌉ + O(1) (it squares the graph)."""
    return lower_bound_rounds(graph, exact=exact) + 2


def namedropper_round_bound(n: int) -> float:
    """HBLL's whp bound shape for Name-Dropper: O(log² n)."""
    return log2(n) ** 2


def sublog_phase_bound(n: int) -> float:
    """Phases of the core algorithm on dense cluster graphs: O(log log n)."""
    return loglog2(n) + 2


def squaring_recurrence(start: int, target: int, growth: float = 2.0) -> List[int]:
    """The idealized cluster-size trajectory s → s^growth until ≥ target.

    Returns the size after each phase, starting from ``start`` (must be
    ≥ 2 for the recurrence to progress).  ``growth=2.0`` is pure squaring.
    """
    if start < 2:
        raise ValueError(f"start must be >= 2 for the recurrence, got {start}")
    if target < start:
        return [start]
    sizes = [start]
    current = float(start)
    while current < target and len(sizes) < 64:
        current = min(float(target), current**growth)
        sizes.append(int(current))
    return sizes


def phases_to_cover(n: int, start: int = 2, growth: float = 2.0) -> int:
    """Number of squaring phases to grow from ``start`` to ``n``."""
    return max(0, len(squaring_recurrence(start, n, growth)) - 1)


def optimal_message_bound(n: int) -> int:
    """The trivial Ω(n) message lower bound for discovery.

    Every machine except one must receive at least one message (it cannot
    otherwise learn anything beyond its initial knowledge), so any
    algorithm completing strong discovery sends ≥ n - 1 messages.
    """
    return max(0, n - 1)


def strong_discovery_pointer_bound(n: int) -> int:
    """Pointer lower bound for *strong* discovery: Ω(n²).

    Each of the n machines must end up knowing n - 1 identifiers, and a
    machine learns at most one new identifier per pointer received (plus
    one per message for the sender), so the total pointers + messages
    received is at least n(n-1) minus the initial knowledge.
    """
    return max(0, n * (n - 1) // 2)
