"""Runtime invariant checkers.

Three invariants tie the simulator to the theory (DESIGN.md section 1):

* **Ball containment** — for every algorithm, after t rounds a machine can
  know only machines within undirected distance 2^t of it in the initial
  graph.  This is the information-propagation lower bound; checking it at
  runtime simultaneously validates the simulator (no illegal channel
  exists) and every algorithm (no cheating).
* **Knowledge monotonicity** — knowledge sets never shrink.
* **View consistency** — each protocol node's private view of its
  knowledge equals the engine's ground truth.

The checkers are observers; attach them via ``discover(observers=[...])``.
They record violations and can raise immediately (``strict=True``).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Collection,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..graphs.knowledge import KnowledgeGraph
from ..sim.observers import Observer

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import SynchronousEngine


class InvariantViolation(AssertionError):
    """An invariant checker observed an impossible state."""


# -- knowledge-closure predicates ---------------------------------------------------
#
# Pure functions over plain ``{node: known_ids}`` mappings, independent of
# any engine.  They define what "discovery finished" *means*, so the
# simulation oracle (``repro.oracle``) recomputes goal predicates through
# them rather than trusting the engine's incremental counters.


def closure_deficit(
    knowledge: Mapping[int, Collection[int]],
    universe: Optional[Iterable[int]] = None,
    holders: Optional[Iterable[int]] = None,
) -> List[Tuple[int, int]]:
    """Pairs ``(holder, target)`` still missing from full closure.

    A knowledge state is *closed* (strong discovery) when every holder
    knows every target.  ``universe`` is the target set each holder must
    know (default: the mapping's keys); ``holders`` is the set of nodes
    required to be complete (default: the universe).  Self-knowledge is
    not required: ``(v, v)`` never appears in the deficit.

    The returned pairs are sorted, so tests can assert on them exactly.
    """
    targets = frozenset(universe if universe is not None else knowledge)
    required = frozenset(holders if holders is not None else targets)
    missing: List[Tuple[int, int]] = []
    for holder in sorted(required):
        known = knowledge.get(holder, ())
        for target in sorted(targets - frozenset(known)):
            if target != holder:
                missing.append((holder, target))
    return missing


def is_knowledge_closed(
    knowledge: Mapping[int, Collection[int]],
    universe: Optional[Iterable[int]] = None,
    holders: Optional[Iterable[int]] = None,
) -> bool:
    """Whether :func:`closure_deficit` is empty (strong discovery holds)."""
    return not closure_deficit(knowledge, universe=universe, holders=holders)


def weak_closure_witnesses(
    knowledge: Mapping[int, Collection[int]],
) -> List[int]:
    """Nodes satisfying the weak-discovery condition, sorted.

    A witness knows every node *and* is known by every node.  Weak
    discovery holds iff at least one witness exists.
    """
    universe = frozenset(knowledge)
    complete = [
        node
        for node in sorted(universe)
        if not (universe - frozenset(knowledge[node]) - {node})
    ]
    witnesses: List[int] = []
    for candidate in complete:
        if all(
            candidate in knowledge[other] or other == candidate
            for other in universe
        ):
            witnesses.append(candidate)
    return witnesses


class BallContainmentObserver(Observer):
    """Checks knowledge_t(v) ⊆ B_{2^t}(v) every round.

    Cost: one all-pairs BFS at setup (O(n·E)) plus O(total knowledge) per
    round — intended for test- and experiment-scale runs (n up to a few
    thousand).  Checking stops automatically once 2^t reaches the graph
    diameter, after which the bound is vacuous.

    Args:
        graph: The *initial* knowledge graph of the run.
        strict: Raise :class:`InvariantViolation` on the first violation
            instead of merely recording it.
    """

    def __init__(self, graph: KnowledgeGraph, strict: bool = True) -> None:
        self.graph = graph
        self.strict = strict
        self.violations: List[Dict[str, int]] = []
        self.max_radius_by_round: List[int] = []
        self._distances: Dict[int, Dict[int, int]] = {}
        self._diameter = 0
        self._done = False

    def on_setup(self, engine: "SynchronousEngine") -> None:
        if set(engine.node_ids) != set(self.graph.node_ids):
            raise ValueError("observer graph does not match the engine's node set")
        for node in self.graph.node_ids:
            self._distances[node] = self.graph.undirected_distances(node)
        self._diameter = max(
            max(per_node.values()) for per_node in self._distances.values()
        )

    def on_round_end(self, engine: "SynchronousEngine", round_no: int) -> None:
        if self._done:
            return
        allowed = 1 << round_no  # 2^round_no
        observed_max = 0
        for node in engine.node_ids:
            distances = self._distances[node]
            for known in engine.knowledge[node]:
                distance = distances.get(known)
                if distance is None:
                    continue  # different weak component (fault scenarios)
                if distance > observed_max:
                    observed_max = distance
                if distance > allowed:
                    record = {
                        "round": round_no,
                        "node": node,
                        "knows": known,
                        "distance": distance,
                        "allowed": allowed,
                    }
                    self.violations.append(record)
                    if self.strict:
                        raise InvariantViolation(
                            f"round {round_no}: node {node} knows {known} at "
                            f"undirected distance {distance} > 2^t = {allowed}"
                        )
        self.max_radius_by_round.append(observed_max)
        if allowed >= self._diameter:
            self._done = True  # bound is vacuous from here on

    def extra(self) -> Dict[str, Any]:
        return {
            "ball_violations": list(self.violations),
            "max_knowledge_radius": list(self.max_radius_by_round),
        }


class MonotonicityObserver(Observer):
    """Checks that ground-truth knowledge sets never shrink."""

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.violations: List[Dict[str, int]] = []
        self._previous_sizes: Dict[int, int] = {}

    def on_setup(self, engine: "SynchronousEngine") -> None:
        self._previous_sizes = {
            node: len(knowledge) for node, knowledge in engine.knowledge.items()
        }

    def on_round_end(self, engine: "SynchronousEngine", round_no: int) -> None:
        for node, knowledge in engine.knowledge.items():
            size = len(knowledge)
            if size < self._previous_sizes[node]:
                record = {"round": round_no, "node": node, "size": size}
                self.violations.append(record)
                if self.strict:
                    raise InvariantViolation(
                        f"round {round_no}: node {node} knowledge shrank"
                    )
            self._previous_sizes[node] = size

    def extra(self) -> Dict[str, Any]:
        return {"monotonicity_violations": list(self.violations)}


def verify_view_consistency(engine: "SynchronousEngine") -> Optional[str]:
    """Compare each live node's private view with the ground truth.

    Returns ``None`` when consistent, else a description of the first
    mismatch.  Call after :meth:`SynchronousEngine.run` returns.
    """
    for node_id in engine.node_ids:
        if node_id in engine.crashed_nodes:
            continue
        protocol_view = engine.nodes[node_id].known
        ground_truth = engine.knowledge[node_id]
        if protocol_view != ground_truth:
            missing = ground_truth - protocol_view
            extra = protocol_view - ground_truth
            return (
                f"node {node_id}: view differs from ground truth "
                f"(missing {sorted(missing)[:5]}, extra {sorted(extra)[:5]})"
            )
    return None
