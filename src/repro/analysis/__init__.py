"""Theory hooks: invariants, bounds, curve fitting, convergence, statistics."""

from .convergence import (
    ConvergenceCurve,
    compare_milestones,
    curve_from_history,
)
from .bounds import (
    log2,
    loglog2,
    lower_bound_rounds,
    namedropper_round_bound,
    optimal_message_bound,
    phases_to_cover,
    squaring_recurrence,
    strong_discovery_pointer_bound,
    sublog_phase_bound,
    swamping_round_bound,
)
from .fitting import (
    GROWTH_MODELS,
    ModelFit,
    best_model,
    compare_models,
    describe_fits,
    fit_all_models,
    fit_model,
)
from .invariants import (
    BallContainmentObserver,
    InvariantViolation,
    MonotonicityObserver,
    closure_deficit,
    is_knowledge_closed,
    verify_view_consistency,
    weak_closure_witnesses,
)
from .stats import Aggregate, aggregate, aggregate_results, completion_rate, group_by

__all__ = [
    "Aggregate",
    "BallContainmentObserver",
    "ConvergenceCurve",
    "compare_milestones",
    "curve_from_history",
    "GROWTH_MODELS",
    "InvariantViolation",
    "ModelFit",
    "MonotonicityObserver",
    "aggregate",
    "aggregate_results",
    "best_model",
    "closure_deficit",
    "compare_models",
    "completion_rate",
    "is_knowledge_closed",
    "describe_fits",
    "fit_all_models",
    "fit_model",
    "group_by",
    "log2",
    "loglog2",
    "lower_bound_rounds",
    "namedropper_round_bound",
    "optimal_message_bound",
    "phases_to_cover",
    "squaring_recurrence",
    "strong_discovery_pointer_bound",
    "sublog_phase_bound",
    "swamping_round_bound",
    "verify_view_consistency",
    "weak_closure_witnesses",
]
