"""Seed aggregation and confidence intervals for experiment tables.

Randomized algorithms are run over several seeds; the tables report the
median (robust to the occasional unlucky coin sequence) together with a
Student-t confidence interval on the mean, computed with scipy.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from scipy import stats as scipy_stats

from ..sim.metrics import RunResult


@dataclass(frozen=True)
class Aggregate:
    """Summary statistics of one metric across seeds."""

    count: int
    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def format(self, digits: int = 1) -> str:
        """Human-readable ``median [min..max]`` rendering."""
        return (
            f"{self.median:.{digits}f} "
            f"[{self.minimum:.{digits}f}..{self.maximum:.{digits}f}]"
        )


def aggregate(values: Sequence[float], confidence: float = 0.95) -> Aggregate:
    """Aggregate one metric across seeds with a t-interval on the mean."""
    if not values:
        raise ValueError("cannot aggregate an empty sample")
    data = [float(v) for v in values]
    mean = statistics.fmean(data)
    median = statistics.median(data)
    if len(data) > 1:
        stdev = statistics.stdev(data)
        sem = stdev / math.sqrt(len(data))
        if sem > 0:
            margin = scipy_stats.t.ppf((1 + confidence) / 2, df=len(data) - 1) * sem
        else:
            margin = 0.0
    else:
        stdev = 0.0
        margin = 0.0
    return Aggregate(
        count=len(data),
        mean=mean,
        median=median,
        stdev=stdev,
        minimum=min(data),
        maximum=max(data),
        ci_low=mean - margin,
        ci_high=mean + margin,
    )


def aggregate_results(
    results: Iterable[RunResult], metric: str = "rounds"
) -> Aggregate:
    """Aggregate one :class:`RunResult` attribute across seeds."""
    values = [float(getattr(result, metric)) for result in results]
    return aggregate(values)


def completion_rate(results: Sequence[RunResult]) -> float:
    """Fraction of runs that reached the goal."""
    if not results:
        raise ValueError("cannot compute completion rate of an empty sample")
    return sum(1 for result in results if result.completed) / len(results)


def group_by(
    results: Iterable[RunResult], *keys: str
) -> Dict[tuple, List[RunResult]]:
    """Group results by RunResult attributes (e.g. ``"algorithm"``, ``"n"``)."""
    grouped: Dict[tuple, List[RunResult]] = {}
    for result in results:
        key = tuple(getattr(result, attribute) for attribute in keys)
        grouped.setdefault(key, []).append(result)
    return grouped
