"""Growth-model fitting for round-scaling curves.

The asymptotic claims of the paper are about *shapes*: rounds(sublog) ~
log log n versus rounds(namedropper) ~ log² n.  With laptop-scale n the
constants matter, so instead of eyeballing, the harness fits each measured
curve against the candidate growth models by least squares and reports the
best model and its residuals.  Tests assert the *relative* ordering (the
sub-logarithmic model fits the core algorithm at least as well as the
logarithmic one, and strictly better than quadratic-log), which is robust
at small n.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

ModelFn = Callable[[float], float]

#: Candidate growth models for rounds-vs-n curves.
GROWTH_MODELS: Dict[str, ModelFn] = {
    "loglog": lambda n: math.log2(max(2.0, math.log2(max(2.0, n)))),
    "log": lambda n: math.log2(max(2.0, n)),
    "log2": lambda n: math.log2(max(2.0, n)) ** 2,
    "sqrt": lambda n: math.sqrt(n),
    "linear": lambda n: float(n),
}


@dataclass(frozen=True)
class ModelFit:
    """Least-squares fit of one growth model to a measured curve."""

    model: str
    scale: float  # a in y ≈ a·f(n) + b
    offset: float  # b
    rmse: float
    r_squared: float

    def predict(self, n: float) -> float:
        return self.scale * GROWTH_MODELS[self.model](n) + self.offset


def fit_model(
    sizes: Sequence[float], values: Sequence[float], model: str
) -> ModelFit:
    """Fit ``values ≈ a·f(sizes) + b`` for the named growth model."""
    if model not in GROWTH_MODELS:
        raise ValueError(f"unknown model {model!r}; known: {sorted(GROWTH_MODELS)}")
    if len(sizes) != len(values):
        raise ValueError("sizes and values must have equal length")
    if len(sizes) < 2:
        raise ValueError("need at least two points to fit a model")
    transform = GROWTH_MODELS[model]
    xs = np.array([transform(float(n)) for n in sizes])
    ys = np.array([float(v) for v in values])
    design = np.vstack([xs, np.ones_like(xs)]).T
    (scale, offset), *_ = np.linalg.lstsq(design, ys, rcond=None)
    predictions = design @ np.array([scale, offset])
    residuals = ys - predictions
    rmse = float(np.sqrt(np.mean(residuals**2)))
    total = float(np.sum((ys - ys.mean()) ** 2))
    r_squared = 1.0 - float(np.sum(residuals**2)) / total if total > 0 else 1.0
    return ModelFit(
        model=model,
        scale=float(scale),
        offset=float(offset),
        rmse=rmse,
        r_squared=r_squared,
    )


def fit_all_models(
    sizes: Sequence[float], values: Sequence[float]
) -> List[ModelFit]:
    """Fit every candidate model, best (lowest RMSE) first."""
    fits = [fit_model(sizes, values, model) for model in GROWTH_MODELS]
    fits.sort(key=lambda fit: fit.rmse)
    return fits


def best_model(sizes: Sequence[float], values: Sequence[float]) -> ModelFit:
    """The model with the lowest RMSE on this curve."""
    return fit_all_models(sizes, values)[0]


def compare_models(
    sizes: Sequence[float],
    values: Sequence[float],
    candidate: str,
    against: str,
) -> Tuple[ModelFit, ModelFit]:
    """Fits of two named models, for relative-shape assertions in tests."""
    return (
        fit_model(sizes, values, candidate),
        fit_model(sizes, values, against),
    )


def describe_fits(fits: Sequence[ModelFit]) -> str:
    """Render fits as a compact table fragment for experiment output."""
    lines = [
        f"  {fit.model:>7}: y = {fit.scale:8.3f}*f(n) + {fit.offset:8.3f}  "
        f"rmse={fit.rmse:7.3f}  R^2={fit.r_squared:6.3f}"
        for fit in fits
    ]
    return "\n".join(lines)
