"""Base class for protocol nodes running inside the synchronous engine.

A protocol implements one subclass of :class:`ProtocolNode` and overrides
:meth:`ProtocolNode.on_round`.  The engine drives the node; the node's only
way to affect the world is :meth:`ProtocolNode.send`.

Timing model (classic synchronous rounds): a message sent in round *r* is
received — and its sender and carried ids learned — at the **end of round
r**; the recipient *acts* on it in round *r + 1*.  The engine therefore
calls :meth:`absorb` at acceptance time and :meth:`run_round` at the start
of the next round.

Nodes keep their *own* view of what they know (``self.known``).  The engine
independently tracks ground-truth knowledge for legality enforcement and
goal detection; a property test asserts the two views never diverge for the
shipped protocols.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Collection, Iterable, List, Sequence, Set

from .messages import Message


class ProtocolNode(abc.ABC):
    """One machine participating in a discovery protocol.

    Subclasses must call ``super().__init__(node_id)`` and implement
    :meth:`on_round`.  The engine calls :meth:`bind` exactly once before the
    first round to provide the initial knowledge and the node's private
    random stream.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.known: Set[int] = {node_id}
        self.rng: random.Random = random.Random(0)
        self.halted = False
        self._outbox: List[Message] = []

    # -- engine-facing lifecycle -------------------------------------------------

    def bind(self, initial_knowledge: Iterable[int], rng: random.Random) -> None:
        """Install initial knowledge and RNG; then run protocol setup."""
        self.known.update(initial_knowledge)
        self.rng = rng
        self.setup()

    def absorb(self, message: Message) -> None:
        """Learn from *message* at acceptance time (end of sending round)."""
        self.known.add(message.sender)
        self.known.update(message.ids)

    def run_round(self, round_no: int, inbox: Sequence[Message]) -> None:
        """Engine entry point for executing one round (inbox pre-absorbed)."""
        self.on_round(round_no, inbox)

    def drain_outbox(self) -> List[Message]:
        """Hand pending sends to the engine (called once per round)."""
        outbox, self._outbox = self._outbox, []
        return outbox

    # -- protocol-facing API -----------------------------------------------------

    def setup(self) -> None:
        """Hook run once after :meth:`bind`; override when needed."""

    @abc.abstractmethod
    def on_round(self, round_no: int, inbox: Sequence[Message]) -> None:
        """Execute one synchronous round.

        Args:
            round_no: 1-based round number (round 1 has an empty inbox and
                serves as the protocol's initiation round).
            inbox: Messages sent to this node in round ``round_no - 1``.
                Their senders and carried ids are already in ``self.known``.
        """

    def send(
        self,
        recipient: int,
        kind: str,
        ids: Collection[int] = (),
        data: Any = None,
    ) -> None:
        """Queue a message for delivery at the end of the current round.

        The engine validates the model's legality rule (recipient and all
        carried ids must currently be known to this node) when it collects
        the outbox; violations raise
        :class:`repro.sim.errors.ProtocolViolation`.
        """
        if recipient == self.node_id:
            raise ValueError(f"node {self.node_id} attempted to message itself")
        self._outbox.append(
            Message(kind=kind, sender=self.node_id, recipient=recipient, ids=ids, data=data)
        )

    def halt(self) -> None:
        """Mark this node as locally finished (diagnostic only).

        Halting is advisory: the engine keeps delivering messages so that
        quiescence bugs surface in tests rather than being masked.
        """
        self.halted = True

    # -- conveniences -------------------------------------------------------------

    @property
    def others_known(self) -> Set[int]:
        """Knowledge excluding this node itself (fresh set)."""
        return self.known - {self.node_id}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.node_id}, |known|={len(self.known)})"
