"""The transport-agnostic protocol core.

A protocol implements one subclass of :class:`ProtocolNode` and overrides
:meth:`ProtocolNode.on_round`.  The node is a *pure protocol state
machine*: it holds no reference to whatever host is driving it, and its
only way to affect the world is the outbox its round transition produces.
Two hosts ship with the repository — the synchronous simulator
(:class:`repro.sim.engine.SynchronousEngine`) and the live asyncio
runtime (:mod:`repro.live`) — and both drive the identical node code
through the same three entry points:

* :meth:`bind` — install initial knowledge and the node's private RNG
  (exactly once, before the first round);
* :meth:`absorb` — learn from a delivered message at acceptance time;
* :meth:`run_round` — execute one round against an inbox and return the
  outbox of messages to dispatch.

Timing model (classic synchronous rounds): a message sent in round *r* is
received — and its sender and carried ids learned — at the **end of round
r**; the recipient *acts* on it in round *r + 1*.  Hosts therefore call
:meth:`absorb` at acceptance time and :meth:`run_round` at the start of
the next round.

Knowledge discipline: every write to ``self.known`` funnels through
:meth:`learn` (``absorb`` and ``bind`` included), which fires the
:meth:`_knowledge_changed` hook whenever knowledge actually grew.
Subclasses that cache derived views of ``known`` (snapshots, deltas —
see :class:`repro.algorithms.base.DiscoveryNode`) invalidate them in that
hook, so a host that teaches a node through any sanctioned path can never
observe a stale cache.  Hosts and applications must never mutate
``node.known`` directly.

Nodes keep their *own* view of what they know (``self.known``).  The
simulator host independently tracks ground-truth knowledge for legality
enforcement and goal detection; a property test asserts the two views
never diverge for the shipped protocols.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Collection, Iterable, List, Optional, Sequence, Set

from .messages import Message


class ProtocolNode(abc.ABC):
    """One machine participating in a discovery protocol.

    Subclasses must call ``super().__init__(node_id)`` and implement
    :meth:`on_round`.  The host calls :meth:`bind` exactly once before the
    first round to provide the initial knowledge and the node's private
    random stream.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.known: Set[int] = {node_id}
        self.rng: random.Random = random.Random(0)
        self.halted = False
        self._outbox: List[Message] = []

    # -- host-facing lifecycle -----------------------------------------------------

    def bind(self, initial_knowledge: Iterable[int], rng: random.Random) -> None:
        """Install initial knowledge and RNG; then run protocol setup."""
        self.learn(initial_knowledge)
        self.rng = rng
        self.setup()

    def learn(self, ids: Iterable[int] = (), *, sender: Optional[int] = None) -> None:
        """The single funnel through which knowledge enters this node.

        Every sanctioned write path — :meth:`bind`, :meth:`absorb`, a
        host teaching the node out of band — goes through here, so the
        :meth:`_knowledge_changed` hook fires on *every* actual growth
        and caches derived from ``known`` can never go stale.
        """
        known = self.known
        before = len(known)
        known.update(ids)
        if sender is not None:
            known.add(sender)
        if len(known) != before:
            self._knowledge_changed()

    def _knowledge_changed(self) -> None:
        """Hook fired by :meth:`learn` when knowledge actually grew.

        Subclasses caching derived views of ``known`` override this to
        invalidate them; the base implementation does nothing.
        """

    def absorb(self, message: Message) -> None:
        """Learn from *message* at acceptance time (end of sending round)."""
        self.learn(message.ids, sender=message.sender)

    def run_round(self, round_no: int, inbox: Sequence[Message]) -> List[Message]:
        """Host entry point: execute one round, return the outbox.

        The returned list merges messages queued through :meth:`send`
        during the transition with any sequence :meth:`on_round` returned
        directly; the internal queue is left empty either way.
        """
        returned = self.on_round(round_no, inbox, self.rng)
        outbox, self._outbox = self._outbox, []
        if returned:
            outbox.extend(returned)
        return outbox

    def drain_outbox(self) -> List[Message]:
        """Hand any messages queued outside a round transition to the host.

        Hosts normally consume the outbox :meth:`run_round` returns; this
        exists for tests and tooling that queue via :meth:`send` directly.
        """
        outbox, self._outbox = self._outbox, []
        return outbox

    # -- protocol-facing API -----------------------------------------------------

    def setup(self) -> None:
        """Hook run once after :meth:`bind`; override when needed."""

    @abc.abstractmethod
    def on_round(
        self, round_no: int, inbox: Sequence[Message], rng: random.Random
    ) -> Optional[Sequence[Message]]:
        """Execute one synchronous round: a pure state transition.

        Given the current protocol state, the round number, the inbox,
        and the node's private random stream, mutate only local protocol
        state and produce the round's outbox — either by returning a
        sequence of messages (preferred; build them with
        :meth:`message`), by queueing through :meth:`send`, or both.

        Args:
            round_no: 1-based round number (round 1 has an empty inbox and
                serves as the protocol's initiation round).
            inbox: Messages sent to this node in round ``round_no - 1``.
                Their senders and carried ids are already in ``self.known``.
            rng: The node's private random stream (the same object as
                ``self.rng``; passed explicitly so the transition's inputs
                are all visible in its signature).
        """

    def message(
        self,
        recipient: int,
        kind: str,
        ids: Collection[int] = (),
        data: Any = None,
    ) -> Message:
        """Construct (without queueing) a message from this node.

        The host validates the model's legality rule (recipient and all
        carried ids must currently be known to this node) when it collects
        the outbox; violations raise
        :class:`repro.sim.errors.ProtocolViolation`.
        """
        if recipient == self.node_id:
            raise ValueError(f"node {self.node_id} attempted to message itself")
        return Message(
            kind=kind, sender=self.node_id, recipient=recipient, ids=ids, data=data
        )

    def send(
        self,
        recipient: int,
        kind: str,
        ids: Collection[int] = (),
        data: Any = None,
    ) -> None:
        """Queue a message for the current round's outbox.

        Imperative convenience over :meth:`message` for protocols whose
        transitions fan out across handler methods (e.g. the sub-log
        cluster protocol); :meth:`run_round` merges the queue into the
        outbox it returns.
        """
        self._outbox.append(self.message(recipient, kind, ids=ids, data=data))

    def halt(self) -> None:
        """Mark this node as locally finished (diagnostic only).

        Halting is advisory: hosts keep delivering messages so that
        quiescence bugs surface in tests rather than being masked.
        """
        self.halted = True

    # -- conveniences -------------------------------------------------------------

    @property
    def others_known(self) -> Set[int]:
        """Knowledge excluding this node itself (fresh set)."""
        return self.known - {self.node_id}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.node_id}, |known|={len(self.known)})"
