"""Observer hooks for inspecting a run without perturbing it.

Observers receive the engine itself, so they can read ground-truth
knowledge, per-node protocol state, and metrics.  They must treat all of it
as read-only; mutating simulation state from an observer is a bug.

Shipped observers:

* :class:`KnowledgeSizeObserver` — per-round min/mean/max knowledge sizes,
  the raw material of convergence plots.
* :class:`RoundLogObserver` — lightweight textual trace for debugging.

The lower-bound checker lives in :mod:`repro.analysis.invariants` because it
needs graph machinery, but it plugs into the same interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import SynchronousEngine


class Observer:
    """Base observer; override any subset of the hooks."""

    #: Set to ``True`` by observers that consume the engine's per-round
    #: delivery log (``engine._delivery_log``: one ``(message, delay,
    #: drop_reason)`` entry per scheduled delivery).  The engine only
    #: materializes the log when some attached observer wants it, so the
    #: hot loop stays free of per-message bookkeeping by default.
    wants_deliveries = False

    def on_setup(self, engine: "SynchronousEngine") -> None:
        """Called once after nodes are bound, before round 1."""

    def on_round_end(self, engine: "SynchronousEngine", round_no: int) -> None:
        """Called after each round's messages have been accounted."""

    def on_finish(self, engine: "SynchronousEngine", completed: bool) -> None:
        """Called once when the run stops."""

    def extra(self) -> Dict[str, Any]:
        """Observations merged into ``RunResult.extra`` (keyed per observer)."""
        return {}


class KnowledgeSizeObserver(Observer):
    """Tracks the distribution of knowledge-set sizes per round."""

    def __init__(self) -> None:
        self.history: List[Dict[str, float]] = []

    def _snapshot(self, engine: "SynchronousEngine", round_no: int) -> None:
        sizes = [len(knowledge) for knowledge in engine.knowledge.values()]
        self.history.append(
            {
                "round": round_no,
                "min": float(min(sizes)),
                "mean": sum(sizes) / len(sizes),
                "max": float(max(sizes)),
            }
        )

    def on_setup(self, engine: "SynchronousEngine") -> None:
        self._snapshot(engine, 0)

    def on_round_end(self, engine: "SynchronousEngine", round_no: int) -> None:
        self._snapshot(engine, round_no)

    def extra(self) -> Dict[str, Any]:
        return {"knowledge_sizes": list(self.history)}


class LoadObserver(Observer):
    """Tracks per-machine communication load: the congestion profile.

    Message-count optimality says nothing about *where* the messages
    land.  This observer records, per round, the maximum number of
    messages any single machine received and the running per-machine
    receive totals — revealing hotspots (e.g. cluster leaders absorbing
    O(cluster) reports per phase) that uniform gossip does not have.
    """

    def __init__(self) -> None:
        self.max_in_per_round: List[int] = []
        self.total_in: Dict[int, int] = {}
        self._n = 1

    def on_setup(self, engine: "SynchronousEngine") -> None:
        self._n = engine.n

    def on_round_end(self, engine: "SynchronousEngine", round_no: int) -> None:
        peak = 0
        for recipient, inbox in engine._inboxes.items():
            count = len(inbox)
            self.total_in[recipient] = self.total_in.get(recipient, 0) + count
            if count > peak:
                peak = count
        self.max_in_per_round.append(peak)

    def peak_receive_load(self) -> int:
        """Largest single-round inbox any machine ever saw."""
        return max(self.max_in_per_round, default=0)

    def load_skew(self) -> float:
        """Hottest machine's total receives over the fleet-wide mean.

        1.0 = perfectly uniform; large values = a hotspot exists.
        """
        if not self.total_in:
            return 1.0
        mean = sum(self.total_in.values()) / self._n
        return max(self.total_in.values()) / mean if mean else 1.0

    def extra(self) -> Dict[str, Any]:
        return {
            "peak_receive_load": self.peak_receive_load(),
            "load_skew": self.load_skew(),
        }


class RoundLogObserver(Observer):
    """Collects a human-readable line per round (for debugging sessions)."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def on_round_end(self, engine: "SynchronousEngine", round_no: int) -> None:
        stats = engine.metrics.round_stats[-1]
        complete = sum(
            1 for knowledge in engine.knowledge.values() if len(knowledge) == engine.n
        )
        self.lines.append(
            f"round {round_no:>4}: msgs={stats.messages:<8} ptrs={stats.pointers:<10} "
            f"complete-nodes={complete}/{engine.n}"
        )

    def extra(self) -> Dict[str, Any]:
        return {"round_log": list(self.lines)}
