"""The synchronous round engine.

:class:`SynchronousEngine` executes a discovery protocol over an initial
knowledge graph, enforcing the communication model of DESIGN.md section 1:

* a machine may message only machines it currently knows;
* a message may carry only identifiers its sender currently knows;
* recipients learn the sender and every carried identifier at the end of
  the sending round, and act on the message in the following round.

The engine keeps *ground-truth* knowledge sets independently of the
protocol's own bookkeeping.  Ground truth drives the legality checks, the
goal predicates, and — via observers — the lower-bound experiments, so a
buggy or adversarial protocol cannot misreport its own progress.
"""

from __future__ import annotations

import math
from typing import (
    Any,
    Callable,
    Collection,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .churn import JoinPlan
from .errors import EngineStateError, ProtocolViolation, UnknownNodeError
from .faults import FaultInjector, FaultPlan
from .messages import Message
from .metrics import MetricsCollector, RunResult
from .node import ProtocolNode
from .observers import Observer
from .rng import derive_rng

NodeFactory = Callable[[int], ProtocolNode]
GoalPredicate = Callable[["SynchronousEngine"], bool]

#: Named goal predicates selectable by string.
GOALS = ("strong", "weak", "strong_alive")

_EMPTY_INBOX: Tuple[Message, ...] = ()


def default_max_rounds(n: int) -> int:
    """A generous default round cap: far above every shipped algorithm's
    needs (which are polylogarithmic), yet low enough that a livelocked
    protocol fails fast in tests."""
    return 200 + 60 * max(1, math.ceil(math.log2(n + 1)))


def _normalize_graph(
    graph: Union[Mapping[int, Collection[int]], Any],
) -> Dict[int, frozenset[int]]:
    """Accept a KnowledgeGraph-like object or a plain adjacency mapping."""
    if hasattr(graph, "node_ids") and hasattr(graph, "out"):
        return {node: frozenset(graph.out(node)) for node in graph.node_ids}
    if isinstance(graph, Mapping):
        return {node: frozenset(neighbors) for node, neighbors in graph.items()}
    raise TypeError(f"unsupported graph type: {type(graph).__name__}")


class SynchronousEngine:
    """Runs one protocol instance per machine in lock-step rounds.

    Args:
        graph: Initial knowledge graph — a :class:`repro.graphs.KnowledgeGraph`
            or a mapping ``{node_id: out_neighbors}``.
        node_factory: Called once per node id to build its protocol node.
        seed: Master seed; all protocol and fault randomness derives from it.
        goal: ``"strong"`` (everyone knows everyone), ``"weak"`` (some node
            knows everyone and everyone knows it), ``"strong_alive"``
            (every non-crashed node knows every non-crashed node), or a
            custom predicate over the engine.
        fault_plan: Optional :class:`repro.sim.faults.FaultPlan`.
        join_plan: Optional :class:`repro.sim.churn.JoinPlan` — machines
            listed in it are dormant (not executing, unreachable) until
            their join round.
        jitter: Bounded-asynchrony knob.  A message sent in round ``r`` is
            delivered at the start of round ``r + d`` where ``d`` is drawn
            uniformly from ``1 .. 1 + jitter`` (deterministically in the
            seed).  ``jitter=0`` is the classic synchronous model; larger
            values stress protocols whose phase structure assumes
            lockstep delivery (experiment T7).
        observers: Read-only observers notified per round.
        enforce_legality: Verify the ids of every message against the
            sender's ground-truth knowledge.  Costs O(total pointers);
            benchmarks may disable it, tests keep it on.
        algorithm_name / params: Metadata copied into the result.
    """

    def __init__(
        self,
        graph: Union[Mapping[int, Collection[int]], Any],
        node_factory: NodeFactory,
        *,
        seed: int = 0,
        goal: Union[str, GoalPredicate] = "strong",
        fault_plan: Optional[FaultPlan] = None,
        join_plan: Optional[JoinPlan] = None,
        jitter: int = 0,
        observers: Iterable[Observer] = (),
        enforce_legality: bool = True,
        algorithm_name: str = "custom",
        params: Optional[Mapping[str, Any]] = None,
    ) -> None:
        adjacency = _normalize_graph(graph)
        self.node_ids: Tuple[int, ...] = tuple(sorted(adjacency))
        if not self.node_ids:
            raise ValueError("cannot simulate an empty graph")
        self.n = len(self.node_ids)
        self._id_set = frozenset(self.node_ids)
        for node, neighbors in adjacency.items():
            stray = neighbors - self._id_set
            if stray:
                raise UnknownNodeError(
                    f"node {node} initially knows non-existent nodes {sorted(stray)[:5]}"
                )

        self.seed = seed
        self.goal = goal
        self._goal_fn = self._resolve_goal(goal)
        self.enforce_legality = enforce_legality
        self.algorithm_name = algorithm_name
        self.params: Dict[str, Any] = dict(params or {})
        self.metrics = MetricsCollector()
        self.observers: Tuple[Observer, ...] = tuple(observers)
        self._faults = FaultInjector(fault_plan, seed)
        self._joins = join_plan or JoinPlan()
        for node in self._joins.join_rounds:
            if node not in self._id_set:
                raise UnknownNodeError(f"join plan lists unknown node {node}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.jitter = jitter
        self._delay_rng = derive_rng(seed, "delivery-jitter")

        # Ground-truth knowledge and its derived counters.
        self.knowledge: Dict[int, set[int]] = {}
        self._known_by: Dict[int, int] = {node: 0 for node in self.node_ids}
        self._complete_nodes = 0
        self._alive: set[int] = set(self.node_ids)
        self._alive_known: Dict[int, int] = {}
        self._alive_complete = 0
        for node in self.node_ids:
            initial = set(adjacency[node])
            initial.add(node)
            self.knowledge[node] = initial
            for target in initial:
                self._known_by[target] += 1
        for node in self.node_ids:
            if len(self.knowledge[node]) == self.n:
                self._complete_nodes += 1
        self._rebuild_alive_counters()

        # Protocol nodes.
        self.nodes: Dict[int, ProtocolNode] = {}
        for node in self.node_ids:
            protocol = node_factory(node)
            if protocol.node_id != node:
                raise EngineStateError(
                    f"factory returned node id {protocol.node_id} for {node}"
                )
            protocol.bind(adjacency[node], derive_rng(seed, "node", node))
            self.nodes[node] = protocol

        self.round_no = 0
        self._inboxes: Dict[int, List[Message]] = {}
        self._future: Dict[int, List[Message]] = {}
        self._finished = False
        for observer in self.observers:
            observer.on_setup(self)

    # -- goal predicates ----------------------------------------------------------

    def _resolve_goal(self, goal: Union[str, GoalPredicate]) -> GoalPredicate:
        if callable(goal):
            return goal
        if goal == "strong":
            return lambda engine: engine._complete_nodes == engine.n
        if goal == "weak":
            return type(self)._weak_goal
        if goal == "strong_alive":
            return lambda engine: engine._alive_complete == len(engine._alive)
        raise ValueError(f"unknown goal {goal!r}; expected one of {GOALS} or a callable")

    def _weak_goal(self) -> bool:
        if self._complete_nodes == 0:
            return False
        for node in self.node_ids:
            if len(self.knowledge[node]) == self.n and self._known_by[node] == self.n:
                return True
        return False

    def weak_leader(self) -> Optional[int]:
        """The first node satisfying the weak-discovery condition, if any."""
        for node in self.node_ids:
            if len(self.knowledge[node]) == self.n and self._known_by[node] == self.n:
                return node
        return None

    # -- knowledge bookkeeping ------------------------------------------------------

    def _learn(self, node: int, new_ids: Iterable[int]) -> None:
        knowledge = self.knowledge[node]
        before = len(knowledge)
        alive = self._alive
        alive_gain = 0
        for target in new_ids:
            if target in knowledge:
                continue
            if target not in self._id_set:
                # Only reachable with legality enforcement disabled: a
                # protocol smuggled an id that names no simulated machine.
                # Ignoring it keeps ground truth well-defined.
                continue
            knowledge.add(target)
            self._known_by[target] += 1
            if target in alive:
                alive_gain += 1
        if len(knowledge) == self.n and before < self.n:
            self._complete_nodes += 1
        if alive_gain and node in alive:
            count = self._alive_known[node] + alive_gain
            self._alive_known[node] = count
            if count == len(alive):
                self._alive_complete += 1

    def _rebuild_alive_counters(self) -> None:
        alive = self._alive
        self._alive_known = {
            node: len(self.knowledge[node] & alive) for node in alive
        }
        self._alive_complete = sum(
            1 for node in alive if self._alive_known[node] == len(alive)
        )

    # -- execution -------------------------------------------------------------------

    def run(self, max_rounds: Optional[int] = None) -> RunResult:
        """Execute rounds until the goal holds or the cap is reached."""
        if self._finished:
            raise EngineStateError("engine already finished; build a new one")
        cap = max_rounds if max_rounds is not None else default_max_rounds(self.n)
        completed = self._goal_fn(self)
        while not completed and self.round_no < cap:
            self.step()
            completed = self._goal_fn(self)
        self._finished = True
        for observer in self.observers:
            observer.on_finish(self, completed)
        return self._build_result(completed)

    def step(self) -> None:
        """Execute exactly one synchronous round."""
        if self._finished:
            raise EngineStateError("engine already finished; build a new one")
        self.round_no += 1
        newly_crashed = self._faults.apply_crashes(self.round_no)
        if newly_crashed:
            for node in newly_crashed:
                self._alive.discard(node)
                self._inboxes.pop(node, None)
            self._rebuild_alive_counters()

        sends: List[Message] = []
        for node in self.node_ids:
            if self._faults.is_crashed(node):
                continue
            if self._joins.is_dormant(node, self.round_no):
                continue
            protocol = self.nodes[node]
            inbox = self._inboxes.pop(node, _EMPTY_INBOX)
            protocol.run_round(self.round_no, inbox)
            outbox = protocol.drain_outbox()
            if outbox:
                if self.enforce_legality:
                    self._check_legality(node, outbox)
                sends.extend(outbox)

        for message in sends:
            if message.recipient not in self._id_set:
                raise UnknownNodeError(
                    f"node {message.sender} messaged non-existent node {message.recipient}"
                )
            dropped = self._faults.should_drop(message.sender, message.recipient)
            self.metrics.record_send(message, dropped=dropped)
            if dropped:
                continue
            if self.jitter:
                delay = 1 + self._delay_rng.randrange(self.jitter + 1)
            else:
                delay = 1
            self._future.setdefault(self.round_no + delay, []).append(message)

        # Deliver everything scheduled for the start of the next round.
        # Crash and dormancy are re-checked at delivery time: a machine
        # that died (or has not powered on) while a message was in flight
        # never receives it.
        deliver_round = self.round_no + 1
        next_inboxes: Dict[int, List[Message]] = {}
        for message in self._future.pop(deliver_round, ()):
            recipient = message.recipient
            if self._faults.is_crashed(recipient) or self._joins.is_dormant(
                recipient, deliver_round
            ):
                self.metrics.record_in_flight_loss()
                continue
            next_inboxes.setdefault(recipient, []).append(message)
            self._learn(recipient, message.ids)
            self._learn(recipient, (message.sender,))
            self.nodes[recipient].absorb(message)
        self._inboxes = next_inboxes

        self.metrics.close_round(self.round_no)
        for observer in self.observers:
            observer.on_round_end(self, self.round_no)

    def _check_legality(self, node: int, outbox: Sequence[Message]) -> None:
        knowledge = self.knowledge[node]
        for message in outbox:
            if message.recipient not in knowledge:
                raise ProtocolViolation(
                    node,
                    f"sent {message.kind!r} to unknown node {message.recipient}",
                )
            for target in message.ids:
                if target not in knowledge:
                    raise ProtocolViolation(
                        node,
                        f"{message.kind!r} message carries unknown id {target}",
                    )

    # -- results ------------------------------------------------------------------------

    @property
    def alive_nodes(self) -> frozenset[int]:
        return frozenset(self._alive)

    @property
    def crashed_nodes(self) -> frozenset[int]:
        return self._faults.crashed_nodes

    def is_strongly_complete(self) -> bool:
        return self._complete_nodes == self.n

    def _build_result(self, completed: bool) -> RunResult:
        extra: Dict[str, Any] = {}
        for observer in self.observers:
            extra.update(observer.extra())
        return RunResult(
            algorithm=self.algorithm_name,
            n=self.n,
            seed=self.seed,
            completed=completed,
            rounds=self.round_no,
            messages=self.metrics.total_messages,
            pointers=self.metrics.total_pointers,
            dropped_messages=self.metrics.total_dropped,
            messages_by_kind=dict(self.metrics.messages_by_kind),
            pointers_by_kind=dict(self.metrics.pointers_by_kind),
            round_stats=tuple(self.metrics.round_stats),
            params=dict(self.params),
            extra=extra,
        )
