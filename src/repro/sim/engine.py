"""The synchronous round engine.

:class:`SynchronousEngine` executes a discovery protocol over an initial
knowledge graph, enforcing the communication model of DESIGN.md section 1:

* a machine may message only machines it currently knows;
* a message may carry only identifiers its sender currently knows;
* recipients learn the sender and every carried identifier at the end of
  the sending round, and act on the message in the following round.

The engine keeps *ground-truth* knowledge sets independently of the
protocol's own bookkeeping.  Ground truth drives the legality checks, the
goal predicates, and — via observers — the lower-bound experiments, so a
buggy or adversarial protocol cannot misreport its own progress.

Delivery semantics — which round a submitted message lands, and whether
it is filtered in flight — live in the pluggable delivery models of
:mod:`repro.sim.transport`.  The engine's round loop is *protocol step →
transport submit → transport deliver → absorb*; it owns the knowledge
ground truth and the legality guard, while the bound
:class:`~repro.sim.transport.DeliveryModel` owns scheduling (lockstep,
bounded jitter, per-link latency, adversarial delay) and delivery-time
vetoes (partition windows).  The historical ``jitter=`` knob survives as
an alias for ``delivery=BoundedJitter(jitter)``.

Three interchangeable execution backends are provided (selected by the
``backend`` constructor parameter — ``"legacy"``, ``"fast"``, or
``"vector"`` — with the historical ``fast_path`` flag surviving as an
alias for the first two) and proven equivalent by the differential tests
in ``tests/sim/test_fast_path_equivalence.py`` and
``tests/sim/test_vector_backend.py``.  Note the default split: the
engine constructor itself defaults to the legacy reference path, while
the bench harness (`repro.bench.runner`), the CLI, and
:func:`repro.discover` default to the fast path (auto-upgraded to
``vector`` at large n where the bench layer decides to) — so casual
engine construction gets the obviously-correct path and every shipped
entry point gets a fast one.

* the **legacy path** (``fast_path=False``) walks every
  carried pointer in interpreted per-id loops — simple, obviously
  correct, and the reference implementation;
* the **dense fast path** (``fast_path=True``) remaps the opaque machine
  ids onto ``[0, n)`` (:func:`repro.graphs.idspace.dense_index`) and
  represents each machine's ground-truth knowledge as an
  arbitrary-precision integer bitmask.  The bitmasks carry all the
  *counting* work — completion tracking via popcount, the weak-goal test
  via a word-parallel running AND, alive-coverage deltas via masked
  popcounts — replacing the legacy path's per-id counter maintenance.
  Delivery-time learning is bounded by the **candidate mask**
  ``(mask[sender] | sender_bit) & ~mask[recipient]``: for legal traffic
  the carried ids are a subset of the sender's knowledge, so the
  candidate mask upper-bounds what a delivery can teach.  A zero
  candidate mask proves the message teaches nothing in a handful of word
  operations; a small one is enumerated bit-by-bit and probed against the
  message; only a large one falls back to a C-level set difference.
  Complete recipients are skipped outright, and per-message metrics
  collapse into one
  :meth:`~repro.sim.metrics.MetricsCollector.record_batch` per round.

* the **vector backend** (``backend="vector"``) lifts the same dense
  remap into one bit-packed numpy ``uint8`` matrix of shape
  ``(n, ceil(n/8))`` (:mod:`repro.sim.vector_kernel`) so a whole round
  of pointer delivery becomes a handful of batched row-wise ``OR`` /
  ``AND``-``NOT`` operations: one boolean gather skips every delivery to
  an already-complete recipient, a chunked matrix screen proves which of
  the remaining messages can teach anything at all, and only those pay
  the ``np.packbits`` protocol-boundary translation.  It honours the
  exact same observer hooks, :meth:`knowledge_digest`, and delivery-model
  seam as the other two backends (every delivery model works, including
  :class:`~repro.sim.transport.AdversarialScheduler` — its non-uniform
  delays simply use the per-message dispatch loop), and the oracle's
  differential runner holds it per-round digest-identical to the fast
  path.  Requires numpy; constructing a vector engine without it raises
  an :class:`ImportError` naming the fix.

The fast path keeps the ground-truth *sets* behind :attr:`knowledge` in
one of two regimes.  With ``enforce_legality=True`` they are maintained
eagerly (the legality guard needs them for its one-``issuperset``-probe
per message).  With ``enforce_legality=False`` the bitmasks are the only
eagerly-maintained truth and the sets are materialized lazily — first
access after a round extracts just the newly-set bits — so a run that
never reads :attr:`knowledge` (the common benchmark case) never pays for
set maintenance at all.  Note the contract this rests on:
``enforce_legality=False`` is a *promise* that the protocol is legal,
not a license to cheat — an illegal protocol run without enforcement has
undefined ground truth on either path (the legacy path happens to learn
smuggled real ids; the fast path happens not to).  Run anything
untrusted with the default ``enforce_legality=True``, where all
backends raise identical :class:`ProtocolViolation`\\ s.  The vector
backend keeps the sets lazily in *both* regimes: with enforcement on
they are synchronized once at the start of every round (knowledge only
changes at round boundaries, so that is exactly when the legality guard
needs them current), and without enforcement only on external
:attr:`knowledge` reads.

See docs/PERF.md for the measured effect of each of these changes.
"""

from __future__ import annotations

import hashlib
import math
from operator import attrgetter
from time import perf_counter
from typing import (
    Any,
    Callable,
    Collection,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..graphs.idspace import dense_index
from ..graphs.knowledge import digest_knowledge
from .churn import JoinPlan
from .errors import EngineStateError, ProtocolViolation, UnknownNodeError
from .faults import FaultInjector, FaultPlan
from .messages import Message, tally_by_kind
from .metrics import DROP_CRASH, DROP_DORMANT, MetricsCollector, RunResult
from .node import ProtocolNode
from .observers import Observer
from .rng import derive_rng
from .transport import BoundedJitter, DeliveryModel, Lockstep, parse_delivery
from .vector_kernel import VectorState, np, pack_message_ids

NodeFactory = Callable[[int], ProtocolNode]
GoalPredicate = Callable[["SynchronousEngine"], bool]

#: Named goal predicates selectable by string.
GOALS = ("strong", "weak", "strong_alive")

#: Engine execution backends selectable by string.
BACKENDS = ("legacy", "fast", "vector")

#: Phase keys reported by the ``profile=True`` timing hooks.
PROFILE_PHASES = ("protocol", "dispatch", "deliver", "observers")

_EMPTY_INBOX: Tuple[Message, ...] = ()

#: C-level field extractor for the batched recipient-existence screen.
_recipient_of = attrgetter("recipient")

#: Largest n for which the fast path keeps a per-id power-of-two table
#: (``{id: 1 << bit}``).  The table costs Θ(n²/8) bytes (32 MiB at the
#: cutoff); beyond it, masks are assembled through a byte buffer instead.
_POW2_TABLE_MAX_N = 1 << 14


def default_max_rounds(n: int) -> int:
    """A generous default round cap: far above every shipped algorithm's
    needs (which are polylogarithmic), yet low enough that a livelocked
    protocol fails fast in tests."""
    return 200 + 60 * max(1, math.ceil(math.log2(n + 1)))


def _normalize_graph(
    graph: Union[Mapping[int, Collection[int]], Any],
) -> Dict[int, frozenset[int]]:
    """Accept a KnowledgeGraph-like object or a plain adjacency mapping."""
    if hasattr(graph, "node_ids") and hasattr(graph, "out"):
        return {node: frozenset(graph.out(node)) for node in graph.node_ids}
    if isinstance(graph, Mapping):
        return {node: frozenset(neighbors) for node, neighbors in graph.items()}
    raise TypeError(f"unsupported graph type: {type(graph).__name__}")


class SynchronousEngine:
    """Runs one protocol instance per machine in lock-step rounds.

    Args:
        graph: Initial knowledge graph — a :class:`repro.graphs.KnowledgeGraph`
            or a mapping ``{node_id: out_neighbors}``.
        node_factory: Called once per node id to build its protocol node.
        seed: Master seed; all protocol and fault randomness derives from it.
        goal: ``"strong"`` (everyone knows everyone), ``"weak"`` (some node
            knows everyone and everyone knows it), ``"strong_alive"``
            (every non-crashed node knows every non-crashed node), or a
            custom predicate over the engine.
        fault_plan: Optional :class:`repro.sim.faults.FaultPlan`.
        join_plan: Optional :class:`repro.sim.churn.JoinPlan` — machines
            listed in it are dormant (not executing, unreachable) until
            their join round.
        jitter: Bounded-asynchrony knob, kept as a convenience alias for
            ``delivery=BoundedJitter(jitter)``: a message sent in round
            ``r`` is delivered at the start of round ``r + d`` where
            ``d`` is drawn uniformly from ``1 .. 1 + jitter``
            (deterministically in the seed).  ``jitter=0`` is the classic
            synchronous model.  Mutually exclusive with ``delivery=``.
        delivery: Delivery model — a
            :class:`repro.sim.transport.DeliveryModel` instance or a spec
            string (``"lockstep"``, ``"jitter:2"``, ``"adversarial:3"``,
            ``"perlink:2"``, ``"partition:4-8"``; see
            :func:`repro.sim.transport.parse_delivery`).  ``None`` (the
            default) means lockstep, or bounded jitter when ``jitter`` is
            given.
        observers: Read-only observers notified per round.
        enforce_legality: Verify the ids of every message against the
            sender's ground-truth knowledge.  Costs O(total pointers) on
            both paths; benchmarks may disable it, tests keep it on.
        fast_path: Use the dense bitmask execution path (see the module
            docstring).  Defaults to ``False`` here (the reference path);
            the bench harness, CLI, and :func:`repro.discover` pass
            ``True``.  Produces bit-identical :class:`RunResult`\\ s;
            the differential test suite holds the two paths equal.
        backend: Execution backend by name — ``"legacy"``, ``"fast"``,
            or ``"vector"`` (the bit-packed numpy kernel; requires
            numpy).  ``None`` (the default) defers to ``fast_path``.
            An explicit backend always wins over ``fast_path``.
        profile: Accumulate per-phase wall-clock timings (exposed as
            :attr:`phase_timings` and ``RunResult.extra["phase_timings"]``).
        algorithm_name / params: Metadata copied into the result.
    """

    def __init__(
        self,
        graph: Union[Mapping[int, Collection[int]], Any],
        node_factory: NodeFactory,
        *,
        seed: int = 0,
        goal: Union[str, GoalPredicate] = "strong",
        fault_plan: Optional[FaultPlan] = None,
        join_plan: Optional[JoinPlan] = None,
        jitter: int = 0,
        delivery: Optional[Union[str, DeliveryModel]] = None,
        observers: Iterable[Observer] = (),
        enforce_legality: bool = True,
        fast_path: bool = False,
        backend: Optional[str] = None,
        profile: bool = False,
        algorithm_name: str = "custom",
        params: Optional[Mapping[str, Any]] = None,
    ) -> None:
        adjacency = _normalize_graph(graph)
        self.node_ids, self._index = dense_index(adjacency)
        if not self.node_ids:
            raise ValueError("cannot simulate an empty graph")
        self.n = len(self.node_ids)
        self._id_set = frozenset(self.node_ids)
        for node, neighbors in adjacency.items():
            stray = neighbors - self._id_set
            if stray:
                raise UnknownNodeError(
                    f"node {node} initially knows non-existent nodes {sorted(stray)[:5]}"
                )

        self.seed = seed
        self.goal = goal
        self._goal_fn = self._resolve_goal(goal)
        self.enforce_legality = enforce_legality
        if backend is None:
            backend = "fast" if fast_path else "legacy"
        elif backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.backend = backend
        self.fast_path = backend == "fast"
        self.profile = bool(profile)
        self._phase_timings: Dict[str, float] = dict.fromkeys(PROFILE_PHASES, 0.0)
        self.algorithm_name = algorithm_name
        self.params: Dict[str, Any] = dict(params or {})
        self.metrics = MetricsCollector()
        self.observers: Tuple[Observer, ...] = tuple(observers)
        self._faults = FaultInjector(fault_plan, seed)
        self._joins = join_plan or JoinPlan()
        for node in self._joins.join_rounds:
            if node not in self._id_set:
                raise UnknownNodeError(f"join plan lists unknown node {node}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        if delivery is not None and jitter:
            raise ValueError(
                "pass either delivery= or the jitter= alias, not both"
            )
        if delivery is None:
            model = BoundedJitter(jitter) if jitter else Lockstep()
        else:
            model = parse_delivery(delivery)
        self.delivery: DeliveryModel = model.bind(self)
        self.jitter = getattr(model, "jitter", 0)
        self._wants_deliveries = any(
            getattr(observer, "wants_deliveries", False)
            for observer in self.observers
        )
        self._delivery_log: Optional[
            List[Tuple[Message, int, Optional[str]]]
        ] = [] if self._wants_deliveries else None

        # Ground-truth knowledge and its derived counters.  ``_ksets`` is
        # the storage behind the public ``knowledge`` property; on the
        # no-enforcement fast path it is synchronized lazily from the
        # bitmasks (``_ksets_stale`` / ``_kcache_masks``).
        self._ksets: Dict[int, Set[int]] = {}
        self._ksets_stale = False
        self._complete_nodes = 0
        self._alive: Set[int] = set(self.node_ids)
        for node in self.node_ids:
            initial = set(adjacency[node])
            initial.add(node)
            self._ksets[node] = initial
        if self.backend == "fast":
            self._init_fast_state()
        elif self.backend == "vector":
            self._init_vector_state()
        else:
            self._init_legacy_state()
        self._rebuild_alive_counters()

        # Protocol nodes.
        self.nodes: Dict[int, ProtocolNode] = {}
        for node in self.node_ids:
            protocol = node_factory(node)
            if protocol.node_id != node:
                raise EngineStateError(
                    f"factory returned node id {protocol.node_id} for {node}"
                )
            protocol.bind(adjacency[node], derive_rng(seed, "node", node))
            self.nodes[node] = protocol

        self.round_no = 0
        self._inboxes: Dict[int, List[Message]] = {}
        self._finished = False
        for observer in self.observers:
            observer.on_setup(self)

    # -- state initialization -----------------------------------------------------

    def _init_legacy_state(self) -> None:
        self._known_by: Dict[int, int] = {node: 0 for node in self.node_ids}
        for node in self.node_ids:
            for target in self._ksets[node]:
                self._known_by[target] += 1
        for node in self.node_ids:
            if len(self._ksets[node]) == self.n:
                self._complete_nodes += 1

    def _init_fast_state(self) -> None:
        n = self.n
        self._mask_nbytes = (n + 7) >> 3
        self._full_mask = (1 << n) - 1
        if n <= _POW2_TABLE_MAX_N:
            self._pow2: Optional[Dict[int, int]] = {
                node: 1 << bit for node, bit in self._index.items()
            }
        else:
            self._pow2 = None
        self._kmasks = [
            self._mask_from_ids(self._ksets[node]) for node in self.node_ids
        ]
        self._ksizes = [mask.bit_count() for mask in self._kmasks]
        self._complete_mask = 0
        for idx, size in enumerate(self._ksizes):
            if size == n:
                self._complete_nodes += 1
                self._complete_mask |= 1 << idx
        if not self.enforce_legality:
            # Mask-only regime: the sets are a lazily-synchronized cache.
            self._kcache_masks = list(self._kmasks)

    def _init_vector_state(self) -> None:
        state = VectorState(self.n)  # raises a clear error without numpy
        index = self._index
        for node in self.node_ids:
            state.seed_row(
                index[node], [index[target] for target in self._ksets[node]]
            )
        self._complete_nodes = int(state.complete.sum())
        self._vstate = state
        # ``{row_index: row value at the last knowledge-set sync}`` — the
        # vector analogue of ``_kcache_masks``, kept sparse so rows that
        # never change (the steady-state common case) cost nothing.
        self._vdirty: Dict[int, Any] = {}

    @property
    def knowledge(self) -> Dict[int, Set[int]]:
        """Ground-truth knowledge sets, keyed by machine id.

        Always current when read.  On the no-enforcement fast path the
        round loop maintains only the bitmasks; this accessor extracts
        the bits set since the last access before handing the dict out.
        """
        if self._ksets_stale:
            self._sync_knowledge_sets()
        return self._ksets

    def _sync_knowledge_sets(self) -> None:
        """Fold mask growth since the last sync back into the sets.

        Monotonicity makes this cheap: knowledge only ever grows, so each
        node costs one integer comparison plus one ``set.add`` per
        *newly*-set bit — O(total learning) over a whole run no matter
        how often it is called.
        """
        node_ids = self.node_ids
        ksets = self._ksets
        if self.backend == "vector":
            state = self._vstate
            for idx, cached_row in self._vdirty.items():
                known = ksets[node_ids[idx]]
                for bit in state.row_new_bits(idx, cached_row).tolist():
                    known.add(node_ids[bit])
            self._vdirty.clear()
            self._ksets_stale = False
            return
        kmasks = self._kmasks
        cache = self._kcache_masks
        for idx, mask in enumerate(kmasks):
            fresh = mask & ~cache[idx]
            if fresh:
                known = ksets[node_ids[idx]]
                while fresh:
                    low = fresh & -fresh
                    known.add(node_ids[low.bit_length() - 1])
                    fresh ^= low
                cache[idx] = mask
        self._ksets_stale = False

    @property
    def phase_timings(self) -> Dict[str, float]:
        """Accumulated per-phase seconds (all zero unless ``profile=True``)."""
        return dict(self._phase_timings)

    def _mask_from_ids(self, ids: Collection[int]) -> int:
        """Translate a duplicate-free collection of real machine ids into
        a dense bitmask.

        Only ever called on clean inputs (initial adjacencies, freshly
        computed new-knowledge sets, the alive set), so no stray filtering
        is needed.  With the power-of-two table the translation runs
        entirely in C loops (the ids are distinct, so summing their
        distinct powers of two equals a bitwise OR); past the table's
        memory cutoff a byte buffer is filled instead.
        """
        pow2 = self._pow2
        if pow2 is not None:
            return sum(map(pow2.__getitem__, ids))
        index = self._index
        buf = bytearray(self._mask_nbytes)
        for target in ids:
            bit = index[target]
            buf[bit >> 3] |= 1 << (bit & 7)
        return int.from_bytes(buf, "little")

    def _mask_from_message_ids(self, ids: Collection[int]) -> int:
        """Translate protocol-supplied message ids into a dense bitmask.

        Unlike :meth:`_mask_from_ids` this tolerates dirty input —
        duplicate entries (deduplicated through a set) and, with legality
        enforcement off, ids naming no simulated machine (silently
        skipped, mirroring the legacy learning rule for strays)."""
        if not isinstance(ids, (set, frozenset)):
            ids = set(ids)
        pow2 = self._pow2
        if pow2 is not None:
            try:
                return sum(map(pow2.__getitem__, ids))
            except KeyError:
                return sum(pow2[target] for target in ids if target in pow2)
        index = self._index
        buf = bytearray(self._mask_nbytes)
        for target in ids:
            bit = index.get(target)
            if bit is not None:
                buf[bit >> 3] |= 1 << (bit & 7)
        return int.from_bytes(buf, "little")

    # -- goal predicates ----------------------------------------------------------

    def _resolve_goal(self, goal: Union[str, GoalPredicate]) -> GoalPredicate:
        if callable(goal):
            return goal
        if goal == "strong":
            return lambda engine: engine._complete_nodes == engine.n
        if goal == "weak":
            return lambda engine: engine.weak_leader() is not None
        if goal == "strong_alive":
            return lambda engine: engine._alive_complete == len(engine._alive)
        raise ValueError(f"unknown goal {goal!r}; expected one of {GOALS} or a callable")

    def weak_leader(self) -> Optional[int]:
        """The first node satisfying the weak-discovery condition, if any.

        Weak discovery needs a node that knows everyone *and* is known by
        everyone.  Any such node is strongly complete, so the scan is
        skipped outright while the incremental complete-node counter is
        zero — which is every round until the very end of a run.
        """
        if self._complete_nodes == 0:
            return None
        if self.backend == "vector":
            # Same reduction, one numpy call: bit j of the running AND
            # survives iff everyone knows machine j.
            state = self._vstate
            common = state.common_knowledge_row()
            np.bitwise_and(common, state.complete_row, out=common)
            bit = state.first_set_bit(common)
            return None if bit is None else self.node_ids[bit]
        if self.fast_path:
            # Bit j survives the AND of all knowledge masks iff everyone
            # knows machine j; intersecting with the complete-node mask
            # and taking the lowest surviving bit yields the first
            # qualifying node in sorted-id order.
            common = self._complete_mask
            for mask in self._kmasks:
                common &= mask
                if not common:
                    return None
            return self.node_ids[(common & -common).bit_length() - 1]
        n = self.n
        known_by = self._known_by
        for node in self.node_ids:
            if len(self._ksets[node]) == n and known_by[node] == n:
                return node
        return None

    # -- knowledge bookkeeping -----------------------------------------------------

    def _learn(self, node: int, new_ids: Iterable[int]) -> None:
        """Legacy-path learning rule (per-id reference implementation)."""
        knowledge = self._ksets[node]
        before = len(knowledge)
        alive = self._alive
        alive_gain = 0
        for target in new_ids:
            if target in knowledge:
                continue
            if target not in self._id_set:
                # Only reachable with legality enforcement disabled: a
                # protocol smuggled an id that names no simulated machine.
                # Ignoring it keeps ground truth well-defined.
                continue
            knowledge.add(target)
            self._known_by[target] += 1
            if target in alive:
                alive_gain += 1
        if len(knowledge) == self.n and before < self.n:
            self._complete_nodes += 1
        if alive_gain and node in alive:
            count = self._alive_known[node] + alive_gain
            self._alive_known[node] = count
            if count == len(alive):
                self._alive_complete += 1

    def _apply_mask(self, recipient: int, idx: int, add: int) -> None:
        """Fast-path learning core: fold a non-zero mask of genuinely new
        machines into a recipient's bitmask and maintain every derived
        counter with word-parallel operations (OR, popcount deltas)."""
        old = self._kmasks[idx]
        new = old | add
        self._kmasks[idx] = new
        size = new.bit_count()
        old_size = self._ksizes[idx]
        self._ksizes[idx] = size
        if size == self.n and old_size < self.n:
            self._complete_nodes += 1
            self._complete_mask |= 1 << idx
        if recipient in self._alive:
            if self._alive_mask == self._full_mask:
                alive_gain = size - old_size
            else:
                alive_gain = (add & ~old & self._alive_mask).bit_count()
            if alive_gain:
                count = self._alive_known[recipient] + alive_gain
                self._alive_known[recipient] = count
                if count == len(self._alive):
                    self._alive_complete += 1

    def _apply_vector_deltas(self, old_rows: Mapping[int, Any]) -> None:
        """End-of-delivery counter maintenance for the vector backend.

        *old_rows* maps each row index that learned this round to a copy
        of its pre-round value; monotonicity makes ``new & ~old`` exactly
        what the round taught, from which every derived counter
        (completion, alive coverage, the lazy set cache) follows."""
        state = self._vstate
        node_ids = self.node_ids
        alive = self._alive
        alive_row = self._alive_row
        alive_target = len(alive)
        vdirty = self._vdirty
        for row_index, old_row in old_rows.items():
            gained = state.apply_delta(row_index, old_row)
            if gained == 0:
                continue
            if state.complete[row_index]:
                # A row that just gained bits cannot have been complete
                # before, so reaching completeness here is a transition.
                self._complete_nodes += 1
            self._ksets_stale = True
            if row_index not in vdirty:
                vdirty[row_index] = old_row
            node = node_ids[row_index]
            if node in alive:
                if alive_row is None:
                    alive_gain = gained
                else:
                    alive_gain = state.delta_alive_gain(
                        row_index, old_row, alive_row
                    )
                if alive_gain:
                    count = self._alive_known[node] + alive_gain
                    self._alive_known[node] = count
                    if count == alive_target:
                        self._alive_complete += 1

    def _rebuild_alive_counters(self) -> None:
        alive = self._alive
        if self.backend == "vector":
            state = self._vstate
            node_ids = self.node_ids
            if len(alive) == self.n:
                # Everyone alive: coverage of the alive set is plain
                # knowledge size, and the delta path can reuse its
                # popcounts directly (``_alive_row is None`` sentinel).
                self._alive_row = None
                self._alive_known = dict(
                    zip(node_ids, state.sizes.tolist())
                )
            else:
                index = self._index
                dense_alive = sorted(index[node] for node in alive)
                self._alive_row = state.pack_indices(dense_alive)
                counts = state.masked_popcounts(
                    np.asarray(dense_alive, dtype=np.intp), self._alive_row
                ).tolist()
                self._alive_known = {
                    node_ids[idx]: count
                    for idx, count in zip(dense_alive, counts)
                }
            target = len(alive)
            self._alive_complete = sum(
                1 for count in self._alive_known.values() if count == target
            )
            return
        if self.fast_path:
            alive_mask = self._mask_from_ids(alive)
            self._alive_mask = alive_mask
            kmasks = self._kmasks
            index = self._index
            self._alive_known = {
                node: (kmasks[index[node]] & alive_mask).bit_count() for node in alive
            }
        else:
            self._alive_known = {
                node: len(self._ksets[node] & alive) for node in alive
            }
        target = len(alive)
        self._alive_complete = sum(
            1 for count in self._alive_known.values() if count == target
        )

    def inject_knowledge(self, node: int, ids: Iterable[int]) -> bool:
        """Teach *node* the machine ids *ids* out of band, effective now.

        The sanctioned host-side injection seam (the protocol-node
        counterpart is :meth:`repro.sim.node.ProtocolNode.learn`): the
        dynamic-graph workload mode uses it to make new contact edges
        appear mid-run.  Ground truth is updated first and the protocol
        node second, so legality enforcement sees a consistent state and
        the node may immediately message its new contacts.  All three
        backends apply the same bits through their native learning seams
        (``_learn`` / ``_apply_mask`` / ``apply_delta``), keeping
        cross-backend knowledge digests identical.

        Call before :meth:`step` of the round the contact should exist
        in.  Ids naming no simulated machine are ignored (the legacy
        learning rule for strays).  Returns ``False`` without effect when
        *node* has crashed — fail-stop machines learn nothing; raises
        :class:`UnknownNodeError` for a *node* that never existed.
        """
        if self._finished:
            raise EngineStateError("engine already finished; build a new one")
        if node not in self._id_set:
            raise UnknownNodeError(f"unknown machine id {node}")
        if self._faults.is_crashed(node):
            return False
        new_ids = {
            target for target in ids if target in self._id_set and target != node
        }
        if new_ids:
            if self.backend == "vector":
                state = self._vstate
                index = self._index
                row_index = index[node]
                old_row = state.K[row_index].copy()
                state.or_into(
                    row_index,
                    state.pack_indices([index[target] for target in new_ids]),
                )
                self._apply_vector_deltas({row_index: old_row})
            elif self.fast_path:
                idx = self._index[node]
                add = self._mask_from_ids(new_ids) & ~self._kmasks[idx]
                if add:
                    if self.enforce_legality:
                        # Sets are maintained eagerly in legality mode.
                        self._ksets[node].update(new_ids)
                    else:
                        self._ksets_stale = True
                    self._apply_mask(node, idx, add)
            else:
                self._learn(node, new_ids)
        self.nodes[node].learn(new_ids)
        return True

    # -- execution -----------------------------------------------------------------

    def run(self, max_rounds: Optional[int] = None) -> RunResult:
        """Execute rounds until the goal holds or the cap is reached."""
        if self._finished:
            raise EngineStateError("engine already finished; build a new one")
        cap = max_rounds if max_rounds is not None else default_max_rounds(self.n)
        completed = self._goal_fn(self)
        while not completed and self.round_no < cap:
            self.step()
            completed = self._goal_fn(self)
        self._finished = True
        for observer in self.observers:
            observer.on_finish(self, completed)
        return self._build_result(completed)

    def step(self) -> None:
        """Execute exactly one synchronous round."""
        if self._finished:
            raise EngineStateError("engine already finished; build a new one")
        self.round_no += 1
        if self._delivery_log is not None:
            self._delivery_log = []
        newly_crashed = self._faults.apply_crashes(self.round_no)
        if newly_crashed:
            for node in newly_crashed:
                self._alive.discard(node)
                self._inboxes.pop(node, None)
            self._rebuild_alive_counters()

        if self.backend == "vector":
            self._step_vector()
        elif self.fast_path:
            self._step_fast()
        else:
            self._step_legacy()

        self.metrics.close_round(self.round_no)
        if self.observers:
            started = perf_counter() if self.profile else 0.0
            for observer in self.observers:
                observer.on_round_end(self, self.round_no)
            if self.profile:
                self._phase_timings["observers"] += perf_counter() - started

    def _step_legacy(self) -> None:
        """Reference round body: per-id loops, per-message metrics."""
        profile = self.profile
        tick = perf_counter() if profile else 0.0

        sends: List[Message] = []
        for node in self.node_ids:
            if self._faults.is_crashed(node):
                continue
            if self._joins.is_dormant(node, self.round_no):
                continue
            protocol = self.nodes[node]
            inbox = self._inboxes.pop(node, _EMPTY_INBOX)
            outbox = protocol.run_round(self.round_no, inbox)
            if outbox:
                if self.enforce_legality:
                    self._check_legality(node, outbox)
                sends.extend(outbox)

        if profile:
            now = perf_counter()
            self._phase_timings["protocol"] += now - tick
            tick = now

        delivery = self.delivery
        log = self._delivery_log
        for message in sends:
            if message.recipient not in self._id_set:
                raise UnknownNodeError(
                    f"node {message.sender} messaged non-existent node {message.recipient}"
                )
            reason = self._faults.send_drop_reason(message.sender, message.recipient)
            if reason is not None:
                self.metrics.record_send(message, dropped=True, reason=reason)
                if log is not None:
                    log.append((message, 0, reason))
                continue
            self.metrics.record_send(message)
            delivery.submit(message, self.round_no)

        if profile:
            now = perf_counter()
            self._phase_timings["dispatch"] += now - tick
            tick = now

        # Deliver everything scheduled for the start of the next round.
        # The delivery model re-checks crash and dormancy at delivery time
        # (a machine that died, or has not powered on, while a message was
        # in flight never receives it) and applies any model-specific
        # filtering; only surviving messages reach this loop.
        deliver_round = self.round_no + 1
        next_inboxes: Dict[int, List[Message]] = {}
        for message, _delay in delivery.deliver(deliver_round):
            recipient = message.recipient
            next_inboxes.setdefault(recipient, []).append(message)
            self._learn(recipient, message.ids)
            self._learn(recipient, (message.sender,))
            self.nodes[recipient].absorb(message)
        self._inboxes = next_inboxes

        if profile:
            self._phase_timings["deliver"] += perf_counter() - tick

    def _collect_sends_dense(
        self, crashed: Optional[Mapping[int, int]], joins: Optional[JoinPlan]
    ) -> List[Message]:
        """Protocol phase shared by the fast and vector backends: run
        every live, non-dormant node against its inbox and drain the
        outboxes, legality-checking each with the one-probe-per-message
        guard when enforcement is on."""
        round_no = self.round_no
        enforce = self.enforce_legality
        inboxes = self._inboxes
        sends: List[Message] = []
        for node, protocol in self.nodes.items():
            if crashed and node in crashed:
                continue
            if joins is not None and joins.is_dormant(node, round_no):
                continue
            inbox = inboxes.pop(node, _EMPTY_INBOX)
            outbox = protocol.run_round(round_no, inbox)
            if outbox:
                if enforce:
                    self._check_legality_fast(node, outbox)
                sends.extend(outbox)
        return sends

    def _dispatch_sends_dense(self, sends: List[Message]) -> None:
        """Dispatch phase shared by the fast and vector backends:
        batched per-kind accounting, the wholesale fault-free
        uniform-delay bucket hand-off, and the per-message fault/submit
        loop otherwise."""
        round_no = self.round_no
        enforce = self.enforce_legality
        delivery = self.delivery
        log = self._delivery_log
        if sends:
            messages_by_kind, pointers_by_kind = tally_by_kind(sends)
            dropped_fault = 0
            dropped_crash = 0
            faults = self._faults if self._faults.plan.has_faults else None
            id_set = self._id_set
            if faults is None and delivery.uniform_delay is not None:
                # Fault-free uniform delay (lockstep being the
                # overwhelmingly common case): the whole round's outbox
                # becomes one delivery bucket wholesale.  Legality
                # enforcement already proved every recipient real;
                # without it, one C-level superset probe screens the
                # batch and the per-message loop re-runs only to raise
                # the exact legacy error.
                if not enforce and not id_set.issuperset(
                    map(_recipient_of, sends)
                ):
                    for message in sends:
                        if message.recipient not in id_set:
                            raise UnknownNodeError(
                                f"node {message.sender} messaged "
                                f"non-existent node {message.recipient}"
                            )
                delivery.submit_bulk(sends, round_no)
            else:
                for message in sends:
                    recipient = message.recipient
                    # With legality enforcement on, the recipient is
                    # already known to be a real machine (it appears in
                    # the sender's ground truth, which only ever holds
                    # real ids).
                    if not enforce and recipient not in id_set:
                        raise UnknownNodeError(
                            f"node {message.sender} messaged non-existent node {recipient}"
                        )
                    if faults is not None:
                        reason = faults.send_drop_reason(message.sender, recipient)
                        if reason is not None:
                            if reason is DROP_CRASH:
                                dropped_crash += 1
                            else:
                                dropped_fault += 1
                            if log is not None:
                                log.append((message, 0, reason))
                            continue
                    delivery.submit(message, round_no)
            self.metrics.record_batch(
                messages_by_kind,
                pointers_by_kind,
                dropped_fault,
                dropped_by_reason=(
                    {DROP_CRASH: dropped_crash} if dropped_crash else None
                ),
            )

    def _step_fast(self) -> None:
        """Dense round body: bulk set operations, mask-mirrored counters,
        completion short-circuits, and batched accounting."""
        profile = self.profile
        tick = perf_counter() if profile else 0.0
        round_no = self.round_no
        enforce = self.enforce_legality

        crashed = self._faults.crashed_map
        joins = self._joins if self._joins.join_rounds else None
        nodes = self.nodes
        sends = self._collect_sends_dense(crashed, joins)

        if profile:
            now = perf_counter()
            self._phase_timings["protocol"] += now - tick
            tick = now

        next_round = round_no + 1
        delivery = self.delivery
        log = self._delivery_log
        self._dispatch_sends_dense(sends)

        if profile:
            now = perf_counter()
            self._phase_timings["dispatch"] += now - tick
            tick = now

        next_inboxes: Dict[int, List[Message]] = {}
        pending, delays = delivery.pending(next_round)
        if pending:
            index = self._index
            kmasks = self._kmasks
            node_ids = self.node_ids
            pow2 = self._pow2
            full = self._full_mask
            ksets = self._ksets if enforce else None
            metrics = self.metrics
            learned = False
            track = log is not None
            if track or delivery.filters_delivery:
                # Rare regime (tracing observer or filtering model):
                # resolve drops, delays, and logging in a pre-pass so the
                # learning loop below stays as lean as the plain case.
                filters = delivery.filters_delivery
                delay = delivery.uniform_delay or 1
                delay_iter = iter(delays) if delays is not None else None
                kept: List[Message] = []
                keep = kept.append
                for message in pending:
                    if delay_iter is not None:
                        delay = next(delay_iter)
                    recipient = message.recipient
                    if crashed and recipient in crashed:
                        metrics.record_in_flight_loss(DROP_CRASH)
                        if track:
                            log.append((message, delay, DROP_CRASH))
                        continue
                    if joins is not None and joins.is_dormant(
                        recipient, next_round
                    ):
                        metrics.record_in_flight_loss(DROP_DORMANT)
                        if track:
                            log.append((message, delay, DROP_DORMANT))
                        continue
                    if filters:
                        reason = delivery.drop_reason(
                            message.sender, recipient, next_round
                        )
                        if reason is not None:
                            metrics.record_in_flight_loss(reason)
                            if track:
                                log.append((message, delay, reason))
                            continue
                    if track:
                        log.append((message, delay, None))
                    keep(message)
                pending = kept
                crashed = None
                joins = None
            for message in pending:
                recipient = message.recipient
                if crashed and recipient in crashed:
                    metrics.record_in_flight_loss(DROP_CRASH)
                    continue
                if joins is not None and joins.is_dormant(recipient, next_round):
                    metrics.record_in_flight_loss(DROP_DORMANT)
                    continue
                bucket = next_inboxes.get(recipient)
                if bucket is None:
                    next_inboxes[recipient] = [message]
                else:
                    bucket.append(message)
                # Learn, bounded by the candidate mask: everything this
                # delivery could teach is something the sender knows (it
                # is the sender, or legally carried) that the recipient
                # does not.  Knowledge is monotone, so the sender's
                # *current* mask still upper-bounds ids it sent earlier
                # (jitter) or before crashing.
                ri = index[recipient]
                kmr = kmasks[ri]
                if kmr != full:
                    sender = message.sender
                    si = index[sender]
                    sbit = pow2[sender] if pow2 is not None else 1 << si
                    cand = (kmasks[si] | sbit) & ~kmr
                    if cand:
                        ids = message.ids
                        setlike = isinstance(ids, (set, frozenset))
                        add = cand & sbit  # the sender itself is always learned
                        if setlike and cand.bit_count() * 4 <= len(ids):
                            # Few candidates, big message: enumerate the
                            # candidate bits and probe them against the
                            # message instead of scanning every pointer.
                            m = cand ^ add
                            if ksets is None:
                                while m:
                                    low = m & -m
                                    if node_ids[low.bit_length() - 1] in ids:
                                        add |= low
                                    m ^= low
                                if add:
                                    self._apply_mask(recipient, ri, add)
                                    learned = True
                            else:
                                fresh = [sender] if add else []
                                while m:
                                    low = m & -m
                                    nid = node_ids[low.bit_length() - 1]
                                    if nid in ids:
                                        add |= low
                                        fresh.append(nid)
                                    m ^= low
                                if add:
                                    ksets[recipient].update(fresh)
                                    self._apply_mask(recipient, ri, add)
                        elif ksets is None:
                            # Mask-only regime: translate the message once
                            # and intersect with the candidates.
                            add |= self._mask_from_message_ids(ids) & cand
                            if add:
                                self._apply_mask(recipient, ri, add)
                                learned = True
                        else:
                            # Sets are maintained eagerly (legality mode):
                            # one C-level difference yields the new ids.
                            known = ksets[recipient]
                            if setlike:
                                new_ids = ids - known
                            else:
                                new_ids = set(ids)
                                new_ids.difference_update(known)
                            if add:
                                # The difference of two frozensets is frozen.
                                if isinstance(new_ids, frozenset):
                                    new_ids = set(new_ids)
                                new_ids.add(sender)
                            if new_ids:
                                known |= new_ids
                                self._apply_mask(
                                    recipient, ri, self._mask_from_ids(new_ids)
                                )
                nodes[recipient].absorb(message)
            if learned:
                self._ksets_stale = True
        self._inboxes = next_inboxes

        if profile:
            self._phase_timings["deliver"] += perf_counter() - tick

    def _step_vector(self) -> None:
        """Bit-packed round body: one boolean gather and one chunked
        matrix screen decide which deliveries can teach; only those pay
        the packbits protocol-boundary translation and a row ``OR``.

        Per-message learning follows the exact fast-path candidate rule
        ``(ids | sender) & (K[sender] | sender) & ~K[recipient]``
        against the *current* rows, applied in delivery order, so the
        two backends stay digest-identical round by round.  The screen
        itself is evaluated against the rows as of the start of the
        delivery batch, which is sound because knowledge is monotone and
        legal traffic only carries ids its sender knew at send time (for
        illegal traffic with enforcement off, ground truth is undefined
        on every backend — see the module docstring)."""
        profile = self.profile
        tick = perf_counter() if profile else 0.0
        round_no = self.round_no

        if self.enforce_legality and self._ksets_stale:
            # The legality guard probes the knowledge *sets*; knowledge
            # last changed at the previous round boundary, so one sync
            # here makes them current for the whole protocol phase.
            self._sync_knowledge_sets()
        crashed = self._faults.crashed_map
        joins = self._joins if self._joins.join_rounds else None
        nodes = self.nodes
        sends = self._collect_sends_dense(crashed, joins)

        if profile:
            now = perf_counter()
            self._phase_timings["protocol"] += now - tick
            tick = now

        next_round = round_no + 1
        delivery = self.delivery
        log = self._delivery_log
        self._dispatch_sends_dense(sends)

        if profile:
            now = perf_counter()
            self._phase_timings["dispatch"] += now - tick
            tick = now

        next_inboxes: Dict[int, List[Message]] = {}
        pending, delays = delivery.pending(next_round)
        if pending:
            state = self._vstate
            index = self._index
            metrics = self.metrics
            track = log is not None
            if track or delivery.filters_delivery or crashed or joins is not None:
                # Screening pre-pass: resolve crash/dormancy losses,
                # delivery-time filtering, and observer logging up front
                # so the batched phase below sees only messages that
                # will actually land.
                filters = delivery.filters_delivery
                delay = delivery.uniform_delay or 1
                delay_iter = iter(delays) if delays is not None else None
                kept: List[Message] = []
                keep = kept.append
                for message in pending:
                    if delay_iter is not None:
                        delay = next(delay_iter)
                    recipient = message.recipient
                    if crashed and recipient in crashed:
                        metrics.record_in_flight_loss(DROP_CRASH)
                        if track:
                            log.append((message, delay, DROP_CRASH))
                        continue
                    if joins is not None and joins.is_dormant(
                        recipient, next_round
                    ):
                        metrics.record_in_flight_loss(DROP_DORMANT)
                        if track:
                            log.append((message, delay, DROP_DORMANT))
                        continue
                    if filters:
                        reason = delivery.drop_reason(
                            message.sender, recipient, next_round
                        )
                        if reason is not None:
                            metrics.record_in_flight_loss(reason)
                            if track:
                                log.append((message, delay, reason))
                            continue
                    if track:
                        log.append((message, delay, None))
                    keep(message)
                pending = kept
            if pending:
                count = len(pending)
                senders = np.fromiter(
                    (index[message.sender] for message in pending),
                    dtype=np.intp,
                    count=count,
                )
                recipients = np.fromiter(
                    (index[message.recipient] for message in pending),
                    dtype=np.intp,
                    count=count,
                )
                teaches = state.screen(senders, recipients).tolist()
                sender_list = senders.tolist()
                recipient_list = recipients.tolist()
                # ``{id(ids): packed row}`` for this batch: protocols
                # routinely send one snapshot object to many peers.
                pack_cache: Dict[int, Any] = {}
                # ``{row_index: pre-round row copy}`` for the delta pass.
                old_rows: Dict[int, Any] = {}
                for pos, message in enumerate(pending):
                    recipient = message.recipient
                    bucket = next_inboxes.get(recipient)
                    if bucket is None:
                        next_inboxes[recipient] = [message]
                    else:
                        bucket.append(message)
                    if teaches[pos]:
                        si = sender_list[pos]
                        ri = recipient_list[pos]
                        packed = pack_message_ids(
                            message.ids, si, index, state, pack_cache
                        )
                        add = state.message_add(si, ri, packed)
                        if add is not None:
                            if ri not in old_rows:
                                old_rows[ri] = state.K[ri].copy()
                            state.or_into(ri, add)
                    nodes[recipient].absorb(message)
                if old_rows:
                    self._apply_vector_deltas(old_rows)
        self._inboxes = next_inboxes

        if profile:
            self._phase_timings["deliver"] += perf_counter() - tick

    def _check_legality(self, node: int, outbox: Sequence[Message]) -> None:
        """Reference legality scan; raises on the first violation."""
        knowledge = self._ksets[node]
        for message in outbox:
            if message.recipient not in knowledge:
                raise ProtocolViolation(
                    node,
                    f"sent {message.kind!r} to unknown node {message.recipient}",
                )
            for target in message.ids:
                if target not in knowledge:
                    raise ProtocolViolation(
                        node,
                        f"{message.kind!r} message carries unknown id {target}",
                    )

    def _check_legality_fast(self, node: int, outbox: Sequence[Message]) -> None:
        """Whole-outbox legality guard for the fast path.

        Each message is validated with one C-level superset probe against
        the sender's ground truth instead of an interpreted per-id loop.
        On any suspected violation the reference scan re-runs to raise
        the exact legacy :class:`ProtocolViolation`.
        """
        known = self._ksets[node]
        for message in outbox:
            if message.recipient not in known or not known.issuperset(message.ids):
                self._check_legality(node, outbox)
                raise EngineStateError(  # pragma: no cover - defensive
                    f"legality fast path flagged node {node} but the "
                    "reference scan found no violation"
                )

    # -- results -------------------------------------------------------------------

    @property
    def alive_nodes(self) -> frozenset[int]:
        return frozenset(self._alive)

    @property
    def crashed_nodes(self) -> frozenset[int]:
        return self._faults.crashed_nodes

    def is_strongly_complete(self) -> bool:
        return self._complete_nodes == self.n

    def goal_reached(self) -> bool:
        """Whether the run's goal predicate holds right now.

        A read-only probe of the same predicate :meth:`run` consults after
        every step; external drivers (the differential runner, manual
        ``step()`` loops) use it to stop without calling :meth:`run`.
        """
        return bool(self._goal_fn(self))

    def knowledge_digest(self) -> str:
        """Canonical SHA-256 digest of the ground-truth knowledge state.

        Both execution paths digest the same byte string: each machine's
        knowledge rendered as a little-endian dense bitmask (bit ``i`` =
        ``node_ids[i]``), concatenated in sorted-id order — so a fast-path
        engine and a legacy engine in the same state produce the same
        digest, which is what the differential runner diffs round by
        round.  Ids naming no simulated machine (reachable only on the
        legacy path with legality enforcement off) are excluded, keeping
        the digest well-defined across paths.
        """
        digest = hashlib.sha256()
        nbytes = (self.n + 7) >> 3
        if self.backend == "vector":
            # The matrix *is* the canonical byte string: C-contiguous
            # little-endian packed rows in dense (sorted-id) order, so
            # one buffer-protocol update hashes the whole state without
            # materializing any intermediate bytes.
            digest.update(self._vstate.digest_view())
        elif self.fast_path:
            for mask in self._kmasks:
                digest.update(mask.to_bytes(nbytes, "little"))
        else:
            # The legacy path holds plain id sets — exactly the shape the
            # shared cross-host digest helper canonicalizes (the live
            # runtime digests its final state through the same function).
            return digest_knowledge({node: self._ksets[node] for node in self.node_ids})
        return digest.hexdigest()

    def _build_result(self, completed: bool) -> RunResult:
        extra: Dict[str, Any] = {}
        for observer in self.observers:
            extra.update(observer.extra())
        if self.profile:
            extra["phase_timings"] = dict(self._phase_timings)
        return RunResult(
            algorithm=self.algorithm_name,
            n=self.n,
            seed=self.seed,
            completed=completed,
            rounds=self.round_no,
            messages=self.metrics.total_messages,
            pointers=self.metrics.total_pointers,
            dropped_messages=self.metrics.total_dropped,
            messages_by_kind=dict(self.metrics.messages_by_kind),
            pointers_by_kind=dict(self.metrics.pointers_by_kind),
            dropped_by_reason=dict(self.metrics.dropped_by_reason),
            delivery_delays=dict(self.metrics.delivery_delays),
            round_stats=tuple(self.metrics.round_stats),
            params=dict(self.params),
            extra=extra,
        )
