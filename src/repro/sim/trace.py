"""Structured event tracing for discovery runs.

:class:`TraceObserver` records one event per scheduled message delivery —
round, kind, sender, recipient, pointer count, in-flight delay — with
optional filtering, bounded memory, and JSONL export.  It consumes the
engine's per-round delivery log (which the engine materializes only when
an observer sets ``wants_deliveries``), so it sees exactly what the
delivery model decided: delivered messages land in :attr:`events`, and
messages lost in flight (crash, dormancy, partition) or dropped at send
time land in :attr:`drops` with their reason tag.

Intended uses: debugging a protocol change round by round, teaching (the
trace of a 8-node run fits on a screen), and offline analysis of traffic
shape (per-kind histograms over time, delay distributions under the
non-lockstep delivery models of :mod:`repro.sim.transport`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    List,
    Optional,
    Sequence,
)

from .observers import Observer

if TYPE_CHECKING:  # pragma: no cover
    from .engine import SynchronousEngine


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One message delivery attempt.

    ``delay`` is the in-flight delay the delivery model assigned (rounds
    from send to delivery attempt; 0 for messages dropped at send time).
    ``dropped`` is ``None`` for delivered messages, else the loss-reason
    tag (``fault`` / ``crash`` / ``dormant`` / ``partition`` — the
    ``DROP_*`` constants of :mod:`repro.sim.metrics`).
    """

    round_no: int
    kind: str
    sender: int
    recipient: int
    pointers: int
    delay: int = 1
    dropped: Optional[str] = None

    def format(self) -> str:
        suffix = f" [dropped: {self.dropped}]" if self.dropped else ""
        delay_note = f" d={self.delay}" if self.delay != 1 else ""
        return (
            f"r{self.round_no:>4} {self.kind:<8} "
            f"{self.sender} -> {self.recipient} ({self.pointers} ptrs)"
            f"{delay_note}{suffix}"
        )


EventFilter = Callable[[TraceEvent], bool]


class TraceObserver(Observer):
    """Records message deliveries as :class:`TraceEvent` rows.

    Args:
        kinds: Record only these message kinds (``None`` = all).
        nodes: Record only messages touching these node ids (``None`` = all).
        limit: Hard cap on stored events; recording stops when reached,
            so tracing a large run by accident cannot exhaust memory.
            :attr:`events` (deliveries) and :attr:`drops` (losses) each
            get their own ``limit`` and their own truncation flag
            (:attr:`truncated_events` / :attr:`truncated_drops`;
            :attr:`truncated` is their OR), so a drop overflow is visible
            even while deliveries are still under the cap.
    """

    wants_deliveries = True

    def __init__(
        self,
        kinds: Optional[Iterable[str]] = None,
        nodes: Optional[Iterable[int]] = None,
        limit: int = 100_000,
    ) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.nodes = frozenset(nodes) if nodes is not None else None
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.drops: List[TraceEvent] = []
        self.truncated_events = False
        self.truncated_drops = False

    @property
    def truncated(self) -> bool:
        """True when either sink overflowed its limit."""
        return self.truncated_events or self.truncated_drops

    def _wanted(self, kind: str, sender: int, recipient: int) -> bool:
        if self.kinds is not None and kind not in self.kinds:
            return False
        if self.nodes is not None and not (
            sender in self.nodes or recipient in self.nodes
        ):
            return False
        return True

    def on_round_end(self, engine: "SynchronousEngine", round_no: int) -> None:
        log = engine._delivery_log
        if log is None:
            return
        for message, delay, reason in log:
            # Filter first: an event the filters reject never counts
            # against the limit and never flags truncation.
            if not self._wanted(message.kind, message.sender, message.recipient):
                continue
            sink = self.events if reason is None else self.drops
            if len(sink) >= self.limit:
                if reason is None:
                    self.truncated_events = True
                else:
                    self.truncated_drops = True
                continue
            sink.append(
                TraceEvent(
                    round_no=round_no,
                    kind=message.kind,
                    sender=message.sender,
                    recipient=message.recipient,
                    pointers=message.pointer_count,
                    delay=delay,
                    dropped=reason,
                )
            )

    # -- queries ----------------------------------------------------------------

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def drops_by_reason(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.drops:
            counts[event.dropped] = counts.get(event.dropped, 0) + 1
        return counts

    def rounds_covered(self) -> Sequence[int]:
        return sorted({event.round_no for event in self.events})

    def format(self, max_lines: int = 200) -> str:
        lines = [event.format() for event in self.events[:max_lines]]
        if len(self.events) > max_lines:
            lines.append(f"... {len(self.events) - max_lines} more events")
        if self.truncated:
            lines.append("(trace truncated at limit)")
        return "\n".join(lines)

    def write_jsonl(self, stream: IO[str]) -> int:
        """Write one JSON object per event; returns the event count."""
        for event in self.events:
            stream.write(json.dumps(asdict(event), sort_keys=True))
            stream.write("\n")
        return len(self.events)

    def extra(self) -> Dict[str, Any]:
        return {
            "trace_events": len(self.events),
            "trace_by_kind": self.by_kind(),
            "trace_drops": len(self.drops),
            "trace_drops_by_reason": self.drops_by_reason(),
            "trace_truncated": self.truncated,
            "trace_events_truncated": self.truncated_events,
            "trace_drops_truncated": self.truncated_drops,
        }


def read_jsonl(stream: IO[str]) -> List[TraceEvent]:
    """Parse events previously written by :meth:`TraceObserver.write_jsonl`."""
    events = []
    for line in stream:
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        events.append(TraceEvent(**raw))
    return events
