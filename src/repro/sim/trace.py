"""Structured event tracing for discovery runs.

:class:`TraceObserver` records one event per delivered message — round,
kind, sender, recipient, pointer count — with optional filtering, bounded
memory, and JSONL export.  It reads the engine's per-round inbox map, so
it sees exactly what was *delivered* (dropped messages never appear).

Intended uses: debugging a protocol change round by round, teaching (the
trace of a 8-node run fits on a screen), and offline analysis of traffic
shape (per-kind histograms over time).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    List,
    Optional,
    Sequence,
)

from .observers import Observer

if TYPE_CHECKING:  # pragma: no cover
    from .engine import SynchronousEngine


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One delivered message."""

    round_no: int
    kind: str
    sender: int
    recipient: int
    pointers: int

    def format(self) -> str:
        return (
            f"r{self.round_no:>4} {self.kind:<8} "
            f"{self.sender} -> {self.recipient} ({self.pointers} ptrs)"
        )


EventFilter = Callable[[TraceEvent], bool]


class TraceObserver(Observer):
    """Records delivered messages as :class:`TraceEvent` rows.

    Args:
        kinds: Record only these message kinds (``None`` = all).
        nodes: Record only messages touching these node ids (``None`` = all).
        limit: Hard cap on stored events; recording stops (and
            ``truncated`` is set) when reached, so tracing a large run by
            accident cannot exhaust memory.
    """

    def __init__(
        self,
        kinds: Optional[Iterable[str]] = None,
        nodes: Optional[Iterable[int]] = None,
        limit: int = 100_000,
    ) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.nodes = frozenset(nodes) if nodes is not None else None
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.truncated = False

    def _wanted(self, event: TraceEvent) -> bool:
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        if self.nodes is not None and not (
            event.sender in self.nodes or event.recipient in self.nodes
        ):
            return False
        return True

    def on_round_end(self, engine: "SynchronousEngine", round_no: int) -> None:
        if self.truncated:
            return
        for recipient, inbox in sorted(engine._inboxes.items()):
            for message in inbox:
                event = TraceEvent(
                    round_no=round_no,
                    kind=message.kind,
                    sender=message.sender,
                    recipient=recipient,
                    pointers=message.pointer_count,
                )
                if not self._wanted(event):
                    continue
                if len(self.events) >= self.limit:
                    self.truncated = True
                    return
                self.events.append(event)

    # -- queries ----------------------------------------------------------------

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def rounds_covered(self) -> Sequence[int]:
        return sorted({event.round_no for event in self.events})

    def format(self, max_lines: int = 200) -> str:
        lines = [event.format() for event in self.events[:max_lines]]
        if len(self.events) > max_lines:
            lines.append(f"... {len(self.events) - max_lines} more events")
        if self.truncated:
            lines.append("(trace truncated at limit)")
        return "\n".join(lines)

    def write_jsonl(self, stream: IO[str]) -> int:
        """Write one JSON object per event; returns the event count."""
        for event in self.events:
            stream.write(json.dumps(asdict(event), sort_keys=True))
            stream.write("\n")
        return len(self.events)

    def extra(self) -> Dict[str, Any]:
        return {
            "trace_events": len(self.events),
            "trace_by_kind": self.by_kind(),
            "trace_truncated": self.truncated,
        }


def read_jsonl(stream: IO[str]) -> List[TraceEvent]:
    """Parse events previously written by :meth:`TraceObserver.write_jsonl`."""
    events = []
    for line in stream:
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        events.append(TraceEvent(**raw))
    return events
