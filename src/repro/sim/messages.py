"""Message representation for the synchronous discovery model.

A message carries a *kind* tag, a collection of machine identifiers
(``ids`` — the "pointers" of the resource-discovery literature), and an
optional constant-size payload (``data``).  The accounting rules follow the
model in DESIGN.md section 1:

* ``pointer_count`` is ``len(ids)``; the harness sums this into the run's
  pointer complexity.
* ``data`` must be O(1) machine words of bookkeeping (sizes, coin flips,
  step tags).  It must **never** smuggle machine identifiers: the engine's
  learning rule only teaches the recipient the ``ids`` and the sender, so an
  identifier hidden in ``data`` would be unlearnable anyway — and the
  legality check would reject a later send to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Collection, Dict, Iterable, Tuple


@dataclass(frozen=True, slots=True)
class Message:
    """A single message in flight between two machines.

    Attributes:
        kind: Protocol-defined tag, e.g. ``"invite"`` or ``"report"``.
        sender: Identifier of the sending machine.
        recipient: Identifier of the receiving machine.
        ids: Machine identifiers carried by this message.  The recipient
            learns every one of them upon delivery.
        data: O(1)-word bookkeeping payload (may be ``None``).
    """

    kind: str
    sender: int
    recipient: int
    ids: Collection[int] = field(default=())
    data: Any = None

    @property
    def pointer_count(self) -> int:
        """Number of machine identifiers this message carries."""
        return len(self.ids)

    def __repr__(self) -> str:  # compact repr keeps traces readable
        return (
            f"Message({self.kind!r}, {self.sender}->{self.recipient}, "
            f"|ids|={len(self.ids)}, data={self.data!r})"
        )


# Number of header words charged per message when converting to bits:
# kind tag, sender, recipient, and the O(1) data payload.
MESSAGE_HEADER_WORDS = 4


def tally_by_kind(
    messages: Iterable[Message],
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """One-pass per-kind message and pointer tallies for batch accounting.

    Mirrors the accounting of per-message ``record_send`` calls exactly:
    every message creates an entry in *both* tallies (a message carrying
    zero pointers still appears in the pointer tally with count 0), so
    feeding the result to :meth:`MetricsCollector.record_batch` yields
    counters identical to the per-message path.
    """
    messages_by_kind: Dict[str, int] = {}
    pointers_by_kind: Dict[str, int] = {}
    mget = messages_by_kind.get
    pget = pointers_by_kind.get
    for message in messages:
        kind = message.kind
        messages_by_kind[kind] = mget(kind, 0) + 1
        pointers_by_kind[kind] = pget(kind, 0) + len(message.ids)
    return messages_by_kind, pointers_by_kind


def message_bits(message: Message, id_bits: int) -> int:
    """Size of *message* in bits under an ``id_bits``-bit identifier space.

    Pointer words dominate asymptotically; headers are charged at
    :data:`MESSAGE_HEADER_WORDS` words of the same width, which matches the
    convention used for bit complexity in the resource-discovery literature.
    """
    return (message.pointer_count + MESSAGE_HEADER_WORDS) * id_bits
