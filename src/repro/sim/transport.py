"""Pluggable delivery models: the transport semantics of the round engine.

Historically :class:`~repro.sim.engine.SynchronousEngine` hardwired its
delivery semantics — lockstep scheduling, bounded jitter, and the
in-flight buffer were all inlined in the round loop.  This module extracts
them behind one interface so the engine's loop reduces to *protocol step →
submit → deliver → absorb* and new delivery semantics become data, not
engine surgery.

A :class:`DeliveryModel` owns two decisions:

* **send-time scheduling** — :meth:`DeliveryModel.delay` picks how many
  rounds a message spends in flight (a message submitted in round ``r``
  with delay ``d`` lands in the recipient's inbox for round ``r + d``);
* **delivery-time filtering** — :meth:`DeliveryModel.drop_reason` may veto
  a due delivery (e.g. a partition window).  Liveness filtering (crashed
  recipients, dormant joiners) is shared by every model and applied by the
  delivery loop itself; models only add *link* semantics on top.

Shipped models:

* :class:`Lockstep` — the classic synchronous model: every message takes
  exactly one round.  ``uniform_delay == 1`` lets the engine's fast path
  keep its wholesale-bucket dispatch (the whole round's outbox becomes the
  next round's delivery bucket in one list move), so extracting the layer
  costs the common case nothing.
* :class:`BoundedJitter` — messages take ``1 .. 1 + jitter`` rounds,
  uniform and deterministic in the seed.  Bit-identical to the engine's
  historical inline ``jitter=`` knob (same RNG stream, same salt), which
  survives as a constructor alias.
* :class:`PerLinkLatency` — deterministic heterogeneous delays: each
  directed link gets a fixed delay in ``1 .. 1 + spread`` hashed stably
  from the run seed, modelling a fleet where some links are simply slow.
* :class:`AdversarialScheduler` — worst-case bounded asynchrony: every
  message is held for the maximum delay the bound allows.  Against
  phase-structured protocols this is the most hostile schedule a
  ``(1 + max_delay)``-bounded adversary can play round after round.
* :class:`PartitionWindow` — a transient network partition: during rounds
  ``[start, end]`` no message crosses between the two sides; everything
  else is lockstep.  A robustness scenario for the self-healing paths of
  :mod:`repro.core.sublog`.

Determinism: every model is a pure function of the run seed and its own
parameters.  A model instance is a reusable *spec*; the engine calls
:meth:`DeliveryModel.bind` once per run to obtain a fresh bound runtime
(in-flight buffer, derived RNG), so sharing one spec across a sweep can
never leak state between runs.
"""

from __future__ import annotations

import copy
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from .messages import Message
from .metrics import DROP_CRASH, DROP_DORMANT, DROP_PARTITION
from .rng import derive_rng, derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import SynchronousEngine


class DeliveryModel:
    """Delivery semantics for one simulation run.

    Subclasses override :meth:`delay` (send-time scheduling) and
    optionally :meth:`drop_reason` (delivery-time filtering, with
    ``filters_delivery = True``).  Models with a constant delay should set
    :attr:`uniform_delay` so the engine's fast path can dispatch whole
    rounds wholesale.

    Instances are specs until :meth:`bind` attaches them to an engine;
    the bound copy carries the per-run state (in-flight buffer, RNG).
    """

    #: When set, every message takes exactly this many rounds; the fast
    #: path then skips per-message :meth:`delay` calls entirely.
    uniform_delay: Optional[int] = None
    #: True when :meth:`drop_reason` must be consulted per delivery.
    filters_delivery: bool = False
    #: Registry/CLI name of the model family.
    name: str = "delivery"

    # -- spec API -----------------------------------------------------------------

    def delay(self, sender: int, recipient: int, send_round: int) -> int:
        """Rounds in flight (>= 1) for a message submitted this round."""
        raise NotImplementedError

    def drop_reason(
        self, sender: int, recipient: int, deliver_round: int
    ) -> Optional[str]:
        """Model-specific drop verdict for a due delivery (None = deliver)."""
        return None

    def describe(self) -> str:
        """Short spec string (inverse of :func:`parse_delivery`)."""
        return self.name

    # -- per-run runtime ----------------------------------------------------------

    def bind(self, engine: "SynchronousEngine") -> "DeliveryModel":
        """Return a fresh bound runtime for *engine*.

        The spec itself is never mutated, so one model instance can be
        shared across a whole sweep; each run binds its own buffer and
        (for randomized models) its own seed-derived RNG.
        """
        bound = copy.copy(self)
        bound._engine = engine
        bound._future = {}
        bound._delays = {}
        bound._on_bind(engine)
        return bound

    def _on_bind(self, engine: "SynchronousEngine") -> None:
        """Hook for subclasses needing engine context (seed, node ids)."""

    def submit(self, message: Message, send_round: int) -> None:
        """Schedule one message, charging its delay to the latency metric."""
        delay = self.delay(message.sender, message.recipient, send_round)
        deliver_at = send_round + delay
        bucket = self._future.get(deliver_at)
        if bucket is None:
            self._future[deliver_at] = [message]
            self._delays[deliver_at] = [delay]
        else:
            bucket.append(message)
            self._delays[deliver_at].append(delay)
        self._engine.metrics.record_delay(delay)

    def submit_bulk(self, sends: List[Message], send_round: int) -> None:
        """Wholesale dispatch for uniform-delay models (fast path).

        Takes ownership of *sends*: the whole round's outbox becomes (or
        extends) a single delivery bucket with one list operation — the
        zero-overhead case the lockstep fast path has always had.
        """
        delay = self.uniform_delay
        deliver_at = send_round + delay
        bucket = self._future.get(deliver_at)
        if bucket is None:
            self._future[deliver_at] = sends
        else:
            bucket.extend(sends)
        self._engine.metrics.record_delay(delay, len(sends))

    def pending(
        self, round_no: int
    ) -> Tuple[Optional[List[Message]], Optional[List[int]]]:
        """Pop the messages due at *round_no* and their parallel delays.

        A ``None`` delay list means every entry took :attr:`uniform_delay`
        rounds (wholesale submissions never materialize per-message
        delays).
        """
        return self._future.pop(round_no, None), self._delays.pop(round_no, None)

    def in_flight(self) -> int:
        """Messages currently scheduled but not yet due."""
        return sum(len(bucket) for bucket in self._future.values())

    def deliver(self, round_no: int) -> Iterator[Tuple[Message, int]]:
        """Reference delivery loop: yield ``(message, delay)`` for every
        message due at *round_no* that survives filtering.

        In-flight losses — crashed recipient, dormant joiner, then any
        model-specific :meth:`drop_reason` — are charged to the metrics
        (and the engine's delivery log, when observers want one) here, so
        the engine's legacy path contains no transport logic at all.  The
        fast path inlines an equivalent loop for speed; the differential
        suite holds the two equal.
        """
        pending, delays = self.pending(round_no)
        if not pending:
            return
        engine = self._engine
        metrics = engine.metrics
        faults = engine._faults
        joins = engine._joins
        log = engine._delivery_log
        filters = self.filters_delivery
        uniform = self.uniform_delay or 1
        for position, message in enumerate(pending):
            delay = delays[position] if delays is not None else uniform
            recipient = message.recipient
            if faults.is_crashed(recipient):
                reason: Optional[str] = DROP_CRASH
            elif joins.is_dormant(recipient, round_no):
                reason = DROP_DORMANT
            else:
                reason = (
                    self.drop_reason(message.sender, recipient, round_no)
                    if filters
                    else None
                )
            if reason is not None:
                metrics.record_in_flight_loss(reason)
                if log is not None:
                    log.append((message, delay, reason))
                continue
            if log is not None:
                log.append((message, delay, None))
            yield message, delay


class Lockstep(DeliveryModel):
    """Classic synchronous delivery: every message arrives next round."""

    uniform_delay = 1
    name = "lockstep"

    def delay(self, sender: int, recipient: int, send_round: int) -> int:
        return 1


class BoundedJitter(DeliveryModel):
    """Bounded asynchrony: messages take ``1 .. 1 + jitter`` rounds.

    Delays are uniform and deterministic in the run seed, drawn from the
    same derived stream (salt ``"delivery-jitter"``) the engine's
    historical inline ``jitter=`` knob used — the two are bit-identical,
    which the differential suite pins against pre-refactor signatures.
    """

    name = "jitter"

    def __init__(self, jitter: int) -> None:
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.jitter = int(jitter)
        self.uniform_delay = 1 if self.jitter == 0 else None

    def describe(self) -> str:
        return f"jitter:{self.jitter}"

    def _on_bind(self, engine: "SynchronousEngine") -> None:
        self._rng = derive_rng(engine.seed, "delivery-jitter")

    def delay(self, sender: int, recipient: int, send_round: int) -> int:
        return 1 + self._rng.randrange(self.jitter + 1)


class AdversarialScheduler(DeliveryModel):
    """Worst-case bounded asynchrony: every message takes the maximum.

    A delay-bounded adversary may hold any message up to ``1 + max_delay``
    rounds; this one holds *every* message exactly that long.  Uniform
    lateness is the most hostile stationary schedule for phase-structured
    protocols — every invite arrives ``max_delay`` rounds behind the phase
    clock that scheduled it — while random jitter lets a fraction of
    traffic through on time.  Being uniform, it still qualifies for the
    fast path's wholesale dispatch.
    """

    name = "adversarial"

    def __init__(self, max_delay: int = 2) -> None:
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.max_delay = int(max_delay)
        self.uniform_delay = 1 + self.max_delay

    def describe(self) -> str:
        return f"adversarial:{self.max_delay}"

    def delay(self, sender: int, recipient: int, send_round: int) -> int:
        return self.uniform_delay


class PerLinkLatency(DeliveryModel):
    """Deterministic heterogeneous per-link delays.

    Each directed link ``(u, v)`` gets a fixed delay in ``1 .. 1 +
    spread``, hashed stably from the run seed (`sim.rng.derive_seed`), so
    the same link is always equally slow within a run and across reruns —
    a fleet with a few slow cross-rack links rather than uniformly noisy
    ones.  Explicit ``delays`` entries override the hash per link.
    """

    name = "perlink"

    def __init__(
        self,
        spread: int = 2,
        delays: Optional[Mapping[Tuple[int, int], int]] = None,
    ) -> None:
        if spread < 0:
            raise ValueError(f"spread must be >= 0, got {spread}")
        for link, delay in (delays or {}).items():
            if delay < 1:
                raise ValueError(f"delay for link {link} must be >= 1, got {delay}")
        self.spread = int(spread)
        self.overrides: Dict[Tuple[int, int], int] = dict(delays or {})
        if self.spread == 0 and not self.overrides:
            self.uniform_delay = 1

    def describe(self) -> str:
        return f"perlink:{self.spread}"

    def _on_bind(self, engine: "SynchronousEngine") -> None:
        self._seed = engine.seed
        self._link_delays = dict(self.overrides)

    def delay(self, sender: int, recipient: int, send_round: int) -> int:
        link = (sender, recipient)
        delay = self._link_delays.get(link)
        if delay is None:
            delay = 1 + derive_seed(
                self._seed, "perlink-latency", sender, recipient
            ) % (self.spread + 1)
            self._link_delays[link] = delay
        return delay


class PartitionWindow(DeliveryModel):
    """A transient network partition over a round window.

    During rounds ``[start, end]`` (inclusive, judged at delivery time) no
    message crosses between the two sides; intra-side traffic and
    everything outside the window is plain lockstep.  ``group`` lists the
    node ids of one side; when omitted, the lower half of the sorted id
    space is used (fixed at bind time).

    Cross-partition messages due inside the window are *lost*, not
    deferred — exactly what a timeout-based transport does — and show up
    in ``RunResult.dropped_by_reason["partition"]``.  Discovery then
    relies on the protocol's own healing paths once the window closes.
    """

    uniform_delay = 1
    filters_delivery = True
    name = "partition"

    def __init__(
        self,
        start: int,
        end: int,
        group: Optional[Union[frozenset, set, tuple, list]] = None,
    ) -> None:
        if start < 1:
            raise ValueError(f"partition start must be >= 1, got {start}")
        if end < start:
            raise ValueError(f"partition end {end} precedes start {start}")
        self.start = int(start)
        self.end = int(end)
        self.group = frozenset(group) if group is not None else None

    def describe(self) -> str:
        return f"partition:{self.start}-{self.end}"

    def _on_bind(self, engine: "SynchronousEngine") -> None:
        group = self.group
        if group is None:
            ids = sorted(engine.node_ids)
            group = frozenset(ids[: len(ids) // 2])
        self._side_a = group

    def delay(self, sender: int, recipient: int, send_round: int) -> int:
        return 1

    def drop_reason(
        self, sender: int, recipient: int, deliver_round: int
    ) -> Optional[str]:
        if self.start <= deliver_round <= self.end and (
            (sender in self._side_a) != (recipient in self._side_a)
        ):
            return DROP_PARTITION
        return None


#: Model families constructible from a CLI spec string.
DELIVERY_MODELS: Dict[str, Callable[..., DeliveryModel]] = {
    "lockstep": Lockstep,
    "jitter": BoundedJitter,
    "adversarial": AdversarialScheduler,
    "perlink": PerLinkLatency,
    "partition": PartitionWindow,
}


def parse_delivery(spec: Union[str, DeliveryModel]) -> DeliveryModel:
    """Build a delivery model from a compact spec string.

    Formats (used by the CLI's ``--delivery`` flag and accepted anywhere a
    model is)::

        lockstep            classic synchronous delivery
        jitter:J            uniform delay in 1..1+J
        adversarial[:D]     every message held the maximum 1+D rounds
        perlink[:S]         fixed per-link delays in 1..1+S
        partition:A-B       no cross-partition delivery in rounds [A, B]

    Already-constructed models pass through unchanged.
    """
    if isinstance(spec, DeliveryModel):
        return spec
    head, _, arg = spec.strip().partition(":")
    head = head.lower()
    if head not in DELIVERY_MODELS:
        raise ValueError(
            f"unknown delivery model {head!r}; expected one of "
            f"{', '.join(sorted(DELIVERY_MODELS))}"
        )
    try:
        if head == "lockstep":
            if arg:
                raise ValueError("lockstep takes no argument")
            return Lockstep()
        if head == "jitter":
            if not arg:
                raise ValueError("jitter needs a bound, e.g. jitter:2")
            return BoundedJitter(int(arg))
        if head == "adversarial":
            return AdversarialScheduler(int(arg)) if arg else AdversarialScheduler()
        if head == "perlink":
            return PerLinkLatency(int(arg)) if arg else PerLinkLatency()
        # partition:A-B
        if not arg or "-" not in arg:
            raise ValueError("partition needs a round window, e.g. partition:4-8")
        start_text, _, end_text = arg.partition("-")
        return PartitionWindow(int(start_text), int(end_text))
    except ValueError as error:
        raise ValueError(f"bad delivery spec {spec!r}: {error}") from None
