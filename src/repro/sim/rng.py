"""Deterministic random-number streams for reproducible simulations.

Every random decision in the repository flows through :func:`derive_rng`
(or :func:`derive_seed`), which hash a master seed together with an
arbitrary *salt* path.  Two properties matter:

* **Stability** — the stream for ``(seed, "node", 17)`` is identical across
  processes, platforms, and Python versions (we hash with SHA-256 rather
  than relying on ``hash()``, which is salted per process).
* **Independence** — distinct salt paths give statistically independent
  streams, so per-node randomness does not correlate with, say, the fault
  injector's coin flips.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any

_SEED_BYTES = 8


def derive_seed(master_seed: int, *salt: Any) -> int:
    """Derive a 64-bit child seed from *master_seed* and a salt path.

    The salt components are rendered with ``repr`` and joined with a
    separator that cannot appear in the repr of ints/strs used as salts,
    preventing accidental collisions like ``("ab", "c")`` vs ``("a", "bc")``.
    """
    hasher = hashlib.sha256()
    hasher.update(repr(master_seed).encode())
    for component in salt:
        hasher.update(b"\x1f")
        hasher.update(repr(component).encode())
    return int.from_bytes(hasher.digest()[:_SEED_BYTES], "big")


def derive_rng(master_seed: int, *salt: Any) -> random.Random:
    """Return a fresh :class:`random.Random` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(master_seed, *salt))
