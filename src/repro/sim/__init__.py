"""Synchronous message-passing simulation substrate.

The public surface of the simulator:

* :class:`SynchronousEngine` — the round executor (model enforcement,
  metrics, goal detection).
* :class:`ProtocolNode` — base class for protocol implementations.
* :class:`Message` — the unit of communication.
* :class:`RunResult` / :class:`RoundStats` — complexity accounting.
* :class:`FaultPlan` / :func:`crash_fraction_plan` — fault injection.
* :class:`DeliveryModel` and friends — pluggable delivery semantics
  (lockstep, bounded jitter, per-link latency, adversarial scheduling,
  partition windows).
* :class:`Observer` and friends — read-only run inspection.
* :func:`derive_rng` / :func:`derive_seed` — deterministic randomness.
"""

from .churn import JoinPlan, late_join_workload
from .engine import BACKENDS, GOALS, SynchronousEngine, default_max_rounds
from .errors import (
    EngineStateError,
    ProtocolViolation,
    SimulationError,
    UnknownNodeError,
)
from .faults import FaultInjector, FaultPlan, crash_fraction_plan
from .messages import MESSAGE_HEADER_WORDS, Message, message_bits
from .metrics import MetricsCollector, RoundStats, RunResult
from .node import ProtocolNode
from .observers import (
    KnowledgeSizeObserver,
    LoadObserver,
    Observer,
    RoundLogObserver,
)
from .rng import derive_rng, derive_seed
from .trace import TraceEvent, TraceObserver, read_jsonl
from .transport import (
    DELIVERY_MODELS,
    AdversarialScheduler,
    BoundedJitter,
    DeliveryModel,
    Lockstep,
    PartitionWindow,
    PerLinkLatency,
    parse_delivery,
)
from .vector_kernel import vector_available

__all__ = [
    "BACKENDS",
    "DELIVERY_MODELS",
    "GOALS",
    "MESSAGE_HEADER_WORDS",
    "AdversarialScheduler",
    "BoundedJitter",
    "DeliveryModel",
    "EngineStateError",
    "FaultInjector",
    "FaultPlan",
    "JoinPlan",
    "KnowledgeSizeObserver",
    "LoadObserver",
    "Lockstep",
    "Message",
    "MetricsCollector",
    "Observer",
    "PartitionWindow",
    "PerLinkLatency",
    "ProtocolNode",
    "ProtocolViolation",
    "RoundLogObserver",
    "RoundStats",
    "RunResult",
    "SimulationError",
    "SynchronousEngine",
    "TraceEvent",
    "TraceObserver",
    "UnknownNodeError",
    "crash_fraction_plan",
    "default_max_rounds",
    "derive_rng",
    "derive_seed",
    "late_join_workload",
    "message_bits",
    "parse_delivery",
    "read_jsonl",
    "vector_available",
]
