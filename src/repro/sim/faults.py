"""Fault injection for discovery runs.

Two fault classes from the distributed-systems playbook are modelled:

* **Message loss** — each sent message is dropped independently with
  probability ``loss_rate``.  Dropped messages are still *charged* to the
  sender's message complexity (the send happened) but are never delivered
  and teach the recipient nothing.
* **Crash failures** — a machine crashes at the start of a scheduled round
  and thereafter neither executes nor receives.  Messages already in flight
  to a crashed machine are lost.  Crashes are fail-stop: no recovery.

The plan is deterministic given its seed, so fault experiments are exactly
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence

from .metrics import DROP_CRASH, DROP_FAULT
from .rng import derive_rng


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible description of the faults injected into one run.

    Attributes:
        loss_rate: Independent drop probability for every message.
        crash_rounds: Mapping from node id to the round (1-based) at whose
            start the node crashes.
        seed: Seed for the loss coin flips (independent of protocol RNG).
    """

    loss_rate: float = 0.0
    crash_rounds: Mapping[int, int] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate}")
        for node, round_no in self.crash_rounds.items():
            if round_no < 1:
                raise ValueError(f"crash round for node {node} must be >= 1")

    @property
    def has_faults(self) -> bool:
        return self.loss_rate > 0.0 or bool(self.crash_rounds)


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan` during a run."""

    def __init__(self, plan: Optional[FaultPlan], master_seed: int) -> None:
        self.plan = plan or FaultPlan()
        self._loss_rng: random.Random = derive_rng(master_seed, "faults", self.plan.seed)
        self._crashed: Dict[int, int] = {}

    def apply_crashes(self, round_no: int) -> Sequence[int]:
        """Crash every node scheduled for *round_no*; return their ids."""
        newly_crashed = [
            node
            for node, crash_round in self.plan.crash_rounds.items()
            if crash_round == round_no and node not in self._crashed
        ]
        for node in newly_crashed:
            self._crashed[node] = round_no
        return newly_crashed

    def is_crashed(self, node: int) -> bool:
        return node in self._crashed

    @property
    def crashed_map(self) -> Dict[int, int]:
        """The live node → crash-round mapping (shared; treat as read-only).

        Unlike :attr:`crashed_nodes` this does not copy, so hot loops can
        test emptiness and membership without per-round allocation.
        """
        return self._crashed

    @property
    def crashed_nodes(self) -> frozenset[int]:
        return frozenset(self._crashed)

    def send_drop_reason(self, sender: int, recipient: int) -> Optional[str]:
        """Classify a send-time loss; ``None`` means the send goes through.

        Messages to crashed machines are always lost (tagged
        :data:`~repro.sim.metrics.DROP_CRASH` — the same physical loss as
        a crash caught at delivery time); otherwise a fair ``loss_rate``
        coin decides (:data:`~repro.sim.metrics.DROP_FAULT`).  The coin is
        consumed even for messages lost to a crash, keeping the random
        stream aligned across comparative runs.
        """
        coin_drop = (
            self.plan.loss_rate > 0.0 and self._loss_rng.random() < self.plan.loss_rate
        )
        if recipient in self._crashed:
            return DROP_CRASH
        return DROP_FAULT if coin_drop else None

    def should_drop(self, sender: int, recipient: int) -> bool:
        """Whether a message is lost in transit (reason-blind wrapper
        around :meth:`send_drop_reason`; consumes the same coin)."""
        return self.send_drop_reason(sender, recipient) is not None


def parse_kill_specs(specs: Iterable[str]) -> Dict[int, int]:
    """Parse ``"id@round"`` crash specs into a ``crash_rounds`` mapping.

    Accepts an iterable of specs, each of which may itself be a
    comma-separated list (so CLI flags compose: ``--kill 3@5 --kill
    1@2,6@4``).  Raises :class:`ValueError` on malformed specs or a node
    scheduled to crash twice.
    """
    crash_rounds: Dict[int, int] = {}
    for chunk in specs:
        for spec in chunk.split(","):
            spec = spec.strip()
            if not spec:
                continue
            node_text, sep, round_text = spec.partition("@")
            try:
                if not sep:
                    raise ValueError
                node, round_no = int(node_text), int(round_text)
            except ValueError:
                raise ValueError(
                    f"malformed kill spec {spec!r}; expected 'id@round'"
                ) from None
            if round_no < 1:
                raise ValueError(f"kill round for node {node} must be >= 1")
            if node in crash_rounds:
                raise ValueError(f"node {node} scheduled to crash twice")
            crash_rounds[node] = round_no
    return crash_rounds


def crash_fraction_plan(
    node_ids: Iterable[int],
    fraction: float,
    crash_round: int,
    seed: int,
    protect: Iterable[int] = (),
) -> FaultPlan:
    """Build a plan crashing a random *fraction* of nodes at *crash_round*.

    ``protect`` lists nodes exempt from crashing (e.g. a designated
    observer).  The victim choice is deterministic in ``seed``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    protected = set(protect)
    candidates = sorted(node for node in node_ids if node not in protected)
    count = int(len(candidates) * fraction)
    rng = derive_rng(seed, "crash-fraction", fraction, crash_round)
    victims = rng.sample(candidates, count) if count else []
    return FaultPlan(crash_rounds={node: crash_round for node in victims}, seed=seed)
