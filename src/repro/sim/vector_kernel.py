"""Bit-packed numpy knowledge state: the ``vector`` engine backend's core.

The dense fast path (:mod:`repro.sim.engine`, ``backend="fast"``) stores
each machine's ground-truth knowledge as an arbitrary-precision Python
integer.  That representation tops out around n = 4096: every mask
operation allocates a fresh ``n``-bit int, and the round loop performs
several of them *per message* in interpreted code.  This module replaces
the per-node ints with one bit-packed numpy matrix

    ``K`` — ``uint8``, shape ``(n, ceil(n/8))``, C-contiguous

where bit ``j`` of row ``i`` (byte ``j >> 3``, bit ``j & 7`` — the same
little-endian layout the engine's :meth:`knowledge_digest` has always
hashed) means *machine i knows machine j*.  A whole round of pointer
delivery then becomes a handful of batched row-wise operations:

* the **complete-recipient skip** is one boolean gather over the
  per-message recipient indices;
* the **candidate screen** — "can this delivery teach anything at all?"
  — gathers the sender and recipient rows of every surviving message
  into chunked sub-matrices and evaluates
  ``((K[s] | bit(s)) & ~K[r]).any()`` for thousands of messages per
  numpy call;
* only messages that pass both screens pay the protocol-boundary cost of
  translating their carried identifier collection into a packed row
  (``np.packbits`` over a reusable scratch bit vector), and the learning
  itself is a row ``OR``.

Derived counters (per-row popcounts via ``np.bitwise_count``, the
complete set as both a boolean vector and a packed row) are maintained
incrementally from the per-round deltas, so goal predicates stay O(1).

The matrix costs ``n * ceil(n/8)`` bytes — 8 MB at n = 8192, 1.25 GB at
n = 10^5, 125 GB at n = 10^6 (the last is out of reach for one box with
ordinary memory; see docs/PERF.md for the measured footprint column).

numpy is a declared runtime dependency, but the simulator core must stay
importable without it (only :mod:`repro.analysis` needed it before this
module existed).  Everything here therefore guards the import:
:func:`vector_available` reports whether the backend can run, and
:func:`require_numpy` raises one clear, actionable error otherwise.
"""

from __future__ import annotations

from typing import Collection, Dict, List, Mapping, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via vector_available() either way
    import numpy as np
except ImportError:  # pragma: no cover - numpy is baked into the image
    np = None  # type: ignore[assignment]

#: Target bytes per gathered sub-matrix in the chunked candidate screen.
#: 32 MB keeps three live chunk temporaries comfortably inside any
#: reasonable cache-of-last-resort without bounding throughput.
_CHUNK_BYTES = 32 << 20

#: numpy < 2.0 lacks ``np.bitwise_count``; fall back to a uint8 popcount
#: lookup table (one extra gather, same semantics).
if np is not None and hasattr(np, "bitwise_count"):
    def _popcount_rows(rows: "np.ndarray") -> "np.ndarray":
        """Per-row popcounts of a 2-D packed matrix (1-D gets summed)."""
        return np.bitwise_count(rows).sum(axis=-1, dtype=np.int64)
elif np is not None:  # pragma: no cover - numpy >= 2.0 in the image
    _POPCOUNT_TABLE = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    def _popcount_rows(rows: "np.ndarray") -> "np.ndarray":
        return _POPCOUNT_TABLE[rows].sum(axis=-1, dtype=np.int64)


def vector_available() -> bool:
    """Whether the vector backend can run in this interpreter."""
    return np is not None


def require_numpy() -> None:
    """Raise a clear error when the vector backend is requested but
    numpy is missing."""
    if np is None:
        raise ImportError(
            "the 'vector' engine backend requires numpy, which is a "
            "declared dependency of this package but is not importable "
            "in this environment; install it (pip install numpy) or "
            "select backend='fast' / backend='legacy' instead"
        )


class VectorState:
    """The bit-packed ground-truth knowledge of one simulation run.

    Owns the knowledge matrix and its derived counters; the engine's
    ``backend="vector"`` round body drives it.  All mutating entry
    points preserve two invariants the digest and the differential
    runner rely on:

    * padding bits past ``n`` in the last byte of every row are zero
      (every OR-ed operand is derived from clean rows or from
      ``np.packbits`` over exactly ``n`` bits);
    * ``sizes``/``complete``/``complete_row`` equal the values a full
      recount would produce (updates are delta-exact, see
      :meth:`apply_delta`).
    """

    def __init__(self, n: int) -> None:
        require_numpy()
        self.n = n
        self.nbytes = (n + 7) >> 3
        self.K = np.zeros((n, self.nbytes), dtype=np.uint8)
        self.sizes = np.zeros(n, dtype=np.int64)
        self.complete = np.zeros(n, dtype=bool)
        self.complete_row = np.zeros(self.nbytes, dtype=np.uint8)
        #: Dense index ``i`` lives in byte ``byte_of[i]`` at bit value
        #: ``bitval_of[i]`` of its row.
        indices = np.arange(n, dtype=np.intp)
        self.byte_of = (indices >> 3).astype(np.intp)
        self.bitval_of = (
            np.uint8(1) << (indices & 7).astype(np.uint8)
        ).astype(np.uint8)
        self._scratch_bits = np.zeros(self.nbytes * 8, dtype=bool)
        self._chunk_rows = max(1, _CHUNK_BYTES // max(1, self.nbytes))

    # -- construction helpers -----------------------------------------------------

    def seed_row(self, row_index: int, dense_ids: Collection[int]) -> None:
        """Set the initial bits of one row and its derived counters.

        Only called at engine construction (and by the bench-only state
        injection in :mod:`repro.bench.steady`); *dense_ids* must be
        duplicate-free dense indices including the node's own.
        """
        row = self.K[row_index]
        for bit in dense_ids:
            row[bit >> 3] |= 1 << (bit & 7)
        size = int(_popcount_rows(row))
        self.sizes[row_index] = size
        if size == self.n:
            self.mark_complete(row_index)

    def mark_complete(self, row_index: int) -> None:
        self.complete[row_index] = True
        self.complete_row[self.byte_of[row_index]] |= self.bitval_of[row_index]

    # -- packing at the protocol boundary -----------------------------------------

    def pack_indices(self, dense_ids: Sequence[int]) -> "np.ndarray":
        """Translate dense indices into a freshly-allocated packed row.

        This is the O(|ids|) protocol-boundary cost the candidate screen
        exists to avoid: only messages proven able to teach pay it.  The
        scratch bit vector is reused across calls (set, pack, unset).
        """
        bits = self._scratch_bits
        if dense_ids:
            arr = np.fromiter(dense_ids, dtype=np.intp, count=len(dense_ids))
            bits[arr] = True
            packed = np.packbits(bits[: self.nbytes * 8], bitorder="little")
            bits[arr] = False
        else:
            packed = np.zeros(self.nbytes, dtype=np.uint8)
        return packed

    # -- the batched screens ------------------------------------------------------

    def screen(
        self, senders: "np.ndarray", recipients: "np.ndarray"
    ) -> "np.ndarray":
        """Boolean verdict per message: *can this delivery teach?*

        Stage 1 drops messages to complete recipients with one gather.
        Stage 2 evaluates the candidate mask
        ``(K[sender] | bit(sender)) & ~K[recipient]`` row-wise over the
        survivors, in chunks bounded to ``_CHUNK_BYTES`` of temporaries.
        A ``True`` verdict is an upper bound (the message may still
        carry none of the candidate ids); a ``False`` verdict is exact —
        for legal traffic the delivery provably teaches nothing.
        """
        teaches = np.zeros(len(senders), dtype=bool)
        survivors = np.nonzero(~self.complete[recipients])[0]
        if survivors.size == 0:
            return teaches
        K = self.K
        chunk = self._chunk_rows
        for start in range(0, survivors.size, chunk):
            sel = survivors[start : start + chunk]
            chunk_senders = senders[sel]
            cand = K[chunk_senders]  # copy: c x nbytes
            cand[
                np.arange(len(sel), dtype=np.intp),
                self.byte_of[chunk_senders],
            ] |= self.bitval_of[chunk_senders]
            recipient_rows = np.invert(K[recipients[sel]])
            np.bitwise_and(cand, recipient_rows, out=cand)
            teaches[sel] = cand.any(axis=1)
        return teaches

    def message_add(
        self, sender_index: int, recipient_index: int, packed_ids: "np.ndarray"
    ) -> Optional["np.ndarray"]:
        """The exact learning row of one teaching delivery, or ``None``.

        *packed_ids* is the message's carried-identifier row **with the
        sender's bit already set** (the sender is always learned).  The
        result is ``(ids | bit(sender)) & (K[sender] | bit(sender)) &
        ~K[recipient]`` — intersecting with the sender's knowledge
        mirrors the fast path's candidate-mask learning rule, under
        which identifiers the sender does not know are never taught
        (the documented ``enforce_legality=False`` contract; with
        enforcement on such traffic already raised)."""
        sender_row = self.K[sender_index].copy()
        sender_row[self.byte_of[sender_index]] |= self.bitval_of[sender_index]
        np.bitwise_and(sender_row, packed_ids, out=sender_row)
        recipient_inverse = np.invert(self.K[recipient_index])
        np.bitwise_and(sender_row, recipient_inverse, out=sender_row)
        if not sender_row.any():
            return None
        return sender_row

    # -- learning -----------------------------------------------------------------

    def or_into(self, row_index: int, add: "np.ndarray") -> None:
        self.K[row_index] |= add

    def apply_delta(self, row_index: int, old_row: "np.ndarray") -> int:
        """Fold one changed row's delta into the derived counters.

        Returns the number of newly-learned machines.  ``old_row`` is
        the row's value at the start of the round; knowledge is
        monotone, so ``new & ~old`` is exactly what the round taught."""
        delta = self.K[row_index] & ~old_row
        gained = int(_popcount_rows(delta))
        if gained == 0:
            return 0
        size = int(self.sizes[row_index]) + gained
        self.sizes[row_index] = size
        if size == self.n:
            self.mark_complete(row_index)
        return gained

    def delta_alive_gain(
        self, row_index: int, old_row: "np.ndarray", alive_row: "np.ndarray"
    ) -> int:
        """Newly-learned machines that are currently alive."""
        delta = (self.K[row_index] & ~old_row) & alive_row
        return int(_popcount_rows(delta))

    # -- whole-matrix queries -----------------------------------------------------

    def masked_popcounts(
        self, row_indices: "np.ndarray", mask_row: "np.ndarray"
    ) -> "np.ndarray":
        """``popcount(K[i] & mask_row)`` for each requested row, chunked."""
        out = np.zeros(len(row_indices), dtype=np.int64)
        chunk = self._chunk_rows
        for start in range(0, len(row_indices), chunk):
            sel = row_indices[start : start + chunk]
            out[start : start + len(sel)] = _popcount_rows(self.K[sel] & mask_row)
        return out

    def common_knowledge_row(self) -> "np.ndarray":
        """AND of every row: bit ``j`` set iff *everyone* knows ``j``.

        O(n * nbytes) — only ever evaluated once a complete node exists
        (the weak-goal early-out), mirroring the fast path's scan."""
        return np.bitwise_and.reduce(self.K, axis=0)

    def first_set_bit(self, row: "np.ndarray") -> Optional[int]:
        """Lowest set bit index of a packed row, or ``None``."""
        nonzero = np.nonzero(row)[0]
        if nonzero.size == 0:
            return None
        byte = int(nonzero[0])
        value = int(row[byte])
        return (byte << 3) + (value & -value).bit_length() - 1

    def row_new_bits(
        self, row_index: int, cached_row: "np.ndarray"
    ) -> "np.ndarray":
        """Dense indices set in the row but not in *cached_row* (for the
        lazy knowledge-set synchronization)."""
        fresh = self.K[row_index] & ~cached_row
        return np.nonzero(
            np.unpackbits(fresh, bitorder="little")[: self.n]
        )[0]

    def digest_view(self) -> "np.ndarray":
        """The matrix itself — C-contiguous, so hashlib consumes it
        through the buffer protocol without a byte-string round trip."""
        return self.K


def pack_message_ids(
    ids: Collection[int],
    sender: int,
    index: Mapping[int, int],
    state: VectorState,
    cache: Dict[int, Tuple[Collection[int], "np.ndarray"]],
) -> "np.ndarray":
    """Packed row of a message's carried ids plus its sender bit.

    Tolerates dirty protocol input exactly like the fast path's
    ``_mask_from_message_ids``: duplicates collapse (bits are
    idempotent) and, with legality enforcement off, identifiers naming
    no simulated machine are silently skipped.

    *cache* memoizes the ids-only packed row by the identity of the
    carried collection within one delivery batch — protocols routinely
    send one snapshot to many recipients (and the synthetic steady-state
    kernel sends one shared frozenset to everyone), making the O(|ids|)
    translation a once-per-round cost instead of once-per-message.  The
    cache holds a reference to the collection, so ``id()`` stays valid
    for its lifetime; callers drop the cache when the batch ends.
    """
    key = id(ids)
    entry = cache.get(key)
    if entry is None:
        dense: List[int] = []
        get = index.get
        for target in ids:
            bit = get(target)
            if bit is not None:
                dense.append(bit)
        packed = state.pack_indices(dense)
        cache[key] = (ids, packed)
    else:
        packed = entry[1]
    with_sender = packed.copy()
    with_sender[state.byte_of[sender]] |= state.bitval_of[sender]
    return with_sender
