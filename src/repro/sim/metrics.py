"""Complexity accounting for simulation runs.

The resource-discovery literature reports four cost measures (DESIGN.md
section 1): rounds, messages, pointers, and bits.  :class:`MetricsCollector`
accumulates them during a run; :class:`RunResult` is the immutable summary
handed back to callers and to the benchmark harness.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .messages import MESSAGE_HEADER_WORDS, Message

#: Loss-reason tags used by :attr:`MetricsCollector.dropped_by_reason`.
#: ``fault`` — dropped at send time by the loss-rate coin
#: (:meth:`repro.sim.faults.FaultInjector.send_drop_reason`); ``crash`` —
#: the recipient had crashed, whether the loss was detected at send time
#: (recipient already dead) or at delivery time (it died while the
#: message was in flight) — the same physical loss, so it carries one
#: tag; ``dormant`` — the recipient had not yet joined at delivery time;
#: ``partition`` — vetoed by a
#: :class:`repro.sim.transport.PartitionWindow` delivery model.
DROP_FAULT = "fault"
DROP_CRASH = "crash"
DROP_DORMANT = "dormant"
DROP_PARTITION = "partition"


@dataclass(frozen=True, slots=True)
class RoundStats:
    """Costs incurred during a single synchronous round.

    ``messages`` counts the sends charged this round; ``dropped_messages``
    counts the losses *charged* this round, which under delayed delivery
    include in-flight losses of messages sent (and counted) in earlier
    rounds.  The two streams reconcile only over the whole run, so
    :attr:`delivered_messages` clamps at zero per round — use
    ``RunResult.messages - RunResult.dropped_messages`` for run totals.
    """

    round_no: int
    messages: int
    pointers: int
    dropped_messages: int = 0

    @property
    def delivered_messages(self) -> int:
        return max(0, self.messages - self.dropped_messages)


class MetricsCollector:
    """Accumulates per-round and per-kind cost counters during a run."""

    def __init__(self) -> None:
        self.total_messages = 0
        self.total_pointers = 0
        self.messages_by_kind: Counter[str] = Counter()
        self.pointers_by_kind: Counter[str] = Counter()
        self.dropped_by_reason: Counter[str] = Counter()
        self.delivery_delays: Counter[int] = Counter()
        self.round_stats: List[RoundStats] = []
        self._round_messages = 0
        self._round_pointers = 0
        self._round_dropped = 0

    @property
    def total_dropped(self) -> int:
        """All losses regardless of reason (the historical aggregate)."""
        return sum(self.dropped_by_reason.values())

    def record_send(
        self, message: Message, dropped: bool = False, reason: str = DROP_FAULT
    ) -> None:
        """Charge one message (sent messages count even when dropped).

        ``reason`` tags a send-time drop; the default ``fault`` covers the
        loss coin, while a send to an already-crashed recipient passes
        ``crash`` so the taxonomy matches the in-flight case.
        """
        pointers = message.pointer_count
        self.total_messages += 1
        self.total_pointers += pointers
        self.messages_by_kind[message.kind] += 1
        self.pointers_by_kind[message.kind] += pointers
        self._round_messages += 1
        self._round_pointers += pointers
        if dropped:
            self.dropped_by_reason[reason] += 1
            self._round_dropped += 1

    def record_batch(
        self,
        messages_by_kind: Mapping[str, int],
        pointers_by_kind: Mapping[str, int],
        dropped: int = 0,
        dropped_by_reason: Optional[Mapping[str, int]] = None,
    ) -> None:
        """Charge a whole round's sends in one call.

        The fast-path engine tallies its outboxes per kind (see
        :func:`repro.sim.messages.tally_by_kind`) and records them here,
        replacing one :meth:`record_send` call per message with one call
        per round.  The resulting counters are identical: ``Counter.update``
        adds counts, and kinds present with a zero pointer tally still
        materialize their key, exactly as ``record_send`` does.

        ``dropped`` charges send-time ``fault`` drops (the legacy single
        channel); ``dropped_by_reason`` charges an explicit per-reason
        split on top of it (the engine uses it to keep send-time crash
        losses under ``crash``).
        """
        messages = sum(messages_by_kind.values())
        pointers = sum(pointers_by_kind.values())
        self.total_messages += messages
        self.total_pointers += pointers
        self.messages_by_kind.update(messages_by_kind)
        self.pointers_by_kind.update(pointers_by_kind)
        self._round_messages += messages
        self._round_pointers += pointers
        if dropped:
            self.dropped_by_reason[DROP_FAULT] += dropped
            self._round_dropped += dropped
        if dropped_by_reason:
            for reason, count in dropped_by_reason.items():
                self.dropped_by_reason[reason] += count
                self._round_dropped += count

    def record_in_flight_loss(self, reason: str = DROP_CRASH) -> None:
        """Charge a drop for a message lost after sending (recipient
        crashed or dormant at delivery time, or vetoed by the delivery
        model).  The send itself was already recorded; only the drop
        counters move."""
        self.dropped_by_reason[reason] += 1
        self._round_dropped += 1

    def record_delay(self, delay: int, count: int = 1) -> None:
        """Charge *count* messages scheduled with the given in-flight delay
        (rounds from send to delivery attempt) to the latency histogram."""
        self.delivery_delays[delay] += count

    def close_round(self, round_no: int) -> RoundStats:
        """Finish the current round and return its statistics."""
        stats = RoundStats(
            round_no=round_no,
            messages=self._round_messages,
            pointers=self._round_pointers,
            dropped_messages=self._round_dropped,
        )
        self.round_stats.append(stats)
        self._round_messages = 0
        self._round_pointers = 0
        self._round_dropped = 0
        return stats


@dataclass(frozen=True)
class RunResult:
    """Immutable summary of one discovery run.

    Attributes:
        algorithm: Registry name of the protocol that ran.
        n: Number of machines in the simulation.
        seed: Master seed of the run.
        completed: Whether the goal predicate was reached.
        rounds: Rounds executed until completion (or until the cap when
            ``completed`` is ``False``).
        messages / pointers: Totals over the whole run.
        dropped_messages: Messages charged but lost for any reason
            (send-time fault drops plus in-flight losses).
        dropped_by_reason: The same losses keyed by reason tag (``fault``,
            ``crash``, ``dormant``, ``partition`` — the ``DROP_*``
            constants); values sum to ``dropped_messages``.
        delivery_delays: Histogram ``{delay_rounds: message_count}`` of
            the in-flight delay assigned to every scheduled message
            (``{1: sends}`` under lockstep delivery).
        messages_by_kind / pointers_by_kind: Per-message-kind breakdowns.
        round_stats: Per-round cost trajectory.
        params: Algorithm parameters used for the run.
        extra: Free-form observations contributed by observers (for
            example per-phase cluster-size statistics).
    """

    algorithm: str
    n: int
    seed: int
    completed: bool
    rounds: int
    messages: int
    pointers: int
    dropped_messages: int = 0
    messages_by_kind: Mapping[str, int] = field(default_factory=dict)
    pointers_by_kind: Mapping[str, int] = field(default_factory=dict)
    dropped_by_reason: Mapping[str, int] = field(default_factory=dict)
    delivery_delays: Mapping[int, int] = field(default_factory=dict)
    round_stats: Tuple[RoundStats, ...] = ()
    params: Mapping[str, Any] = field(default_factory=dict)
    extra: Mapping[str, Any] = field(default_factory=dict)

    @property
    def id_bits(self) -> int:
        """Identifier width used for bit-complexity conversion."""
        return max(1, math.ceil(math.log2(max(2, self.n))))

    @property
    def bits(self) -> int:
        """Total bit complexity (pointers plus per-message headers)."""
        return (self.pointers + MESSAGE_HEADER_WORDS * self.messages) * self.id_bits

    @property
    def messages_per_node(self) -> float:
        return self.messages / self.n if self.n else 0.0

    def summary(self) -> Dict[str, Any]:
        """A flat dict convenient for tables and JSON dumps."""
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "seed": self.seed,
            "completed": self.completed,
            "rounds": self.rounds,
            "messages": self.messages,
            "pointers": self.pointers,
            "bits": self.bits,
            "dropped_messages": self.dropped_messages,
        }


def merge_extras(base: Optional[Mapping[str, Any]], update: Mapping[str, Any]) -> Dict[str, Any]:
    """Merge observer-contributed extras, later contributions winning."""
    merged: Dict[str, Any] = dict(base or {})
    merged.update(update)
    return merged
