"""Exception hierarchy for the simulation substrate.

Every error raised by :mod:`repro.sim` derives from :class:`SimulationError`
so callers can catch substrate problems without masking ordinary bugs.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class ProtocolViolation(SimulationError):
    """A protocol broke the resource-discovery communication model.

    The model only permits a machine to message machines whose identifiers
    it currently knows, and to include identifiers it currently knows.
    Raising (rather than silently dropping) keeps the lower-bound
    experiments trustworthy: an algorithm cannot accidentally cheat.
    """

    def __init__(self, sender: int, detail: str):
        self.sender = sender
        self.detail = detail
        super().__init__(f"node {sender}: {detail}")


class UnknownNodeError(SimulationError):
    """A message referenced a node identifier outside the simulation."""


class EngineStateError(SimulationError):
    """The engine was driven through an invalid state transition."""
