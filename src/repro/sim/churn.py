"""Dynamic membership: machines that join mid-run.

Resource discovery in real fleets is not one-shot — machines keep
arriving.  A :class:`JoinPlan` declares, per machine, the round at whose
start it powers on.  Until then the machine is *dormant*: it executes no
rounds and messages to it are lost (it is off).  Its initial knowledge
(the bootstrap addresses it was configured with) becomes usable the
moment it joins.

The discovery goal is unchanged — e.g. strong discovery now implicitly
requires the run to continue until after the last join.  The shipped
cluster-merging algorithm needs no modification: a late joiner simply
starts life as a singleton cluster and invites its bootstrap contacts,
and the incumbents absorb it like any other cluster (experiment T6).

Workload construction: :func:`late_join_workload` builds a base topology
over the incumbent machines and staggers the joiners, giving each joiner
bootstrap contacts among machines that are already up when it arrives —
the realistic constraint that you can only be configured with addresses
that exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..graphs.generators import make_topology
from ..graphs.knowledge import KnowledgeGraph
from .rng import derive_rng


@dataclass(frozen=True)
class JoinPlan:
    """Round (1-based) at whose start each listed machine joins.

    Machines not listed are present from round 1.
    """

    join_rounds: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node, round_no in self.join_rounds.items():
            if round_no < 1:
                raise ValueError(f"join round for node {node} must be >= 1")

    @property
    def has_joins(self) -> bool:
        return bool(self.join_rounds)

    @property
    def last_join(self) -> int:
        return max(self.join_rounds.values(), default=0)

    def is_dormant(self, node: int, round_no: int) -> bool:
        join_round = self.join_rounds.get(node)
        return join_round is not None and round_no < join_round


def late_join_workload(
    incumbents: int,
    joiners: int,
    seed: int = 0,
    topology: str = "kout",
    contacts: int = 3,
    join_start: int = 7,
    join_stride: int = 2,
    join_window: Optional[int] = None,
    **topology_params: object,
) -> Tuple[KnowledgeGraph, JoinPlan]:
    """Build a staggered-join discovery workload.

    Machines ``0 .. incumbents-1`` form the base *topology* and are up
    from round 1.  Machines ``incumbents .. incumbents+joiners-1`` join
    at rounds ``join_start, join_start + join_stride, ...`` — or, when
    ``join_window`` is given, spread evenly over
    ``[join_start, join_start + join_window]`` (several machines may then
    join in the same round, which is what a large autoscaling burst looks
    like).  Each joiner is configured with *contacts* bootstrap addresses
    drawn uniformly from the machines already up at its join round.

    Returns the combined knowledge graph and the :class:`JoinPlan`.
    """
    if incumbents < 1:
        raise ValueError(f"need at least one incumbent, got {incumbents}")
    if joiners < 0:
        raise ValueError(f"joiners must be >= 0, got {joiners}")
    if contacts < 1:
        raise ValueError(f"contacts must be >= 1, got {contacts}")
    if join_start < 1 or join_stride < 0:
        raise ValueError("join_start must be >= 1 and join_stride >= 0")
    if join_window is not None and join_window < 0:
        raise ValueError(f"join_window must be >= 0, got {join_window}")

    base = make_topology(topology, incumbents, seed=seed, **topology_params)
    adjacency = {node: set(neighbors) for node, neighbors in base.adjacency().items()}
    rng = derive_rng(seed, "late-join", incumbents, joiners)

    join_rounds: Dict[int, int] = {}
    present = list(range(incumbents))
    for index in range(joiners):
        node = incumbents + index
        if join_window is not None:
            # Divide by joiners - 1 so the joiners span the *closed*
            # window [join_start, join_start + join_window]: the first
            # lands on join_start, the last exactly on the end.
            join_rounds[node] = join_start + (index * join_window) // max(
                1, joiners - 1
            )
        else:
            join_rounds[node] = join_start + index * join_stride
        count = min(contacts, len(present))
        adjacency[node] = set(rng.sample(present, count))
        present.append(node)

    return KnowledgeGraph(adjacency), JoinPlan(join_rounds=join_rounds)
