"""Observers specific to the sub-logarithmic algorithm.

:class:`ClusterSizeObserver` records the cluster-size distribution at the
end of every phase — the raw data behind experiment F2 (the squaring
recurrence) and the per-phase progress narrative in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

from ..sim.observers import Observer
from .phases import ROUNDS_PER_PHASE
from .sublog import SubLogNode

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import SynchronousEngine


def cluster_sizes(engine: "SynchronousEngine") -> List[int]:
    """Current cluster sizes, read from the leaders' rosters.

    Machines whose protocol node is not a :class:`SubLogNode` are ignored.
    Mid-merge snapshots can transiently double-count a machine whose
    welcome is in flight; sizes are instrumentation, not protocol state.
    """
    sizes = []
    for node in engine.nodes.values():
        if isinstance(node, SubLogNode) and node.is_leader:
            sizes.append(len(node.roster))
    return sorted(sizes)


class ClusterSizeObserver(Observer):
    """Snapshots cluster-size statistics at every phase boundary."""

    def __init__(self) -> None:
        self.history: List[Dict[str, float]] = []

    def _snapshot(self, engine: "SynchronousEngine", phase: int) -> None:
        sizes = cluster_sizes(engine)
        if not sizes:
            return
        self.history.append(
            {
                "phase": phase,
                "clusters": len(sizes),
                "min": float(sizes[0]),
                "median": float(sizes[len(sizes) // 2]),
                "max": float(sizes[-1]),
            }
        )

    def on_setup(self, engine: "SynchronousEngine") -> None:
        self._snapshot(engine, 0)

    def on_round_end(self, engine: "SynchronousEngine", round_no: int) -> None:
        if round_no % ROUNDS_PER_PHASE == 0:
            self._snapshot(engine, round_no // ROUNDS_PER_PHASE)

    def on_finish(self, engine: "SynchronousEngine", completed: bool) -> None:
        if engine.round_no % ROUNDS_PER_PHASE != 0:
            self._snapshot(engine, engine.round_no // ROUNDS_PER_PHASE + 1)

    def extra(self) -> Dict[str, Any]:
        return {"cluster_phases": list(self.history)}
