"""Configuration for the sub-logarithmic discovery algorithm.

Every reconstruction decision called out in DESIGN.md section 2 is a field
here, so the ablation experiments (T5) can toggle them one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Merge-decision rules (see :mod:`repro.core.sublog`).
CONTRACTIONS = ("coin", "rank")

#: Completion behaviors: broadcast the roster for strong discovery, or stop
#: at the leader knowing everyone (weak discovery).
COMPLETIONS = ("broadcast", "none")


@dataclass(frozen=True)
class SubLogConfig:
    """Tunable parameters of :class:`repro.core.sublog.SubLogNode`.

    Attributes:
        contraction: ``"rank"`` (default) — deterministic component
            contraction: a cluster joins its largest inviter whenever that
            inviter's (size, id) exceeds its own, and merge *chains* are
            collapsed by join-forwarding (one hop per round, overlapping
            subsequent phases).  Whole chains of clusters coalesce per
            phase, which is what produces the doubly-exponential drop in
            cluster count — the sub-logarithmic headline.
            ``"coin"`` — randomized star contraction (tails join head
            inviters).  Merges are guaranteed depth-1 (no forwarding), but
            only about half the clusters merge per phase, so the phase
            count is Θ(log n); kept as the chain-free ablation (T5).
        delegation: When ``True`` (default) the leader spreads invite work
            across the whole cluster, letting a size-s cluster contact up
            to s other clusters per phase — the mechanism behind
            cluster-size squaring.  When ``False`` the leader sends all
            invites itself (ablation: still correct, same message count,
            but loses nothing in this model where per-round sends are
            unbounded; measured in T5 to document that the model, not the
            implementation, is what delegation exploits).
        spread_limit: Maximum invite targets assigned to one member per
            phase (``None`` = unlimited).  ``spread_limit=1`` is the
            purest squaring regime: cluster degree per phase equals
            cluster size.
        resilient: Message-loss hardening — members re-report their full
            contact sets every phase and the leader keeps pool entries
            after assigning them, so a lost invite is retried until the
            clusters merge.  Costs extra pointers; required whenever the
            fault plan drops messages.
        watchdog_phases: If set, a member that has not heard an ``assign``
            heartbeat from its leader for this many consecutive phases
            reverts to a singleton cluster seeded with everything it
            knows.  This is the crash-failure recovery path; ``None``
            disables it.
        completion: ``"broadcast"`` — when a leader's frontier empties it
            broadcasts its roster so every member reaches full knowledge
            (strong discovery); ``"none"`` — skip the broadcast (weak
            discovery runs, experiment T4).
        stagnation_phases: If set, a leader whose pool is non-empty but has
            made no roster progress for this many consecutive phases
            broadcasts its roster anyway.  Needed under crash faults:
            identifiers of dead machines stay in the pool forever (they
            never answer invites), which would otherwise suppress the
            completion broadcast.  ``None`` disables (fault-free default).
    """

    contraction: str = "rank"
    delegation: bool = True
    spread_limit: Optional[int] = None
    resilient: bool = False
    watchdog_phases: Optional[int] = None
    completion: str = "broadcast"
    stagnation_phases: Optional[int] = None

    def __post_init__(self) -> None:
        if self.contraction not in CONTRACTIONS:
            raise ValueError(
                f"contraction must be one of {CONTRACTIONS}, got {self.contraction!r}"
            )
        if self.completion not in COMPLETIONS:
            raise ValueError(
                f"completion must be one of {COMPLETIONS}, got {self.completion!r}"
            )
        if self.spread_limit is not None and self.spread_limit < 1:
            raise ValueError(f"spread_limit must be >= 1, got {self.spread_limit}")
        if self.watchdog_phases is not None and self.watchdog_phases < 1:
            raise ValueError(
                f"watchdog_phases must be >= 1, got {self.watchdog_phases}"
            )
        if self.stagnation_phases is not None and self.stagnation_phases < 1:
            raise ValueError(
                f"stagnation_phases must be >= 1, got {self.stagnation_phases}"
            )
