"""SubLogDiscovery — the sub-logarithmic resource-discovery algorithm.

This module implements the core contribution of the reproduction: a
cluster-merging discovery algorithm whose round complexity is
O(log log n) on the low-diameter inputs where sub-logarithmic discovery is
possible (see the ball-containment bound in DESIGN.md section 1) and which
sends O(n) messages per phase, i.e. near-optimal message complexity.

Mechanism (one 6-round phase; see :mod:`repro.core.phases`):

1. **REPORT** — every member ships its newly learned external contacts to
   its leader.  Leaders absorb their own contacts directly.
2. **ASSIGN** — the leader dedupes the resulting candidate *pool* against
   its roster and delegates each candidate to one member ("you will invite
   this machine"), flipping the phase coin.  Delegation is what lets a
   size-s cluster touch up to s foreign clusters in a single phase — the
   engine of cluster-size *squaring*.  Leaders with an empty pool instead
   broadcast their roster (completion) and send empty heartbeat assigns.
3. **INVITE** — members send ``invite(leader, size, coin)`` to their
   targets.
4. **FORWARD** — an invited machine forwards the invite to its own leader
   (so decisions are made cluster-by-cluster, not machine-by-machine).
   Crucially the invited *cluster learns the inviter's leader*: even if no
   merge happens this phase, the knowledge edge between the two clusters
   is preserved in reverse, so connectivity of the cluster graph is never
   lost.
5. **DECIDE** — each leader applies the contraction rule.
   ``rank`` (default): a cluster joins its largest inviter whenever that
   inviter's (size, id) strictly exceeds its own (size, id).  The stale
   snapshot keys carried by invites make the join relation acyclic (sizes
   only grow, so a cycle would force a strictly increasing sequence of
   keys back to its start).  Merge *chains* — A joins B while B joins C —
   are collapsed by forwarding: a leader that receives a join while
   itself mid-join passes it upstream, one hop per round, overlapping
   the following phases; once welcomed, members shortcut forwarded joins
   straight to their current leader.  Entire chains of clusters coalesce
   per phase, which is what produces the doubly-exponential drop in
   cluster count.
   ``coin`` (ablation): randomized star contraction — a *tail*
   (coin = false) cluster invited by at least one *head* (coin = true)
   joins its largest head inviter.  Merges are guaranteed depth-1 (no
   forwarding), but only ~half the clusters merge per phase: Θ(log n)
   phases, measured in experiment T5.
   A joining leader sends its roster and residual pool to the winner.
6. **ABSORB** — the winning leader absorbs joiners and welcomes every new
   member (the welcome installs the new leader pointer).

**Dynamics.**  When the cluster graph is dense (every cluster of size s has
contacts in ~s other clusters — what delegation creates on expander-like
inputs), rank contraction coalesces whole chains: the cluster count drops
from c to roughly c/s per phase, i.e. the minimum cluster size grows like
s → Θ(s²): O(log log n) phases (measured: 2–4 phases for n up to 4096 on
random k-out inputs, experiment F2).  On high-diameter inputs (a path:
every cluster borders only 2 others) growth degrades to a constant factor
per phase — O(log n) phases, which is optimal there anyway by the
ball-containment bound.

**Self-healing.**  Every handler tolerates stale state: a machine that
receives a report/forward/join while no longer a leader forwards it up its
leader pointer and issues a corrective welcome; leaders re-decide joins
each phase; with ``resilient=True`` pool entries survive until the merge
is confirmed, making the protocol robust to message loss.  With
``watchdog_phases`` set, members that lose their leader (crash faults)
revert to singleton clusters and re-discover.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..algorithms.base import DiscoveryNode
from ..sim.messages import Message
from .config import SubLogConfig
from .phases import (
    STEP_ASSIGN,
    STEP_DECIDE,
    STEP_FORWARD,
    STEP_INVITE,
    STEP_REPORT,
    phase_of,
    step_of,
)

#: (leader id, cluster size, coin) describing one received invitation.
Invite = Tuple[int, int, bool]


class SubLogNode(DiscoveryNode):
    """One machine running SubLogDiscovery.

    Args:
        node_id: This machine's identifier.
        config: Algorithm parameters; defaults reproduce the headline
            variant (deterministic rank contraction with join-forwarding,
            full delegation).
    """

    def __init__(self, node_id: int, config: Optional[SubLogConfig] = None) -> None:
        super().__init__(node_id)
        self.config = config or SubLogConfig()
        # Cluster membership.
        self.leader = node_id
        self.roster: Set[int] = {node_id}
        self.pool: Set[int] = set()
        # Per-phase working state.
        self.coin = False
        self.invites: Dict[int, Tuple[int, bool]] = {}
        self.joining_to: Optional[int] = None
        self._assigned: List[int] = []
        self._assign_meta: Tuple[int, int, bool] = (node_id, 1, False)
        self._pending_invites: List[Invite] = []
        # Contact bookkeeping.
        self._unreported: Set[int] = set()
        self._contacts: Set[int] = set()
        # Completion / liveness bookkeeping.
        self._last_broadcast = 1
        self._watchdog_misses = 0
        self._saw_assign = False
        self._round = 0
        self._roster_at_last_assign = 1
        self._stagnant_phases = 0

    # -- identity helpers -----------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.leader == self.node_id

    @property
    def cluster_size(self) -> int:
        """Roster size (meaningful for leaders; 1 for plain members)."""
        return len(self.roster)

    # -- lifecycle --------------------------------------------------------------------

    def setup(self) -> None:
        contacts = set(self.known - {self.node_id})
        self._unreported = set(contacts)
        self._contacts = set(contacts)

    def absorb(self, message: Message) -> None:
        """Learn from a message; track invite-learned ids as reportable.

        Only ``invite`` messages teach a member ids its leader might not
        have (the inviter and its leader); everything else flows through
        leader-aware paths, so tracking it would only duplicate pointers.
        """
        if message.kind == "invite":
            for learned in (message.sender, *message.ids):
                if learned not in self.known and learned != self.node_id:
                    self._unreported.add(learned)
                    self._contacts.add(learned)
        super().absorb(message)

    # -- round dispatch ------------------------------------------------------------------

    def on_round(
        self, round_no: int, inbox: Sequence[Message], rng: random.Random
    ) -> None:
        self._round = round_no
        for message in inbox:
            self._handle(message)
        step = step_of(round_no)
        if step == STEP_REPORT:
            self._step_report()
        elif step == STEP_ASSIGN:
            self._step_assign()
        elif step == STEP_INVITE:
            self._step_invite()
        elif step == STEP_FORWARD:
            self._step_forward()
        elif step == STEP_DECIDE:
            self._step_decide()
        # STEP_ABSORB needs no proactive action: joins are handled by the
        # generic message handler as they arrive.

    # -- message handlers -------------------------------------------------------------------

    def _handle(self, message: Message) -> None:
        kind = message.kind
        if kind == "report":
            self._handle_report(message)
        elif kind == "assign":
            self._handle_assign(message)
        elif kind == "invite":
            self._handle_invite(message)
        elif kind == "fwd":
            self._handle_fwd(message)
        elif kind == "join":
            self._handle_join(message)
        elif kind == "welcome":
            self._handle_welcome(message)
        # "roster" needs no handler: absorbing its ids is the whole point.

    def _handle_report(self, message: Message) -> None:
        if self.is_leader:
            self.pool.update(set(message.ids) - self.roster)
            return
        # Stale member: relay upward and correct the sender's pointer.
        if message.ids:
            self.send(self.leader, "report", ids=message.ids)
        self.send(message.sender, "welcome", ids=(self.leader,))

    def _handle_assign(self, message: Message) -> None:
        # An assign is authoritative: the sender's roster includes us.
        # (Heals members whose welcome was lost.)
        self._become_member_of(message.sender)
        size, coin = message.data
        self._assigned.extend(message.ids)
        self._assign_meta = (message.sender, size, coin)
        self._saw_assign = True

    def _handle_invite(self, message: Message) -> None:
        inviter_leader = next(iter(message.ids))
        if inviter_leader in (self.node_id, self.leader):
            return  # intra-cluster invite from a stale pool entry
        size, coin = message.data
        self._pending_invites.append((inviter_leader, size, coin))

    def _handle_fwd(self, message: Message) -> None:
        entries = list(zip(message.ids, message.data))
        if self.is_leader:
            for inviter_leader, (size, coin) in entries:
                self._absorb_invite(inviter_leader, size, coin)
            return
        self.send(self.leader, "fwd", ids=message.ids, data=message.data)
        self.send(message.sender, "welcome", ids=(self.leader,))

    def _handle_join(self, message: Message) -> None:
        if not self.is_leader:
            self.send(self.leader, "join", ids=message.ids, data=message.data)
            return
        if self.joining_to is not None:
            # We are mid-join ourselves ("rank" chains): pass it upstream;
            # the eventual absorber welcomes the whole forwarded roster.
            self.send(self.joining_to, "join", ids=message.ids, data=message.data)
            return
        roster_size = message.data[0]
        ids = tuple(message.ids)
        joiner_roster = ids[:roster_size]
        joiner_pool = ids[roster_size:]
        new_members = set(joiner_roster) - self.roster
        self.roster.update(new_members)
        self.pool.update(joiner_pool)
        self.pool -= self.roster
        for member in sorted(new_members):
            self.send(member, "welcome", ids=(self.node_id,))

    def _handle_welcome(self, message: Message) -> None:
        new_leader = next(iter(message.ids))
        if new_leader == self.node_id:
            return
        if (
            self.is_leader
            and self.joining_to is None
            and (len(self.roster) > 1 or self.pool)
        ):
            # Unsolicited absorption (healing path): hand over our cluster.
            self._send_join(new_leader)
        self._become_member_of(new_leader)

    # -- phase steps --------------------------------------------------------------------------

    def _step_report(self) -> None:
        if self.is_leader:
            self.pool.update(self._unreported - self.roster)
            self._unreported.clear()
            return
        source = self._contacts if self.config.resilient else self._unreported
        payload = tuple(sorted(source - {self.node_id, self.leader}))
        self.send(self.leader, "report", ids=payload)
        self._unreported.clear()

    def _step_assign(self) -> None:
        if not self.is_leader:
            return
        self.pool -= self.roster
        others = sorted(self.roster - {self.node_id})
        size = len(self.roster)

        # Flip the phase coin regardless of pool state: a cluster with an
        # empty pool can still be invited, and must know whether it is a
        # head or a tail when it decides.
        if self.config.contraction == "coin":
            self.coin = self.rng.random() < 0.5
        else:
            self.coin = False

        if len(self.roster) > self._roster_at_last_assign:
            self._stagnant_phases = 0
        else:
            self._stagnant_phases += 1
        self._roster_at_last_assign = len(self.roster)

        if not self.pool:
            self._maybe_broadcast_roster()
            for member in others:  # empty heartbeat keeps watchdogs quiet
                self.send(member, "assign", ids=(), data=(size, self.coin))
            self._assigned = []
            return

        # Crash-fault escape hatch: dead machines' ids never leave the
        # pool (they answer no invites), which would suppress the
        # completion broadcast forever.  After enough progress-free phases
        # with a non-empty pool, broadcast anyway.
        stagnation = self.config.stagnation_phases
        if stagnation is not None and self._stagnant_phases >= stagnation:
            self._maybe_broadcast_roster()

        workers = sorted(self.roster) if self.config.delegation else [self.node_id]
        targets = sorted(self.pool)
        self.rng.shuffle(targets)
        if self.config.spread_limit is not None:
            targets = targets[: self.config.spread_limit * len(workers)]
        # Pool entries are intentionally NOT consumed: a candidate is
        # re-invited every phase until its cluster merges with ours (the
        # roster dedupe above retires it).  Keeping both directions of
        # every cluster edge live each phase is what makes the endgame
        # geometric — with consumption, a failed coin flip puts the edge
        # to sleep and stragglers linger for Θ(1/p) extra phases.

        assignment: Dict[int, List[int]] = {worker: [] for worker in workers}
        for index, target in enumerate(targets):
            assignment[workers[index % len(workers)]].append(target)

        for member in others:
            self.send(
                member,
                "assign",
                ids=tuple(assignment.get(member, ())),
                data=(size, self.coin),
            )
        self._assigned = assignment.get(self.node_id, [])
        self._assign_meta = (self.node_id, size, self.coin)

    def _step_invite(self) -> None:
        self._run_watchdog()
        if not self._assigned:
            return
        cluster_leader, size, coin = self._assign_meta
        for target in self._assigned:
            if target in (self.node_id, cluster_leader):
                continue
            self.send(target, "invite", ids=(cluster_leader,), data=(size, coin))
        self._assigned = []

    def _step_forward(self) -> None:
        if not self._pending_invites:
            return
        if self.is_leader:
            for inviter_leader, size, coin in self._pending_invites:
                self._absorb_invite(inviter_leader, size, coin)
        else:
            ids = tuple(entry[0] for entry in self._pending_invites)
            data = tuple((entry[1], entry[2]) for entry in self._pending_invites)
            self.send(self.leader, "fwd", ids=ids, data=data)
        self._pending_invites = []

    def _step_decide(self) -> None:
        if not self.is_leader:
            self.invites = {}
            return
        self.joining_to = None  # a join from a previous phase was lost; retry
        invites = {
            inviter: info
            for inviter, info in self.invites.items()
            if inviter not in self.roster
        }
        self.invites = {}
        if not invites:
            return

        winner: Optional[int] = None
        if self.config.contraction == "coin":
            if not self.coin:  # we are a tail; join the best head
                heads = {
                    inviter: info for inviter, info in invites.items() if info[1]
                }
                if heads:
                    winner = max(heads, key=lambda lid: (heads[lid][0], lid))
        else:  # "rank": strictly smaller (size, id) joins strictly larger
            best = max(invites, key=lambda lid: (invites[lid][0], lid))
            if (invites[best][0], best) > (len(self.roster), self.node_id):
                winner = best

        if winner is not None:
            self._send_join(winner)
            self.joining_to = winner

    # -- internals ------------------------------------------------------------------------------

    def _absorb_invite(self, inviter_leader: int, size: int, coin: bool) -> None:
        if inviter_leader in self.roster or inviter_leader == self.node_id:
            return
        existing = self.invites.get(inviter_leader)
        if existing is None or size > existing[0]:
            self.invites[inviter_leader] = (size, coin)
        self.pool.add(inviter_leader)

    def _send_join(self, target: int) -> None:
        roster_ids = tuple(sorted(self.roster))
        pool_ids = tuple(sorted(self.pool - self.roster - {target}))
        self.send(target, "join", ids=roster_ids + pool_ids, data=(len(roster_ids),))

    def _become_member_of(self, new_leader: int) -> None:
        if new_leader == self.node_id or new_leader == self.leader:
            self.leader = new_leader
            return
        if self.pool:
            # Residual pool knowledge (normally already transferred via a
            # join) is folded back into the reportable contacts so nothing
            # the cluster learned can be lost on a leadership change.
            leftovers = self.pool - {self.node_id, new_leader}
            self._unreported.update(leftovers)
            self._contacts.update(leftovers)
        self.leader = new_leader
        self.roster = {self.node_id}
        self.pool = set()
        self.invites = {}
        self.joining_to = None
        self._assigned = []
        self._last_broadcast = 1
        self._roster_at_last_assign = 1
        self._stagnant_phases = 0

    def _maybe_broadcast_roster(self) -> None:
        if self.config.completion != "broadcast":
            return
        # In resilient mode a broadcast may have been lost in transit, so
        # repeat it every eligible phase (the engine stops the run as soon
        # as the goal holds, bounding the repeats).  Otherwise broadcast
        # only when the roster grew since the last one.
        if not self.config.resilient and len(self.roster) <= self._last_broadcast:
            return
        if len(self.roster) <= 1:
            return
        roster_snapshot = frozenset(self.roster)
        for member in sorted(self.roster - {self.node_id}):
            self.send(member, "roster", ids=roster_snapshot - {member})
        self._last_broadcast = len(self.roster)

    def _run_watchdog(self) -> None:
        limit = self.config.watchdog_phases
        if limit is None or self.is_leader:
            self._saw_assign = False
            return
        if self._saw_assign:
            self._watchdog_misses = 0
        else:
            self._watchdog_misses += 1
            if self._watchdog_misses >= limit:
                self._revert_to_singleton()
        self._saw_assign = False

    def _revert_to_singleton(self) -> None:
        """Crash recovery: lead ourselves again, seeded with all we know."""
        self.leader = self.node_id
        self.roster = {self.node_id}
        self.pool = set(self.known - {self.node_id})
        self.invites = {}
        self.joining_to = None
        self._assigned = []
        self._watchdog_misses = 0
        self._last_broadcast = 0
        self._roster_at_last_assign = 0
        self._stagnant_phases = 0

    # -- introspection (observers, tests) --------------------------------------

    def cluster_view(self) -> Dict[str, object]:
        """Snapshot of the cluster state for observers and debugging."""
        return {
            "leader": self.leader,
            "is_leader": self.is_leader,
            "roster_size": len(self.roster) if self.is_leader else None,
            "pool_size": len(self.pool) if self.is_leader else None,
            "phase": phase_of(self._round) if self._round else 0,
        }
