"""Phase/step arithmetic for the sub-logarithmic algorithm.

A *phase* is :data:`ROUNDS_PER_PHASE` consecutive rounds executing the
fixed step schedule of DESIGN.md section 2.  Rounds are 1-based (the
engine's convention); phases are 1-based too.
"""

from __future__ import annotations

#: Step indices within a phase (round order).
STEP_REPORT = 0  #: members ship contact sets to their leader
STEP_ASSIGN = 1  #: leader dedupes the pool and delegates invite targets
STEP_INVITE = 2  #: members invite their assigned targets
STEP_FORWARD = 3  #: invite recipients forward to their own leader
STEP_DECIDE = 4  #: leaders run the contraction rule; tails send joins
STEP_ABSORB = 5  #: heads absorb joiners and send welcomes

ROUNDS_PER_PHASE = 6

STEP_NAMES = ("report", "assign", "invite", "forward", "decide", "absorb")


def step_of(round_no: int) -> int:
    """The step index executed in 1-based round *round_no*."""
    if round_no < 1:
        raise ValueError(f"rounds are 1-based, got {round_no}")
    return (round_no - 1) % ROUNDS_PER_PHASE


def phase_of(round_no: int) -> int:
    """The 1-based phase containing 1-based round *round_no*."""
    if round_no < 1:
        raise ValueError(f"rounds are 1-based, got {round_no}")
    return (round_no - 1) // ROUNDS_PER_PHASE + 1


def rounds_for_phases(phases: int) -> int:
    """Rounds spanned by the first *phases* complete phases."""
    if phases < 0:
        raise ValueError(f"phases must be >= 0, got {phases}")
    return phases * ROUNDS_PER_PHASE
