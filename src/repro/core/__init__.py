"""The core contribution: sub-logarithmic resource discovery."""

from .config import COMPLETIONS, CONTRACTIONS, SubLogConfig
from .observers import ClusterSizeObserver, cluster_sizes
from .phases import (
    ROUNDS_PER_PHASE,
    STEP_ABSORB,
    STEP_ASSIGN,
    STEP_DECIDE,
    STEP_FORWARD,
    STEP_INVITE,
    STEP_NAMES,
    STEP_REPORT,
    phase_of,
    rounds_for_phases,
    step_of,
)
from .sublog import SubLogNode

__all__ = [
    "COMPLETIONS",
    "CONTRACTIONS",
    "ROUNDS_PER_PHASE",
    "STEP_ABSORB",
    "STEP_ASSIGN",
    "STEP_DECIDE",
    "STEP_FORWARD",
    "STEP_INVITE",
    "STEP_NAMES",
    "STEP_REPORT",
    "ClusterSizeObserver",
    "SubLogConfig",
    "SubLogNode",
    "cluster_sizes",
    "phase_of",
    "rounds_for_phases",
    "step_of",
]
