"""Replayable run scripts: the ``(config, seed, schedule)`` triple.

Every oracle failure must be reproducible from one serializable value.
:class:`ScheduleScript` is that value: it names the algorithm and input
graph (config), the master seed (seed), and the complete adversarial
environment — delivery model, loss rate, crash rounds, join rounds
(schedule).  The script builds its own engine deterministically, so a
violation report can embed the script as JSON and anyone can replay it
with :func:`ScheduleScript.from_dict` plus
:func:`repro.oracle.fuzzer.run_script` (or ``repro fuzz --replay``).

Scripts are frozen dataclasses; the fuzzer's shrinker derives candidate
simplifications with :func:`dataclasses.replace`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional

from ..algorithms.registry import get_algorithm
from ..graphs.generators import make_topology
from ..graphs.knowledge import KnowledgeGraph
from ..sim.churn import JoinPlan
from ..sim.engine import SynchronousEngine
from ..sim.faults import FaultPlan
from ..sim.observers import Observer

#: Schema version stamped into serialized scripts; bump on incompatible
#: field changes.
SCRIPT_SCHEMA = 1


@dataclass(frozen=True)
class ScheduleScript:
    """One fully-determined run of one algorithm under one schedule.

    Attributes:
        algorithm: Registry name (see :func:`repro.algorithm_names`).
        topology: Topology family name (see ``repro.TOPOLOGIES``).
        n: Number of machines.
        seed: Master seed — graph construction, protocol randomness, and
            loss coins all derive from it (plus ``fault_seed``).
        goal: Goal predicate name (``strong``/``weak``/``strong_alive``).
        delivery: Delivery-model spec string (``None`` = lockstep).
        loss_rate: Independent per-message drop probability.
        fault_seed: Sub-seed of the loss coin stream.
        crash_rounds: ``{node: round}`` fail-stop crash schedule.
        join_rounds: ``{node: round}`` late-join schedule.
        params: Algorithm parameters.
        topology_params: Extra keyword arguments of the topology builder.
        max_rounds: Round cap; ``None`` uses the algorithm's registered
            cap for ``n``.
    """

    algorithm: str
    topology: str
    n: int
    seed: int
    goal: str = "strong"
    delivery: Optional[str] = None
    loss_rate: float = 0.0
    fault_seed: int = 0
    crash_rounds: Mapping[int, int] = field(default_factory=dict)
    join_rounds: Mapping[int, int] = field(default_factory=dict)
    params: Mapping[str, Any] = field(default_factory=dict)
    topology_params: Mapping[str, Any] = field(default_factory=dict)
    max_rounds: Optional[int] = None

    # -- schedule components ------------------------------------------------------

    @property
    def has_schedule(self) -> bool:
        """True when any adversarial ingredient is active."""
        return bool(
            self.delivery
            or self.loss_rate
            or self.crash_rounds
            or self.join_rounds
        )

    def fault_plan(self) -> Optional[FaultPlan]:
        if not self.loss_rate and not self.crash_rounds:
            return None
        return FaultPlan(
            loss_rate=self.loss_rate,
            crash_rounds=dict(self.crash_rounds),
            seed=self.fault_seed,
        )

    def join_plan(self) -> Optional[JoinPlan]:
        if not self.join_rounds:
            return None
        return JoinPlan(join_rounds=dict(self.join_rounds))

    def resolved_max_rounds(self) -> int:
        if self.max_rounds is not None:
            return self.max_rounds
        return get_algorithm(self.algorithm).round_cap(self.n)

    # -- construction -------------------------------------------------------------

    def build_graph(self) -> KnowledgeGraph:
        return make_topology(
            self.topology, self.n, seed=self.seed, **dict(self.topology_params)
        )

    def build_engine(
        self,
        *,
        fast_path: bool = True,
        backend: Optional[str] = None,
        enforce_legality: bool = True,
        observers: Iterable[Observer] = (),
        delivery: Optional[str] = None,
    ) -> SynchronousEngine:
        """Deterministically construct the engine this script describes.

        ``delivery`` overrides the script's own spec when given (the
        differential runner uses this to pit a model against its lockstep
        reduction on an otherwise identical run).  ``backend`` selects
        the engine backend explicitly (``"legacy"``/``"fast"``/
        ``"vector"``); when ``None`` the ``fast_path`` flag decides, as
        in the engine constructor.
        """
        spec = get_algorithm(self.algorithm)
        return SynchronousEngine(
            self.build_graph(),
            spec.node_factory(**dict(self.params)),
            seed=self.seed,
            goal=self.goal,
            fault_plan=self.fault_plan(),
            join_plan=self.join_plan(),
            delivery=delivery if delivery is not None else self.delivery,
            observers=observers,
            enforce_legality=enforce_legality,
            fast_path=fast_path,
            backend=backend,
            algorithm_name=self.algorithm,
            params=self.params,
        )

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        payload = asdict(self)
        payload["schema"] = SCRIPT_SCHEMA
        payload["crash_rounds"] = {
            str(node): round_no for node, round_no in self.crash_rounds.items()
        }
        payload["join_rounds"] = {
            str(node): round_no for node, round_no in self.join_rounds.items()
        }
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScheduleScript":
        schema = payload.get("schema", SCRIPT_SCHEMA)
        if schema != SCRIPT_SCHEMA:
            raise ValueError(
                f"unsupported script schema {schema!r} (expected {SCRIPT_SCHEMA})"
            )
        return cls(
            algorithm=payload["algorithm"],
            topology=payload["topology"],
            n=int(payload["n"]),
            seed=int(payload["seed"]),
            goal=payload.get("goal", "strong"),
            delivery=payload.get("delivery"),
            loss_rate=float(payload.get("loss_rate", 0.0)),
            fault_seed=int(payload.get("fault_seed", 0)),
            crash_rounds={
                int(node): int(round_no)
                for node, round_no in (payload.get("crash_rounds") or {}).items()
            },
            join_rounds={
                int(node): int(round_no)
                for node, round_no in (payload.get("join_rounds") or {}).items()
            },
            params=dict(payload.get("params") or {}),
            topology_params=dict(payload.get("topology_params") or {}),
            max_rounds=payload.get("max_rounds"),
        )

    def describe(self) -> str:
        """One-line human summary for progress output and reports."""
        parts = [
            f"{self.algorithm}/{self.topology}",
            f"n={self.n}",
            f"seed={self.seed}",
            f"goal={self.goal}",
            f"delivery={self.delivery or 'lockstep'}",
        ]
        if self.loss_rate:
            parts.append(f"loss={self.loss_rate}")
        if self.crash_rounds:
            parts.append(f"crashes={len(self.crash_rounds)}")
        if self.join_rounds:
            parts.append(f"joins={len(self.join_rounds)}")
        return " ".join(parts)
