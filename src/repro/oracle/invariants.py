"""The online invariant oracle.

:class:`InvariantOracle` is an observer that re-derives, every round,
what the engine's state *must* look like if the simulation is sound, and
raises a structured :class:`OracleViolation` the moment reality differs.
The checked catalog (see docs/MODEL.md section 6):

``monotonicity``
    Ground-truth knowledge sets never shrink.
``derivability``
    A node's new knowledge this round is a subset of what its delivered
    messages could teach — carried ids plus the sender, intersected with
    the real id universe.  Checked as a subset (not equality) because
    with legality enforcement off the two engine paths intentionally
    differ on smuggled ids (see the engine module docstring).
``completeness``
    With legality enforcement *on*, delivery is lossless learning: every
    real id a delivered message carried (and its sender) is known to the
    recipient afterwards.
``conservation``
    ``total_messages == delivered + in_flight + Σ dropped_by_reason`` —
    every charged send is delivered, still in flight, or attributed to
    exactly one drop reason.
``delay-accounting``
    The delivery-delay histogram counts exactly the sends that were
    actually submitted (sent minus send-time drops), and every logged
    delay is consistent with a send round inside ``[1, current_round]``.
``silence``
    Every delivered-or-dropped message was sent by a node that was alive
    and joined at its send round: crashed and dormant machines stay
    silent.
``round-accounting``
    Per-round stats sum to the run totals, and the per-kind counters sum
    to the aggregate message/pointer counts.
``closure``
    At the end of the run, the engine's ``completed`` verdict equals the
    goal predicate recomputed from scratch over the ground-truth
    knowledge via the pure closure functions of
    :mod:`repro.analysis.invariants`.

Violations carry the round, the node (when one is implicated), and the
replayable :class:`~repro.oracle.script.ScheduleScript` when the run was
built from one, so every failure is a one-line reproduction recipe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, FrozenSet, List, Optional, Set

from ..analysis.invariants import (
    InvariantViolation,
    closure_deficit,
    weak_closure_witnesses,
)
from ..sim.metrics import DROP_CRASH, DROP_DORMANT, DROP_FAULT, DROP_PARTITION
from ..sim.observers import Observer

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import SynchronousEngine
    from .script import ScheduleScript

#: Drop reasons the engine/transport stack is allowed to emit.
KNOWN_DROP_REASONS = frozenset(
    (DROP_FAULT, DROP_CRASH, DROP_DORMANT, DROP_PARTITION)
)


class OracleViolation(InvariantViolation):
    """A structured per-round invariant failure.

    Attributes:
        invariant: Name of the violated invariant (catalog above).
        round_no: Round at which the violation was observed (``None`` for
            end-of-run checks before any round ran).
        node: Implicated machine id, when one exists.
        detail: Human-readable description of the mismatch.
        script: The replayable script of the failing run, when known.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        round_no: Optional[int] = None,
        node: Optional[int] = None,
        script: Optional["ScheduleScript"] = None,
    ) -> None:
        self.invariant = invariant
        self.detail = detail
        self.round_no = round_no
        self.node = node
        self.script = script
        where = f"round {round_no}" if round_no is not None else "end of run"
        if node is not None:
            where += f", node {node}"
        message = f"[{invariant}] {where}: {detail}"
        if script is not None:
            message += f" | replay: {script.to_json()}"
        super().__init__(message)


class InvariantOracle(Observer):
    """Validates the invariant catalog online, round by round.

    Attach via ``observers=[oracle]`` (or let
    :func:`repro.oracle.fuzzer.run_script` do it).  With ``strict=True``
    (the default) the first violation raises out of the run; otherwise
    violations accumulate in :attr:`violations` and surface through
    ``RunResult.extra["oracle"]``.
    """

    wants_deliveries = True

    def __init__(
        self,
        script: Optional["ScheduleScript"] = None,
        strict: bool = True,
    ) -> None:
        self.script = script
        self.strict = strict
        self.violations: List[OracleViolation] = []
        self.rounds_checked = 0

    # -- lifecycle ----------------------------------------------------------------

    def on_setup(self, engine: "SynchronousEngine") -> None:
        self._universe: FrozenSet[int] = frozenset(engine.node_ids)
        self._prev: Dict[int, Set[int]] = {
            node: set(known) for node, known in engine.knowledge.items()
        }
        self._delivered_cum = 0
        self._send_drops_cum = 0
        self._messages_cum = 0
        self._pointers_cum = 0
        self._dropped_cum = 0

    def _fail(
        self,
        invariant: str,
        detail: str,
        *,
        round_no: Optional[int] = None,
        node: Optional[int] = None,
    ) -> None:
        violation = OracleViolation(
            invariant, detail, round_no=round_no, node=node, script=self.script
        )
        self.violations.append(violation)
        if self.strict:
            raise violation

    def on_round_end(self, engine: "SynchronousEngine", round_no: int) -> None:
        log = engine._delivery_log
        if log is None:  # pragma: no cover - defensive
            self._fail(
                "delivery-log",
                "engine did not materialize a delivery log for the oracle",
                round_no=round_no,
            )
            return
        allowed = self._check_deliveries(engine, round_no, log)
        self._check_knowledge(engine, round_no, allowed)
        self._check_conservation(engine, round_no)
        self._check_round_accounting(engine, round_no)
        self.rounds_checked += 1

    def on_finish(self, engine: "SynchronousEngine", completed: bool) -> None:
        self._check_closure(engine, completed)

    def extra(self) -> Dict[str, Any]:
        return {
            "oracle": {
                "rounds_checked": self.rounds_checked,
                "violations": [str(violation) for violation in self.violations],
            }
        }

    # -- per-round checks ---------------------------------------------------------

    def _check_deliveries(
        self, engine: "SynchronousEngine", round_no: int, log: list
    ) -> Dict[int, Set[int]]:
        """Validate the round's delivery log; return what each recipient
        was legitimately taught (``{recipient: ids ∪ {sender}}``)."""
        crashed = engine._faults.crashed_map
        join_rounds = engine._joins.join_rounds
        deliver_round = round_no + 1
        allowed: Dict[int, Set[int]] = {}
        delivered = 0
        send_drops = 0
        for message, delay, reason in log:
            if reason is not None and reason not in KNOWN_DROP_REASONS:
                self._fail(
                    "delay-accounting",
                    f"unknown drop reason {reason!r}",
                    round_no=round_no,
                )
            if delay == 0:
                # Send-time drop, charged in the sending round itself.
                send_round = round_no
                send_drops += 1
                if reason is None:
                    self._fail(
                        "delay-accounting",
                        "delivery log entry with delay 0 but no drop reason",
                        round_no=round_no,
                    )
            else:
                # Due (delivered or lost in flight) at round_no + 1.
                send_round = deliver_round - delay
                if not 1 <= send_round <= round_no:
                    self._fail(
                        "delay-accounting",
                        f"delay {delay} implies impossible send round "
                        f"{send_round}",
                        round_no=round_no,
                        node=message.sender,
                    )
            crash_round = crashed.get(message.sender)
            if crash_round is not None and send_round >= crash_round:
                self._fail(
                    "silence",
                    f"message sent in round {send_round} by node crashed "
                    f"at round {crash_round}",
                    round_no=round_no,
                    node=message.sender,
                )
            join_round = join_rounds.get(message.sender)
            if join_round is not None and send_round < join_round:
                self._fail(
                    "silence",
                    f"message sent in round {send_round} by node dormant "
                    f"until round {join_round}",
                    round_no=round_no,
                    node=message.sender,
                )
            if reason is None and delay > 0:
                delivered += 1
                taught = allowed.get(message.recipient)
                if taught is None:
                    taught = allowed[message.recipient] = set()
                taught.update(message.ids)
                taught.add(message.sender)
        self._delivered_cum += delivered
        self._send_drops_cum += send_drops
        return allowed

    def _check_knowledge(
        self,
        engine: "SynchronousEngine",
        round_no: int,
        allowed: Dict[int, Set[int]],
    ) -> None:
        knowledge = engine.knowledge
        universe = self._universe
        enforce = engine.enforce_legality
        previous = self._prev
        for node in engine.node_ids:
            now = knowledge[node]
            prev = previous[node]
            if not prev <= now:
                lost = sorted(prev - now)[:5]
                self._fail(
                    "monotonicity",
                    f"knowledge shrank (lost {lost})",
                    round_no=round_no,
                    node=node,
                )
            new = now - prev
            if new:
                taught = allowed.get(node, ())
                underived = new - (set(taught) & universe)
                if underived:
                    self._fail(
                        "derivability",
                        f"learned {sorted(underived)[:5]} not derivable "
                        "from this round's deliveries",
                        round_no=round_no,
                        node=node,
                    )
            if enforce:
                taught = allowed.get(node)
                if taught:
                    missing = (taught & universe) - now
                    if missing:
                        self._fail(
                            "completeness",
                            f"delivered ids {sorted(missing)[:5]} were "
                            "not learned",
                            round_no=round_no,
                            node=node,
                        )
            previous[node] = set(now)

    def _check_conservation(
        self, engine: "SynchronousEngine", round_no: int
    ) -> None:
        metrics = engine.metrics
        in_flight = engine.delivery.in_flight()
        dropped = metrics.total_dropped
        sent = metrics.total_messages
        if sent != self._delivered_cum + in_flight + dropped:
            self._fail(
                "conservation",
                f"sent {sent} != delivered {self._delivered_cum} + "
                f"in-flight {in_flight} + dropped {dropped}",
                round_no=round_no,
            )
        scheduled = sum(metrics.delivery_delays.values())
        submitted = sent - self._send_drops_cum
        if scheduled != submitted:
            self._fail(
                "delay-accounting",
                f"delay histogram holds {scheduled} messages but "
                f"{submitted} were submitted",
                round_no=round_no,
            )

    def _check_round_accounting(
        self, engine: "SynchronousEngine", round_no: int
    ) -> None:
        metrics = engine.metrics
        stats = metrics.round_stats[-1]
        if stats.round_no != round_no:
            self._fail(
                "round-accounting",
                f"latest round stats are for round {stats.round_no}",
                round_no=round_no,
            )
        self._messages_cum += stats.messages
        self._pointers_cum += stats.pointers
        self._dropped_cum += stats.dropped_messages
        mismatches = []
        if self._messages_cum != metrics.total_messages:
            mismatches.append(
                f"messages {self._messages_cum} != {metrics.total_messages}"
            )
        if self._pointers_cum != metrics.total_pointers:
            mismatches.append(
                f"pointers {self._pointers_cum} != {metrics.total_pointers}"
            )
        if self._dropped_cum != metrics.total_dropped:
            mismatches.append(
                f"drops {self._dropped_cum} != {metrics.total_dropped}"
            )
        if sum(metrics.messages_by_kind.values()) != metrics.total_messages:
            mismatches.append("per-kind message counts do not sum to total")
        if sum(metrics.pointers_by_kind.values()) != metrics.total_pointers:
            mismatches.append("per-kind pointer counts do not sum to total")
        if mismatches:
            self._fail(
                "round-accounting",
                "; ".join(mismatches),
                round_no=round_no,
            )

    # -- end-of-run checks --------------------------------------------------------

    def _check_closure(
        self, engine: "SynchronousEngine", completed: bool
    ) -> None:
        goal = engine.goal
        if not isinstance(goal, str):
            return  # custom predicates have no recomputable ground truth
        knowledge = engine.knowledge
        if goal == "strong":
            holds = not closure_deficit(knowledge)
        elif goal == "weak":
            holds = bool(weak_closure_witnesses(knowledge))
        elif goal == "strong_alive":
            alive = engine.alive_nodes
            holds = not closure_deficit(knowledge, universe=alive, holders=alive)
        else:  # pragma: no cover - engine rejects unknown goals earlier
            return
        if completed != holds:
            self._fail(
                "closure",
                f"engine reported completed={completed} but goal "
                f"{goal!r} recomputed from ground truth is {holds}",
                round_no=engine.round_no,
            )
