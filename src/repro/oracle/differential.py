"""Differential execution: run one cell twice, diff every round.

The engine ships two execution paths (dense fast path vs legacy per-id
loops) and five delivery models, several of which degenerate to lockstep
at zero parameters.  Equivalence claims like these rot silently; the
differential runner makes them mechanical.  It steps two engines built
from the same :class:`~repro.oracle.script.ScheduleScript` in lockstep,
captures a :class:`RoundDigest` of each after every round — knowledge
state via :meth:`~repro.sim.engine.SynchronousEngine.knowledge_digest`
plus the complete metrics ledger — and reports the first divergent round
and field.

Three standard pairings:

* :func:`diff_fast_vs_legacy` — the dense fast path against the
  reference path on the script's own schedule;
* :func:`diff_vector_vs_fast` — the bit-packed numpy vector backend
  against the fast path on the script's own schedule (the safety net
  that gates ``vector`` becoming the bench default at large n);
* :func:`diff_reduction` — the script's delivery-model family at its
  degenerate parameterization (``jitter:0``, ``adversarial:0``,
  ``perlink:0``, an out-of-horizon partition window) against plain
  ``lockstep``, which must be behaviorally identical.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Optional, Tuple

from ..sim.engine import SynchronousEngine
from .script import ScheduleScript


@dataclass(frozen=True)
class RoundDigest:
    """Everything two equivalent engines must agree on after a round."""

    round_no: int
    knowledge: str
    alive: int
    goal: bool
    messages: int
    pointers: int
    messages_by_kind: Tuple[Tuple[str, int], ...]
    pointers_by_kind: Tuple[Tuple[str, int], ...]
    dropped_by_reason: Tuple[Tuple[str, int], ...]
    delivery_delays: Tuple[Tuple[int, int], ...]
    in_flight: int


def engine_digest(engine: SynchronousEngine) -> RoundDigest:
    """Capture the comparable state of an engine right now."""
    metrics = engine.metrics
    return RoundDigest(
        round_no=engine.round_no,
        knowledge=engine.knowledge_digest(),
        alive=len(engine.alive_nodes),
        goal=engine.goal_reached(),
        messages=metrics.total_messages,
        pointers=metrics.total_pointers,
        messages_by_kind=tuple(sorted(metrics.messages_by_kind.items())),
        pointers_by_kind=tuple(sorted(metrics.pointers_by_kind.items())),
        dropped_by_reason=tuple(sorted(metrics.dropped_by_reason.items())),
        delivery_delays=tuple(sorted(metrics.delivery_delays.items())),
        in_flight=engine.delivery.in_flight(),
    )


@dataclass(frozen=True)
class Divergence:
    """The first field on which the paired digests disagree."""

    round_no: int
    field: str
    value_a: Any
    value_b: Any


@dataclass(frozen=True)
class DiffReport:
    """Outcome of one differential run.

    ``equal`` means every compared round digested identically; with
    ``completed=False`` the comparison stopped at the round cap with both
    engines still short of the goal (equal *within the horizon*).
    """

    label_a: str
    label_b: str
    equal: bool
    rounds: int
    completed: bool
    divergence: Optional[Divergence] = None

    def describe(self) -> str:
        if self.equal:
            state = "completed" if self.completed else "hit the round cap"
            return (
                f"{self.label_a} == {self.label_b} over {self.rounds} "
                f"rounds ({state})"
            )
        div = self.divergence
        return (
            f"{self.label_a} != {self.label_b} at round {div.round_no}: "
            f"{div.field} {div.value_a!r} vs {div.value_b!r}"
        )


def _first_divergence(a: RoundDigest, b: RoundDigest) -> Divergence:
    for spec in fields(RoundDigest):
        value_a = getattr(a, spec.name)
        value_b = getattr(b, spec.name)
        if value_a != value_b:
            return Divergence(a.round_no, spec.name, value_a, value_b)
    raise ValueError("digests are equal; no divergence to report")


def diff_engines(
    engine_a: SynchronousEngine,
    engine_b: SynchronousEngine,
    *,
    max_rounds: int,
    label_a: str = "a",
    label_b: str = "b",
) -> DiffReport:
    """Step two engines in lockstep, diffing digests after every round.

    The initial (round-0) state is compared too, so mismatched inputs are
    reported before a single round runs.  Stepping stops at the first
    divergence, when both engines reach their goal, or at *max_rounds*.
    """
    rounds = 0
    while True:
        digest_a = engine_digest(engine_a)
        digest_b = engine_digest(engine_b)
        if digest_a != digest_b:
            return DiffReport(
                label_a=label_a,
                label_b=label_b,
                equal=False,
                rounds=rounds,
                completed=False,
                divergence=_first_divergence(digest_a, digest_b),
            )
        if digest_a.goal:
            return DiffReport(
                label_a=label_a,
                label_b=label_b,
                equal=True,
                rounds=rounds,
                completed=True,
            )
        if rounds >= max_rounds:
            return DiffReport(
                label_a=label_a,
                label_b=label_b,
                equal=True,
                rounds=rounds,
                completed=False,
            )
        engine_a.step()
        engine_b.step()
        rounds += 1


def diff_fast_vs_legacy(
    script: ScheduleScript, *, enforce_legality: bool = True
) -> DiffReport:
    """The dense fast path against the reference path on one script."""
    return diff_engines(
        script.build_engine(fast_path=True, enforce_legality=enforce_legality),
        script.build_engine(fast_path=False, enforce_legality=enforce_legality),
        max_rounds=script.resolved_max_rounds(),
        label_a="fast-path",
        label_b="legacy",
    )


def diff_vector_vs_fast(
    script: ScheduleScript, *, enforce_legality: bool = True
) -> DiffReport:
    """The bit-packed vector backend against the fast path on one script.

    Raises :class:`ImportError` when numpy is unavailable; callers that
    must degrade gracefully should guard on
    :func:`repro.sim.vector_kernel.vector_available` first.
    """
    return diff_engines(
        script.build_engine(backend="vector", enforce_legality=enforce_legality),
        script.build_engine(backend="fast", enforce_legality=enforce_legality),
        max_rounds=script.resolved_max_rounds(),
        label_a="vector",
        label_b="fast-path",
    )


def lockstep_reduction(spec: Optional[str], horizon: int) -> Optional[str]:
    """The degenerate spec of *spec*'s model family, or ``None``.

    ``jitter:0``, ``adversarial:0``, and ``perlink:0`` all promise a
    uniform one-round delay; a partition window strictly beyond *horizon*
    (the last delivery round a run of that length can reach) never fires.
    Each must therefore be bit-identical to ``lockstep``.
    """
    if spec is None:
        return None
    family = spec.strip().partition(":")[0].lower()
    if family in ("jitter", "adversarial", "perlink"):
        return f"{family}:0"
    if family == "partition":
        return f"partition:{horizon + 2}-{horizon + 2}"
    return None  # lockstep has nothing to reduce


def diff_reduction(script: ScheduleScript) -> Optional[DiffReport]:
    """Diff the script's model family at its degenerate parameters
    against plain lockstep, on the script's full fault/churn schedule.

    Returns ``None`` when the script's delivery is already lockstep.
    """
    horizon = script.resolved_max_rounds()
    reduced = lockstep_reduction(script.delivery, horizon)
    if reduced is None:
        return None
    return diff_engines(
        script.build_engine(delivery=reduced),
        script.build_engine(delivery="lockstep"),
        max_rounds=horizon,
        label_a=reduced,
        label_b="lockstep",
    )
