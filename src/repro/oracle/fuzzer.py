"""Seeded schedule fuzzing with shrinking.

:func:`generate_script` derives one adversarial
:class:`~repro.oracle.script.ScheduleScript` per ``(master_seed, index)``
pair — deterministically, so a fuzz run is exactly reproducible from its
seed.  Coverage is cycled, not sampled: consecutive indices walk the
registered algorithms, and each full algorithm cycle advances the
delivery-model family, so ``cases >= len(algorithms) * 3`` provably
exercises every algorithm under at least three delivery models.  The
remaining schedule ingredients (topology, size, loss, crashes, joins)
are drawn randomly per script.

:func:`check_script` runs one script under the strict
:class:`~repro.oracle.invariants.InvariantOracle`, then (optionally)
through the differential pairings.  :func:`shrink` greedily simplifies a
failing script — drop the delivery model, the loss, the crash and join
schedules, the params; shrink n — re-checking after each candidate, so
the reported reproduction is minimal under its simplification moves.

:func:`fuzz` is the budgeted loop behind ``repro fuzz``: by case count
and/or wall clock, appending one record per case to a JSONL report via
the crash-safe journal writer of :mod:`repro.bench.store`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import monotonic
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..algorithms.registry import algorithm_names, get_algorithm
from ..bench.store import append_journal
from ..sim.engine import SynchronousEngine
from ..sim.metrics import RunResult
from ..sim.observers import Observer
from ..sim.rng import derive_rng
from ..sim.vector_kernel import vector_available
from .differential import diff_fast_vs_legacy, diff_reduction, diff_vector_vs_fast
from .invariants import InvariantOracle, OracleViolation
from .script import ScheduleScript

#: Schema version of fuzz report journals.
FUZZ_SCHEMA = 1

#: Delivery-model families cycled by the generator, lockstep included.
DELIVERY_FAMILIES: Tuple[str, ...] = (
    "lockstep",
    "jitter",
    "adversarial",
    "perlink",
    "partition",
)

#: Topology families the generator draws from (all parameter-safe at
#: small n).
FUZZ_TOPOLOGIES: Tuple[str, ...] = (
    "kout",
    "path",
    "cycle",
    "tree",
    "star_in",
    "gnp",
)

#: Cap on the rounds one fuzz case may burn; incompletion under a hostile
#: schedule is not a violation, so there is no reason to run an
#: adversarially-stalled protocol to its full registered cap.
FUZZ_ROUND_CAP = 260

EngineHook = Callable[[SynchronousEngine], None]


# -- script generation ----------------------------------------------------------------


def generate_script(
    master_seed: int,
    index: int,
    *,
    algorithms: Optional[Sequence[str]] = None,
    deliveries: Sequence[str] = DELIVERY_FAMILIES,
    min_n: int = 4,
    max_n: int = 24,
) -> ScheduleScript:
    """Derive fuzz case *index* of the run seeded by *master_seed*."""
    rng = derive_rng(master_seed, "fuzz-script", index)
    names = tuple(algorithms) if algorithms else algorithm_names()
    algorithm = names[index % len(names)]
    family = deliveries[(index // len(names)) % len(deliveries)]

    n = rng.randint(min_n, max_n)
    topology = FUZZ_TOPOLOGIES[rng.randrange(len(FUZZ_TOPOLOGIES))]
    topology_params: Dict[str, Any] = {}
    if topology == "kout":
        topology_params["k"] = rng.randint(2, min(4, n - 1))
    elif topology == "gnp":
        topology_params["p"] = 0.25

    if family == "lockstep":
        delivery: Optional[str] = None
    elif family == "jitter":
        delivery = f"jitter:{rng.randint(1, 3)}"
    elif family == "adversarial":
        delivery = f"adversarial:{rng.randint(1, 3)}"
    elif family == "perlink":
        delivery = f"perlink:{rng.randint(1, 3)}"
    elif family == "partition":
        start = rng.randint(2, 6)
        delivery = f"partition:{start}-{start + rng.randint(0, 4)}"
    else:
        raise ValueError(f"unknown delivery family {family!r}")

    loss_rate = round(rng.uniform(0.05, 0.25), 3) if rng.random() < 0.35 else 0.0
    crash_rounds: Dict[int, int] = {}
    if rng.random() < 0.35:
        count = max(1, int(n * rng.uniform(0.05, 0.25)))
        for victim in rng.sample(range(n), count):
            crash_rounds[victim] = rng.randint(2, 8)
    join_rounds: Dict[int, int] = {}
    if rng.random() < 0.35:
        count = rng.randint(1, max(1, n // 4))
        for joiner in rng.sample(range(n), count):
            join_rounds[joiner] = rng.randint(2, 8)

    if crash_rounds:
        goal = "strong_alive"
    else:
        goal = "weak" if rng.random() < 0.25 else "strong"

    spec = get_algorithm(algorithm)
    params: Dict[str, Any] = {}
    hostile = bool(delivery or loss_rate or crash_rounds or join_rounds)
    if hostile:
        params = dict(spec.hostile_params)

    max_rounds = min(spec.round_cap(n), FUZZ_ROUND_CAP)
    return ScheduleScript(
        algorithm=algorithm,
        topology=topology,
        n=n,
        seed=rng.randrange(2**32),
        goal=goal,
        delivery=delivery,
        loss_rate=loss_rate,
        fault_seed=rng.randrange(2**16),
        crash_rounds=crash_rounds,
        join_rounds=join_rounds,
        params=params,
        topology_params=topology_params,
        max_rounds=max_rounds,
    )


# -- execution ------------------------------------------------------------------------


def run_script(
    script: ScheduleScript,
    *,
    fast_path: bool = True,
    enforce_legality: bool = True,
    strict: bool = True,
    observers: Sequence[Observer] = (),
    engine_hook: Optional[EngineHook] = None,
) -> Tuple[RunResult, InvariantOracle]:
    """Run one script under the invariant oracle.

    ``engine_hook`` receives the constructed engine before the run starts
    — the fuzzer self-tests use it to inject deliberate transport bugs
    and prove the oracle catches them.  With ``strict=True`` the first
    violation raises :class:`OracleViolation` out of the run.
    """
    oracle = InvariantOracle(script=script, strict=strict)
    engine = script.build_engine(
        fast_path=fast_path,
        enforce_legality=enforce_legality,
        observers=(oracle, *observers),
    )
    if engine_hook is not None:
        engine_hook(engine)
    result = engine.run(max_rounds=script.resolved_max_rounds())
    return result, oracle


def replay(script_or_json: Union[ScheduleScript, str, Dict[str, Any]]) -> RunResult:
    """Replay a violation's ``(config, seed, schedule)`` triple strictly.

    Accepts a script, its JSON text, or its dict form.  Raises the same
    :class:`OracleViolation` the original run did (same seed, same
    schedule, same round) or returns the clean result.
    """
    import json as _json

    if isinstance(script_or_json, str):
        script = ScheduleScript.from_dict(_json.loads(script_or_json))
    elif isinstance(script_or_json, ScheduleScript):
        script = script_or_json
    else:
        script = ScheduleScript.from_dict(script_or_json)
    result, _ = run_script(script, strict=True)
    return result


def check_script(
    script: ScheduleScript,
    *,
    differential: bool = True,
    reduction: bool = True,
    engine_hook: Optional[EngineHook] = None,
) -> Optional[Tuple[str, str]]:
    """Run every check one fuzz case gets; ``None`` means clean.

    On failure returns ``(kind, detail)`` where *kind* is ``invariant``
    (the oracle raised), ``divergence`` (fast path != legacy path),
    ``vector-divergence`` (vector backend != fast path; skipped when
    numpy is unavailable), or ``reduction-divergence`` (degenerate model
    != lockstep).
    """
    try:
        run_script(script, strict=True, engine_hook=engine_hook)
    except OracleViolation as violation:
        return ("invariant", str(violation))
    if differential:
        report = diff_fast_vs_legacy(script)
        if not report.equal:
            return ("divergence", report.describe())
        if vector_available():
            report = diff_vector_vs_fast(script)
            if not report.equal:
                return ("vector-divergence", report.describe())
    if reduction:
        report = diff_reduction(script)
        if report is not None and not report.equal:
            return ("reduction-divergence", report.describe())
    return None


# -- shrinking ------------------------------------------------------------------------


def _filtered_nodes(
    schedule: Dict[int, int], n: int
) -> Dict[int, int]:
    """Drop schedule entries naming nodes outside a shrunken id space."""
    return {node: rnd for node, rnd in schedule.items() if node < n}


def _simplifications(script: ScheduleScript) -> Iterator[ScheduleScript]:
    """Candidate one-step simplifications, cheapest big wins first."""
    if script.delivery is not None:
        yield replace(script, delivery=None)
    if script.loss_rate:
        yield replace(script, loss_rate=0.0)
    if script.crash_rounds:
        yield replace(script, crash_rounds={}, goal="strong")
    if script.join_rounds:
        yield replace(script, join_rounds={})
    if script.params:
        yield replace(script, params={})
    if script.goal != "strong":
        yield replace(script, goal="strong")
    if script.topology != "path":
        yield replace(script, topology="path", topology_params={})
    # Per-entry removals, once wholesale clearing stopped reproducing.
    for node in sorted(script.crash_rounds):
        crashes = dict(script.crash_rounds)
        del crashes[node]
        yield replace(script, crash_rounds=crashes)
    for node in sorted(script.join_rounds):
        joins = dict(script.join_rounds)
        del joins[node]
        yield replace(script, join_rounds=joins)
    # Size reductions last: they perturb everything downstream.
    for smaller in (script.n // 2, script.n - 1):
        if 2 <= smaller < script.n:
            yield replace(
                script,
                n=smaller,
                crash_rounds=_filtered_nodes(dict(script.crash_rounds), smaller),
                join_rounds=_filtered_nodes(dict(script.join_rounds), smaller),
            )


def shrink(
    script: ScheduleScript,
    failing: Callable[[ScheduleScript], bool],
    *,
    max_attempts: int = 200,
) -> ScheduleScript:
    """Greedily minimize a failing script.

    ``failing`` must return True when a candidate still reproduces the
    failure.  Each accepted simplification restarts the pass, so the
    result is a fixpoint of :func:`_simplifications` (or the best script
    found within *max_attempts* candidate evaluations).
    """
    attempts = 0
    current = script
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        for candidate in _simplifications(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            try:
                still_failing = failing(candidate)
            except Exception:
                # A candidate that fails to even build (e.g. a topology
                # rejecting the shrunken size) is not a simplification.
                continue
            if still_failing:
                current = candidate
                progressed = True
                break
    return current


# -- deliberate-bug hooks (fuzzer self-test) ------------------------------------------


def make_skip_delivery_hook(count: int = 1) -> EngineHook:
    """An engine hook that silently loses *count* due messages.

    Wraps the bound delivery model's ``pending`` to pop one due message
    (and its parallel delay entry) without charging any drop reason — a
    transport bug that breaks message conservation.  Used by the fuzzer
    self-tests to prove the oracle detects real divergences.
    """

    def hook(engine: SynchronousEngine) -> None:
        bound = engine.delivery
        original = bound.pending
        state = {"remaining": count}

        def pending(round_no: int):
            messages, delays = original(round_no)
            if messages and state["remaining"] > 0:
                state["remaining"] -= 1
                messages = list(messages)
                messages.pop()
                if delays is not None:
                    delays = list(delays)
                    delays.pop()
            return messages, delays

        bound.pending = pending  # type: ignore[method-assign]

    return hook


# -- the budgeted fuzz loop -----------------------------------------------------------


@dataclass(frozen=True)
class FuzzCase:
    """Outcome of one fuzz case."""

    index: int
    script: ScheduleScript
    status: str  # ok | invariant | divergence | vector-divergence | reduction-divergence
    detail: Optional[str] = None
    shrunk: Optional[ScheduleScript] = None


@dataclass(frozen=True)
class FuzzReport:
    """Summary of one fuzz run."""

    seed: int
    cases: Tuple[FuzzCase, ...]
    elapsed: float

    @property
    def failures(self) -> Tuple[FuzzCase, ...]:
        return tuple(case for case in self.cases if case.status != "ok")


def fuzz(
    cases: int = 50,
    *,
    seed: int = 0,
    algorithms: Optional[Sequence[str]] = None,
    deliveries: Sequence[str] = DELIVERY_FAMILIES,
    min_n: int = 4,
    max_n: int = 24,
    differential: bool = True,
    reduction: bool = True,
    shrink_failures: bool = True,
    max_shrink_attempts: int = 60,
    time_budget: Optional[float] = None,
    report_path: Optional[str] = None,
    progress: Optional[Callable[[FuzzCase], None]] = None,
    engine_hook: Optional[EngineHook] = None,
) -> FuzzReport:
    """Run the budgeted fuzz loop.

    Stops after *cases* scripts or once *time_budget* seconds have
    elapsed, whichever comes first.  When *report_path* is given, a
    manifest plus one record per case (and a final summary) are appended
    to a JSONL journal via :func:`repro.bench.store.append_journal`, so
    an interrupted fuzz run keeps every finished case on disk.

    ``engine_hook`` is forwarded to every oracle run (self-test use).
    """
    started = monotonic()
    if report_path:
        append_journal(
            report_path,
            {
                "type": "manifest",
                "schema": FUZZ_SCHEMA,
                "kind": "fuzz",
                "seed": seed,
                "cases": cases,
                "algorithms": list(algorithms) if algorithms else None,
                "deliveries": list(deliveries),
                "max_n": max_n,
            },
        )
    outcomes: List[FuzzCase] = []
    for index in range(cases):
        if time_budget is not None and monotonic() - started >= time_budget:
            break
        script = generate_script(
            seed,
            index,
            algorithms=algorithms,
            deliveries=deliveries,
            min_n=min_n,
            max_n=max_n,
        )
        failure = check_script(
            script,
            differential=differential,
            reduction=reduction,
            engine_hook=engine_hook,
        )
        if failure is None:
            outcome = FuzzCase(index=index, script=script, status="ok")
        else:
            kind, detail = failure
            shrunk = None
            if shrink_failures:
                shrunk = shrink(
                    script,
                    lambda candidate: check_script(
                        candidate,
                        differential=differential,
                        reduction=reduction,
                        engine_hook=engine_hook,
                    )
                    is not None,
                    max_attempts=max_shrink_attempts,
                )
            outcome = FuzzCase(
                index=index,
                script=script,
                status=kind,
                detail=detail,
                shrunk=shrunk,
            )
        outcomes.append(outcome)
        if report_path:
            record: Dict[str, Any] = {
                "type": "case",
                "index": outcome.index,
                "status": outcome.status,
                "script": outcome.script.to_dict(),
            }
            if outcome.detail:
                record["detail"] = outcome.detail
            if outcome.shrunk is not None:
                record["shrunk"] = outcome.shrunk.to_dict()
            append_journal(report_path, record)
        if progress is not None:
            progress(outcome)
    elapsed = monotonic() - started
    report = FuzzReport(seed=seed, cases=tuple(outcomes), elapsed=elapsed)
    if report_path:
        append_journal(
            report_path,
            {
                "type": "summary",
                "cases_run": len(report.cases),
                "failures": len(report.failures),
                "elapsed": round(elapsed, 3),
            },
        )
    return report
