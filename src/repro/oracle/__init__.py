"""Correctness tooling for the simulator: oracle, differ, fuzzer.

Three layers, each usable on its own:

* :class:`InvariantOracle` (:mod:`repro.oracle.invariants`) — an
  observer that validates the per-round invariant catalog online and
  raises a structured, replayable :class:`OracleViolation`;
* the differential runner (:mod:`repro.oracle.differential`) — steps
  paired engines (fast path vs legacy, delivery model vs its lockstep
  reduction) and reports the first divergent round;
* the schedule fuzzer (:mod:`repro.oracle.fuzzer`) — generates seeded
  adversarial scripts, runs them under the oracle and the differ, and
  shrinks failures to minimal reproductions.  ``repro fuzz`` is its CLI.

The common currency is :class:`ScheduleScript`
(:mod:`repro.oracle.script`): one serializable ``(config, seed,
schedule)`` triple that deterministically rebuilds the failing run.
"""

from .differential import (
    DiffReport,
    Divergence,
    RoundDigest,
    diff_engines,
    diff_fast_vs_legacy,
    diff_reduction,
    diff_vector_vs_fast,
    engine_digest,
    lockstep_reduction,
)
from .fuzzer import (
    DELIVERY_FAMILIES,
    FuzzCase,
    FuzzReport,
    check_script,
    fuzz,
    generate_script,
    make_skip_delivery_hook,
    replay,
    run_script,
    shrink,
)
from .invariants import InvariantOracle, OracleViolation
from .script import ScheduleScript

__all__ = [
    "DELIVERY_FAMILIES",
    "DiffReport",
    "Divergence",
    "FuzzCase",
    "FuzzReport",
    "InvariantOracle",
    "OracleViolation",
    "RoundDigest",
    "ScheduleScript",
    "check_script",
    "diff_engines",
    "diff_fast_vs_legacy",
    "diff_reduction",
    "diff_vector_vs_fast",
    "engine_digest",
    "fuzz",
    "generate_script",
    "lockstep_reduction",
    "make_skip_delivery_hook",
    "replay",
    "run_script",
    "shrink",
]
