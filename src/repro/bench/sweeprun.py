"""Crash-safe, resumable sweep execution.

:func:`repro.bench.runner.sweep` answers "run this matrix"; this module
answers "run this matrix *overnight*".  A long sweep dies for boring
reasons — one pathological cell, an OOM kill, a laptop lid — and the
plain runner loses everything with it.  :class:`SweepRunner` hardens the
same cell semantics:

* every cell runs inside a guard, so a worker exception becomes a
  structured :class:`CellFailure` record instead of a sweep abort;
* failed cells retry up to ``retries`` times with bounded,
  seed-deterministic exponential backoff (same seed → same delays, so a
  re-run reproduces the schedule), and ``cell_timeout`` bounds one
  attempt's wall clock via ``SIGALRM`` where the platform has it;
* with a ``journal`` path, completed cells append incrementally to a
  JSONL log headed by a schema-versioned manifest (case-matrix digest,
  delivery spec, git describe), fsynced per record — an interrupted
  sweep restarted with ``resume=True`` skips journaled cells and
  produces results identical to an uninterrupted run;
* a ``progress`` callback receives one :class:`SweepProgress` event per
  settled cell (completed / failed / retried / resumed counts) for live
  rendering by the CLI.

Determinism is inherited, not re-proven: a cell's randomness derives
entirely from its case seed, so running it later, in another process, or
after a crash produces the same :class:`~repro.sim.metrics.RunResult`.
That is the whole reason resume-by-skip is sound.

The fault-injection hook (``fault_hook``, e.g. :class:`FailCell` /
:class:`SlowCell`) exists for the test suite and CI: it lets a test make
one named cell crash or stall deterministically, in-process or in a
worker, without touching the engine.
"""

from __future__ import annotations

import hashlib
import signal
import subprocess
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..sim.metrics import RunResult
from ..sim.rng import derive_seed
from .runner import Case, case_key, run_case
from .store import (
    JOURNAL_SCHEMA,
    append_journal,
    load_journal,
    result_from_dict,
    result_to_dict,
)

#: Base delay (seconds) of the first retry backoff.
BACKOFF_BASE = 0.05
#: Ceiling (seconds) on any single backoff sleep.
BACKOFF_CAP = 2.0
#: How many trailing traceback lines a failure record keeps.
TRACEBACK_TAIL = 20


class CellTimeout(Exception):
    """One cell attempt exceeded the configured wall-clock budget."""


class SweepError(RuntimeError):
    """Raised after a robust sweep finishes with cells still failing.

    Raised *after* every other cell has run (and been journaled), so a
    journal + resume never loses sibling work to one bad cell.
    """

    def __init__(self, failures: Sequence["CellFailure"]):
        self.failures = list(failures)
        lines = ", ".join(
            f"{failure.case.display}/n={failure.case.n}/seed={failure.case.seed}"
            f" ({failure.error_type})"
            for failure in self.failures[:4]
        )
        more = "" if len(self.failures) <= 4 else f", +{len(self.failures) - 4} more"
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed after retries: {lines}{more}"
        )


@dataclass(frozen=True)
class CellFailure:
    """Structured record of one cell that failed all its attempts."""

    index: int
    key: str
    case: Case
    attempts: int
    error_type: str
    error_message: str
    traceback_tail: str = ""

    def to_record(self) -> Dict[str, Any]:
        return {
            "type": "failure",
            "key": self.key,
            "index": self.index,
            "attempts": self.attempts,
            "error": {
                "type": self.error_type,
                "message": self.error_message,
                "traceback": self.traceback_tail,
            },
        }


@dataclass(frozen=True)
class SweepProgress:
    """One live progress event: a cell settled (or was restored)."""

    status: str  #: ``"ok"``, ``"failed"``, or ``"resumed"``
    index: int  #: position of the cell in the case matrix
    case: Case
    attempts: int  #: attempts this run spent on the cell (0 when resumed)
    completed: int  #: cells done so far, including resumed ones
    failed: int  #: cells failed-for-good so far
    retried: int  #: total retry attempts spent so far
    resumed: int  #: cells restored from the journal
    total: int  #: size of the case matrix

    @property
    def settled(self) -> int:
        return self.completed + self.failed

    def format(self) -> str:
        cell = f"{self.case.display} n={self.case.n} seed={self.case.seed}"
        note = ""
        if self.status == "failed":
            note = " FAILED"
        elif self.status == "resumed":
            note = " (resumed)"
        elif self.attempts > 1:
            note = f" (attempt {self.attempts})"
        return f"[{self.settled}/{self.total}] {cell}{note}"


@dataclass
class SweepReport:
    """Everything a robust sweep learned."""

    results: List[RunResult]
    failures: List[CellFailure]
    completed: int = 0
    resumed: int = 0
    retried: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass(frozen=True)
class SweepOptions:
    """Robustness knobs, bundled so experiment drivers can thread them
    through to :func:`repro.bench.runner.sweep` without growing their own
    six keyword arguments."""

    workers: Optional[int] = None
    retries: int = 0
    cell_timeout: Optional[float] = None
    journal: Optional[Union[str, Path]] = None
    resume: bool = False
    progress: Optional[Callable[[SweepProgress], None]] = None
    on_failure: str = "raise"

    def sweep_kwargs(self) -> Dict[str, Any]:
        return {
            "workers": self.workers,
            "retries": self.retries,
            "cell_timeout": self.cell_timeout,
            "journal": self.journal,
            "resume": self.resume,
            "progress": self.progress,
            "on_failure": self.on_failure,
        }

    def for_stage(self, stage: str) -> "SweepOptions":
        """These options with the journal forked per stage.

        A driver that runs several sweeps (F3 sweeps once per topology)
        cannot share one journal — each sweep is its own case matrix with
        its own digest — so each stage journals to ``<stem>.<stage>.jsonl``
        next to the configured path.
        """
        if self.journal is None:
            return self
        path = Path(self.journal)
        suffix = path.suffix or ".jsonl"
        return replace(self, journal=path.with_name(f"{path.stem}.{stage}{suffix}"))


# -- fault-injection hooks (picklable, for tests and CI) ----------------------------


@dataclass
class FailCell:
    """Test hook: raise on the first ``fail_attempts`` attempts of every
    cell whose (algorithm, n, seed) matches.

    ``None`` matches anything, so ``FailCell(n=256)`` fails every n=256
    cell.  With ``fail_attempts`` larger than the retry budget the cell
    fails for good; smaller, and the retry loop recovers it — both sides
    of the acceptance criterion.
    """

    algorithm: Optional[str] = None
    n: Optional[int] = None
    seed: Optional[int] = None
    fail_attempts: int = 10**9

    def __call__(self, case: Case, attempt: int) -> None:
        if self.algorithm is not None and case.algorithm != self.algorithm:
            return
        if self.n is not None and case.n != self.n:
            return
        if self.seed is not None and case.seed != self.seed:
            return
        if attempt < self.fail_attempts:
            raise RuntimeError(
                f"injected fault (attempt {attempt + 1}) in "
                f"{case.algorithm}/n={case.n}/seed={case.seed}"
            )


@dataclass
class SlowCell:
    """Test hook: stall matching cells for ``seconds`` before they run,
    long enough to trip ``cell_timeout``."""

    seconds: float
    algorithm: Optional[str] = None
    n: Optional[int] = None
    seed: Optional[int] = None

    def __call__(self, case: Case, attempt: int) -> None:
        if self.algorithm is not None and case.algorithm != self.algorithm:
            return
        if self.n is not None and case.n != self.n:
            return
        if self.seed is not None and case.seed != self.seed:
            return
        time.sleep(self.seconds)


# -- worker body --------------------------------------------------------------------


def backoff_delay(seed: int, attempt: int) -> float:
    """Seed-deterministic exponential backoff for retry *attempt* (0-based).

    Doubles per attempt from :data:`BACKOFF_BASE`, jittered into
    ``[0.5x, 1.5x)`` by a uniform variate derived from the cell seed (so a
    re-run reproduces the exact schedule), capped at :data:`BACKOFF_CAP`.
    """
    unit = (derive_seed(seed, "sweep-backoff", attempt) & 0xFFFFFFFF) / 2.0**32
    return min(BACKOFF_CAP, BACKOFF_BASE * (2.0**attempt) * (0.5 + unit))


def _alarm_available() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def _call_with_timeout(thunk: Callable[[], RunResult], timeout: Optional[float]):
    """Run *thunk*, raising :class:`CellTimeout` after *timeout* seconds.

    Uses ``SIGALRM``/``setitimer``, which interrupts pure-Python compute
    loops (a thread-based watchdog could not).  Where the platform lacks
    ``SIGALRM`` — or off the main thread — the timeout degrades to
    unenforced rather than breaking the sweep.
    """
    if timeout is None or not _alarm_available():
        return thunk()

    def _on_alarm(signum, frame):
        raise CellTimeout(f"cell exceeded {timeout:.1f}s wall clock")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return thunk()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class _CellOutcome:
    """Picklable envelope a worker sends back for one cell."""

    index: int
    key: str
    attempts: int
    result: Optional[RunResult] = None
    error_type: str = ""
    error_message: str = ""
    traceback_tail: str = ""

    @property
    def ok(self) -> bool:
        return self.result is not None


def _execute_cell(
    payload: Tuple[
        int,
        str,
        Case,
        bool,
        bool,
        Optional[str],
        int,
        Optional[float],
        Optional[Callable],
    ],
) -> _CellOutcome:
    """Module-level worker body: run one cell with retries inside the
    worker, so the pool sees exactly one task per cell and the retry
    schedule stays with the cell regardless of which process runs it."""
    (
        index,
        key,
        case,
        enforce_legality,
        fast_path,
        backend,
        retries,
        cell_timeout,
        fault_hook,
    ) = payload
    def _attempt(attempt: int) -> RunResult:
        # The hook runs inside the timed region: a SlowCell stall is a
        # stand-in for a slow cell and must trip the timeout like one.
        if fault_hook is not None:
            fault_hook(case, attempt)
        return run_case(
            case,
            enforce_legality=enforce_legality,
            fast_path=fast_path,
            backend=backend,
        )

    last: Optional[BaseException] = None
    for attempt in range(retries + 1):
        try:
            result = _call_with_timeout(lambda: _attempt(attempt), cell_timeout)
            return _CellOutcome(index=index, key=key, attempts=attempt + 1, result=result)
        except Exception as error:  # noqa: BLE001 — the guard is the point
            last = error
            if attempt < retries:
                time.sleep(backoff_delay(case.seed, attempt))
    tail = "".join(
        traceback.format_exception(type(last), last, last.__traceback__)
    ).splitlines()[-TRACEBACK_TAIL:]
    return _CellOutcome(
        index=index,
        key=key,
        attempts=retries + 1,
        error_type=type(last).__name__,
        error_message=str(last),
        traceback_tail="\n".join(tail),
    )


# -- the runner ---------------------------------------------------------------------


def matrix_digest(keys: Sequence[str]) -> str:
    """Stable fingerprint of a case matrix (order-sensitive)."""
    return hashlib.sha256("\n".join(keys).encode("utf-8")).hexdigest()[:16]


def _git_describe() -> str:
    try:
        return subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        ).stdout.strip() or "unknown"
    except OSError:
        return "unknown"


@dataclass
class SweepRunner:
    """Crash-safe executor for a list of :class:`Case` cells.

    Usually reached through ``sweep(..., retries=..., journal=...)``;
    instantiate directly when you already hold a case list (the CLI and
    the tests do).
    """

    workers: Optional[int] = None
    retries: int = 0
    cell_timeout: Optional[float] = None
    journal: Optional[Union[str, Path]] = None
    resume: bool = False
    progress: Optional[Callable[[SweepProgress], None]] = None
    enforce_legality: bool = False
    fast_path: bool = True
    backend: Optional[str] = None
    fault_hook: Optional[Callable[[Case, int], None]] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def run(self, cases: Sequence[Case]) -> SweepReport:
        keys = [case_key(case) for case in cases]
        restored = self._restore(keys)

        outcomes: Dict[int, _CellOutcome] = {}
        counts = {
            "completed": len(restored),
            "failed": 0,
            "retried": 0,
            "resumed": len(restored),
        }
        for index in sorted(restored):
            self._emit("resumed", index, cases[index], 0, counts, len(cases))

        pending = [index for index in range(len(cases)) if index not in restored]
        for outcome in self._execute(pending, cases, keys):
            outcomes[outcome.index] = outcome
            if outcome.attempts > 1 or not outcome.ok:
                # A cell that settled on attempt k spent k-1 retries; a
                # failed cell spent all of them.
                counts["retried"] += outcome.attempts - (1 if outcome.ok else 0)
            if outcome.ok:
                counts["completed"] += 1
                self._journal_result(outcome)
            else:
                counts["failed"] += 1
                self._journal_failure(outcome, cases)
            self._emit(
                "ok" if outcome.ok else "failed",
                outcome.index,
                cases[outcome.index],
                outcome.attempts,
                counts,
                len(cases),
            )

        results: List[RunResult] = []
        failures: List[CellFailure] = []
        for index, case in enumerate(cases):
            if index in restored:
                results.append(restored[index])
                continue
            outcome = outcomes[index]
            if outcome.ok:
                results.append(outcome.result)
            else:
                failures.append(
                    CellFailure(
                        index=index,
                        key=keys[index],
                        case=case,
                        attempts=outcome.attempts,
                        error_type=outcome.error_type,
                        error_message=outcome.error_message,
                        traceback_tail=outcome.traceback_tail,
                    )
                )
        if self.journal is not None:
            append_journal(
                self.journal,
                {
                    "type": "complete",
                    "completed": counts["completed"],
                    "failed": counts["failed"],
                    "retried": counts["retried"],
                    "resumed": counts["resumed"],
                },
            )
        return SweepReport(
            results=results,
            failures=failures,
            completed=counts["completed"],
            resumed=counts["resumed"],
            retried=counts["retried"],
        )

    # -- internals ------------------------------------------------------------

    def _emit(
        self,
        status: str,
        index: int,
        case: Case,
        attempts: int,
        counts: Dict[str, int],
        total: int,
    ) -> None:
        if self.progress is None:
            return
        self.progress(
            SweepProgress(
                status=status,
                index=index,
                case=case,
                attempts=attempts,
                completed=counts["completed"],
                failed=counts["failed"],
                retried=counts["retried"],
                resumed=counts["resumed"],
                total=total,
            )
        )

    def _restore(self, keys: Sequence[str]) -> Dict[int, RunResult]:
        """Open or resume the journal; return results restored from it."""
        if self.journal is None:
            return {}
        path = Path(self.journal)
        digest = matrix_digest(keys)
        fresh = not path.exists() or path.stat().st_size == 0
        if fresh:
            append_journal(path, self._manifest(len(keys), digest))
            return {}
        if not self.resume:
            raise FileExistsError(
                f"{path}: journal already exists; pass resume=True "
                "(--resume) to continue it, or remove the file"
            )
        manifest, results, _failures = load_journal(path)
        recorded = manifest.get("matrix", {}).get("digest")
        if recorded != digest:
            raise ValueError(
                f"{path}: journal belongs to a different case matrix "
                f"(digest {recorded!r}, this sweep is {digest!r})"
            )
        index_by_key = {key: index for index, key in enumerate(keys)}
        restored: Dict[int, RunResult] = {}
        for key, record in results.items():
            index = index_by_key.get(key)
            if index is not None:
                restored[index] = result_from_dict(record["result"])
        # Journaled failures are *not* restored: a resume re-runs them.
        append_journal(path, {"type": "resume", "skipped": len(restored)})
        return restored

    def _manifest(self, cells: int, digest: str) -> Dict[str, Any]:
        return {
            "type": "manifest",
            "schema": JOURNAL_SCHEMA,
            "matrix": {"cells": cells, "digest": digest},
            "settings": {
                "workers": self.workers,
                "retries": self.retries,
                "cell_timeout": self.cell_timeout,
                "enforce_legality": self.enforce_legality,
                "fast_path": self.fast_path,
                "backend": self.backend,
            },
            "git": _git_describe(),
            "metadata": dict(self.metadata),
        }

    def _journal_result(self, outcome: _CellOutcome) -> None:
        if self.journal is None:
            return
        append_journal(
            self.journal,
            {
                "type": "result",
                "key": outcome.key,
                "index": outcome.index,
                "attempts": outcome.attempts,
                "result": result_to_dict(outcome.result, include_rounds=True),
            },
        )

    def _journal_failure(
        self, outcome: _CellOutcome, cases: Sequence[Case]
    ) -> None:
        if self.journal is None:
            return
        failure = CellFailure(
            index=outcome.index,
            key=outcome.key,
            case=cases[outcome.index],
            attempts=outcome.attempts,
            error_type=outcome.error_type,
            error_message=outcome.error_message,
            traceback_tail=outcome.traceback_tail,
        )
        append_journal(self.journal, failure.to_record())

    def _payload(self, index: int, key: str, case: Case):
        return (
            index,
            key,
            case,
            self.enforce_legality,
            self.fast_path,
            self.backend,
            self.retries,
            self.cell_timeout,
            self.fault_hook,
        )

    def _execute(
        self, pending: Sequence[int], cases: Sequence[Case], keys: Sequence[str]
    ):
        """Yield one :class:`_CellOutcome` per pending cell, as it settles."""
        payloads = [self._payload(index, keys[index], cases[index]) for index in pending]
        parallel = self.workers is not None and self.workers > 1 and len(payloads) > 1
        if not parallel:
            for payload in payloads:
                yield _execute_cell(payload)
            return
        # submit + wait (rather than pool.map) so each cell journals the
        # moment it settles — an interruption loses only cells in flight.
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {pool.submit(_execute_cell, payload) for payload in payloads}
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
