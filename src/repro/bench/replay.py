"""Record-and-replay kernels for benchmarking the simulator substrate.

The experiment drivers measure *protocols*; the B1 microbenchmarks need to
measure the *engine*.  This module separates the two: :func:`record_run`
executes a protocol once while capturing every outbox it produced, and
:func:`replay_engine` rebuilds an engine whose nodes re-emit that exact
message schedule while doing no protocol work of their own (no knowledge
sets, no RNG, no snapshot copies).  Timing a replay therefore isolates the
engine's round loop — collection, legality, dispatch, delivery, learning,
metrics — from the protocol that generated the traffic.

Replays can start mid-run: :func:`record_run` snapshots ground-truth
knowledge at requested round boundaries, and a replay seeded from such a
snapshot re-executes only the rounds after it.  That is how the B1
steady-state kernel drives the *heaviest* rounds of a Name-Dropper run
(where nearly every machine already knows nearly everyone — by far the
bulk of the run's pointer traffic) without paying for the ramp-up.

Replay assumes fault-free lockstep delivery: the schedule is keyed by
sending round, which no longer matches the original traffic when loss,
crashes, or jitter reshuffle deliveries.  Recording enforces that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from ..sim.engine import SynchronousEngine
from ..sim.messages import Message
from ..sim.metrics import RunResult
from ..sim.node import ProtocolNode

#: ``schedule[(node_id, round_no)]`` is the outbox *node_id* produced in
#: (1-based) *round_no* of the recorded run.
Schedule = Dict[Tuple[int, int], Tuple[Message, ...]]


@dataclass(frozen=True)
class RecordedRun:
    """A protocol run reduced to its replayable message schedule.

    Attributes:
        initial: The initial knowledge graph the run started from.
        schedule: Per-(node, round) outboxes, exactly as drained.
        result: The recorded run's :class:`RunResult`.
        snapshots: Ground-truth knowledge (including self) at the *end* of
            each requested round — valid starting states for partial
            replays.
        seed: Master seed the run (and any replay of it) uses.
        backend: Engine backend the recording ran on.  Replays refuse to
            run on a *different* backend unless forced, because a
            cross-backend replay times one engine against a schedule whose
            provenance is another — fine for deliberate A/B benchmarks
            (that is what ``force=True`` asserts), misleading by accident.
    """

    initial: Mapping[int, FrozenSet[int]]
    schedule: Schedule
    result: RunResult
    snapshots: Mapping[int, Mapping[int, FrozenSet[int]]]
    seed: int
    backend: str = "legacy"

    @property
    def rounds(self) -> int:
        return self.result.rounds

    def window(self, start_round: int) -> int:
        """Number of rounds a replay starting at *start_round* executes."""
        if start_round < 1 or start_round > self.rounds:
            raise ValueError(
                f"start_round must be in [1, {self.rounds}], got {start_round}"
            )
        if start_round > 1 and start_round - 1 not in self.snapshots:
            raise ValueError(
                f"no knowledge snapshot recorded at round {start_round - 1}; "
                "pass it via record_run(snapshot_rounds=...)"
            )
        return self.rounds - start_round + 1


class _SnapshotObserver:
    """Captures ground-truth knowledge at requested round boundaries."""

    def __init__(self, rounds: Sequence[int]) -> None:
        self._wanted = frozenset(rounds)
        self.snapshots: Dict[int, Dict[int, FrozenSet[int]]] = {}

    def on_setup(self, engine: SynchronousEngine) -> None:  # pragma: no cover
        pass

    def on_round_end(self, engine: SynchronousEngine, round_no: int) -> None:
        if round_no in self._wanted:
            self.snapshots[round_no] = {
                node: frozenset(known) for node, known in engine.knowledge.items()
            }

    def on_finish(self, engine: SynchronousEngine, completed: bool) -> None:
        pass

    def extra(self) -> Dict[str, Any]:
        return {}


def record_run(
    graph: Any,
    node_factory: Callable[[int], ProtocolNode],
    *,
    seed: int = 0,
    goal: str = "strong",
    enforce_legality: bool = False,
    max_rounds: Optional[int] = None,
    snapshot_rounds: Sequence[int] = (),
) -> RecordedRun:
    """Run a protocol once, capturing every outbox it drains.

    The recording run itself uses the legacy engine path so the schedule's
    provenance never depends on the code being benchmarked against it.
    """
    observer = _SnapshotObserver(snapshot_rounds)
    engine = SynchronousEngine(
        graph,
        node_factory,
        seed=seed,
        goal=goal,
        enforce_legality=enforce_legality,
        observers=(observer,) if snapshot_rounds else (),
    )
    schedule: Schedule = {}

    def wrap(node: ProtocolNode) -> Callable[[int, Sequence[Message]], list]:
        original = node.run_round

        def recording_run(round_no: int, inbox: Sequence[Message]) -> list:
            outbox = original(round_no, inbox)
            if outbox:
                schedule[(node.node_id, round_no)] = tuple(outbox)
            return outbox

        return recording_run

    initial = {
        node: frozenset(known) - {node} for node, known in engine.knowledge.items()
    }
    for node in engine.nodes.values():
        node.run_round = wrap(node)  # type: ignore[method-assign]
    result = engine.run(max_rounds)
    return RecordedRun(
        initial=initial,
        schedule=schedule,
        result=result,
        snapshots=dict(observer.snapshots),
        seed=seed,
        backend=engine.backend,
    )


class ReplayNode(ProtocolNode):
    """A node that re-emits a recorded schedule and learns nothing.

    ``absorb`` is a no-op and ``on_round`` is one dict probe plus a list
    extend, so a replayed round's cost is almost entirely engine-side.
    Subclassing binds the schedule and round offset as class attributes —
    the engine's factory protocol only passes a node id.
    """

    _schedule: Schedule = {}
    _offset: int = 0

    def absorb(self, message: Message) -> None:
        pass

    def on_round(
        self, round_no: int, inbox: Sequence[Message], rng: random.Random
    ) -> Optional[Sequence[Message]]:
        return self._schedule.get((self.node_id, round_no + self._offset))


def replay_engine(
    recorded: RecordedRun,
    *,
    start_round: int = 1,
    fast_path: bool = False,
    backend: Optional[str] = None,
    force: bool = False,
    enforce_legality: bool = False,
    profile: bool = False,
) -> SynchronousEngine:
    """Build an engine that replays *recorded* from *start_round* on.

    Step it ``recorded.window(start_round)`` times to re-execute the
    remainder of the run; metrics and final ground truth then match the
    recorded tail exactly on any backend.

    ``backend`` selects the replay backend explicitly (``fast_path``
    remains the boolean alias).  Replaying against a backend other than
    ``recorded.backend`` raises unless ``force=True``: the B1 kernels do
    this on purpose (the whole point is timing fast/vector engines on a
    legacy-recorded schedule) and say so with ``force``; anything else is
    probably comparing apples to a different engine by accident.
    """
    window = recorded.window(start_round)  # validates start_round
    del window
    if backend is None:
        backend = "fast" if fast_path else "legacy"
    if backend != recorded.backend and not force:
        raise ValueError(
            f"recording was made on the {recorded.backend!r} backend but the "
            f"replay requests {backend!r}; pass --force / force=True to "
            "time a cross-backend replay deliberately"
        )
    if start_round == 1:
        adjacency: Mapping[int, FrozenSet[int]] = recorded.initial
    else:
        snapshot = recorded.snapshots[start_round - 1]
        adjacency = {node: known - {node} for node, known in snapshot.items()}
    node_type = type(
        "BoundReplayNode",
        (ReplayNode,),
        {"_schedule": recorded.schedule, "_offset": start_round - 1},
    )
    return SynchronousEngine(
        adjacency,
        node_type,
        seed=recorded.seed,
        enforce_legality=enforce_legality,
        backend=backend,
        profile=profile,
        algorithm_name=f"replay:{recorded.result.algorithm}",
    )
