"""Synthetic steady-state kernels for large-n engine benchmarks.

The record-and-replay kernel (:mod:`repro.bench.replay`) measures the
engine in a *real* protocol's heaviest rounds, but producing a recording
requires running the protocol end to end on the legacy path — minutes at
n = 4096 and out of reach at n = 10^5.  This module manufactures the
steady-state regime directly: it builds an engine whose ground-truth
knowledge is already (nearly) complete, with a small population of
*laggards* missing a seeded sample of ids, and drives it with scheduled
nodes that re-broadcast slices of the id space to rotating neighbors.
That is exactly the traffic shape of a gossip run's final rounds — peak
pointer volume, almost every delivery teaching nothing — without paying
for the ramp-up.

Knowledge is injected per backend into the engine's primary
representation (``_ksets`` / ``_kmasks`` / the packed matrix), with all
derived counters rebuilt, so the three backends start digest-identical
and stay digest-identical through the window (asserted by
``tests/bench/test_steady.py``).  The scheduled nodes do no protocol
work of their own — ``absorb`` is a no-op and their private ``known``
views are left at ring size — so a timed window isolates the engine's
dispatch/screen/learn kernel, like a replay does.

Injection bypasses the engine's constructor invariants on purpose and is
only sound with ``enforce_legality=False`` (the synthetic senders
"know" the whole id space only in ground truth, not in their node-side
views the legality screen would consult after a sync).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from ..sim.engine import SynchronousEngine
from ..sim.messages import Message
from ..sim.node import ProtocolNode
from ..sim.rng import derive_seed
from ..sim.vector_kernel import np


@dataclass(frozen=True)
class SteadySpec:
    """Shape of one synthetic steady-state workload.

    Attributes:
        n: Machine count; ids are the dense integers ``0..n-1``.
        window: Rounds the kernel drives (each is one engine step).
        senders_per_round: Approximate number of complete nodes that
            transmit each round (spread evenly over the id space).
            ``None`` means every complete node sends every round.
        pointers_per_message: Ids carried per message, as a contiguous
            (wrapping) slice of the id space rotated per round.  ``None``
            means the full id space — the true steady-state payload, but
            only the vector backend can afford it at large n.
        laggards: Number of tail nodes still missing knowledge.  They
            receive but never send, and they are the only nodes for whom
            a delivery can teach anything.
        missing_per_laggard: Ids each laggard is missing (seeded sample).
        shared_missing: All laggards miss the *same* sample (a late-join
            cohort) instead of per-laggard samples.  Required when the
            laggard population is large — distinct samples cost
            ``laggards * missing_per_laggard`` memory, a shared one
            costs ``missing_per_laggard``.
        seed: Master seed; every derived choice (payload rotation, hop
            offsets, missing samples) is deterministic in it.
    """

    n: int
    window: int = 3
    senders_per_round: Optional[int] = None
    pointers_per_message: Optional[int] = None
    laggards: int = 64
    missing_per_laggard: int = 256
    shared_missing: bool = False
    seed: int = 11

    @property
    def bytes_per_node(self) -> int:
        """Packed-row width of one node's knowledge on the vector backend."""
        return (self.n + 7) >> 3

    @property
    def matrix_mb(self) -> float:
        """Vector-backend knowledge-matrix footprint in MiB."""
        return round(self.n * self.bytes_per_node / (1 << 20), 1)


class SteadyNode(ProtocolNode):
    """A scheduled sender that learns nothing and keeps no state.

    Subclassing binds the schedule as class attributes (the engine's
    factory protocol only passes a node id).  ``absorb`` is a no-op so
    delivered payloads don't drag n-sized updates through every
    recipient's node-side ``known`` set — ground truth lives in the
    engine, which is the thing being measured.
    """

    _n: int = 0
    _stride: int = 1
    _first_laggard: int = 0
    _payloads: Dict[int, FrozenSet[int]] = {}
    _hops: Dict[int, int] = {}

    def absorb(self, message: Message) -> None:
        pass

    def on_round(self, round_no: int, inbox, rng) -> Optional[List[Message]]:
        payload = self._payloads.get(round_no)
        if payload is None or self.node_id >= self._first_laggard:
            return None
        if (self.node_id - round_no) % self._stride:
            return None
        recipient = (self.node_id + self._hops[round_no]) % self._n
        return [Message("steady", self.node_id, recipient, payload)]


def ring_adjacency(n: int) -> Dict[int, FrozenSet[int]]:
    """Cheap O(n) bootstrap topology for injected engines."""
    return {
        i: frozenset({(i - 1) % n, (i + 1) % n}) for i in range(n)
    }


def laggard_missing(spec: SteadySpec) -> Dict[int, Set[int]]:
    """Seeded per-laggard missing-id samples.

    Samples avoid id 0 and everything at or above ``n - laggards - 2``,
    so no laggard is ever missing itself, a ring neighbor, or another
    laggard — keeping the injected state a plausible late-run snapshot.
    With ``shared_missing`` one sample object is shared by every laggard
    (the injector exploits the sharing; never mutate these sets).
    """
    n, count = spec.n, min(spec.laggards, max(0, spec.n - 4))
    first = n - count
    upper = max(1, first - 2)
    k = min(spec.missing_per_laggard, max(0, upper - 1))
    if spec.shared_missing:
        rng = random.Random(derive_seed(spec.seed, "steady-missing", -1))
        sample = set(rng.sample(range(1, upper), k)) if k > 0 else set()
        return {node: sample for node in range(first, n)}
    missing: Dict[int, Set[int]] = {}
    for node in range(first, n):
        rng = random.Random(derive_seed(spec.seed, "steady-missing", node))
        missing[node] = set(rng.sample(range(1, upper), k)) if k > 0 else set()
    return missing


def _group_by_sample(
    incomplete: Set[int], missing_by_node: Mapping[int, Set[int]]
) -> Dict[int, Tuple[Set[int], List[int]]]:
    """Incomplete nodes grouped by the *identity* of their missing set,
    so shared samples are translated and rasterized once, not per node."""
    groups: Dict[int, Tuple[Set[int], List[int]]] = {}
    for node in incomplete:
        sample = missing_by_node[node]
        entry = groups.get(id(sample))
        if entry is None:
            groups[id(sample)] = (sample, [node])
        else:
            entry[1].append(node)
    return groups


def inject_steady_state(
    engine: SynchronousEngine,
    missing_by_node: Mapping[int, Set[int]],
    *,
    sync_sets: bool = True,
) -> None:
    """Overwrite *engine*'s ground truth with near-complete knowledge.

    Every node knows the full id space except the listed missing ids;
    all derived counters (sizes, completeness, alive tallies, sync
    caches) are rebuilt so the engine is indistinguishable from one that
    ran its way into this state.  Works on all three backends; the
    shared-object tricks (one full Python set / one full bitmask for
    every complete node, one mask per distinct missing sample) keep the
    cost O(n + distinct samples), not O(n^2).

    ``sync_sets=False`` skips rebuilding the Python knowledge sets —
    mandatory at large n with many laggards, where materializing one set
    per laggard would dwarf the packed matrix itself.  The engine's
    ``knowledge`` property is then *poisoned* (emptied, not left subtly
    stale); digests, metrics, and goal predicates — everything the
    benchmark kernels read — stay exact.  Only the fast and vector
    backends support it (the legacy path computes *on* the sets).
    """
    if engine.enforce_legality:
        raise ValueError(
            "steady-state injection requires enforce_legality=False; the "
            "synthetic senders' node-side views never match ground truth"
        )
    n = engine.n
    node_ids = engine.node_ids
    index = engine._index
    incomplete = {node for node, ids in missing_by_node.items() if ids}
    groups = _group_by_sample(incomplete, missing_by_node)

    if sync_sets:
        full_set = set(node_ids)
        engine._ksets = {
            node: (full_set - missing_by_node[node])
            if node in incomplete
            else full_set
            for node in node_ids
        }
    elif engine.backend == "legacy":
        raise ValueError("sync_sets=False is meaningless on the legacy backend")
    else:
        engine._ksets = {}
    engine._ksets_stale = False
    engine._complete_nodes = n - len(incomplete)

    if engine.backend == "vector":
        state = engine._vstate
        full_row = np.full(state.nbytes, 0xFF, dtype=np.uint8)
        if n & 7:
            full_row[-1] = (1 << (n & 7)) - 1  # padding bits stay zero
        state.K[:] = full_row
        state.sizes[:] = n
        state.complete[:] = True
        state.complete_row[:] = full_row
        for sample, nodes in groups.values():
            bits = np.fromiter((index[m] for m in sample), dtype=np.intp)
            cleared = full_row.copy()
            np.bitwise_and.at(
                cleared, state.byte_of[bits], ~state.bitval_of[bits]
            )
            rows = np.fromiter((index[node] for node in nodes), dtype=np.intp)
            state.K[rows] = cleared
            state.sizes[rows] = n - bits.size
            state.complete[rows] = False
            np.bitwise_and.at(
                state.complete_row, state.byte_of[rows], ~state.bitval_of[rows]
            )
        engine._vdirty.clear()
    elif engine.backend == "fast":
        full_mask = (1 << n) - 1
        engine._kmasks = kmasks = [full_mask] * n
        engine._ksizes = ksizes = [n] * n
        incomplete_rows = bytearray((n + 7) >> 3)
        for sample, nodes in groups.values():
            drop = 0
            for m in sample:
                drop |= 1 << index[m]  # _pow2 is absent at large n
            lag_mask = full_mask ^ drop
            lag_size = n - len(sample)
            for node in nodes:
                row = index[node]
                kmasks[row] = lag_mask
                ksizes[row] = lag_size
                incomplete_rows[row >> 3] |= 1 << (row & 7)
        engine._complete_mask = full_mask ^ int.from_bytes(
            incomplete_rows, "little"
        )
        engine._kcache_masks = list(kmasks)
    else:  # legacy: the per-id path keeps a known-by counter for weak goals
        known_by = {node: n for node in node_ids}
        for sample, nodes in groups.values():
            for m in sample:
                known_by[m] -= len(nodes)
        engine._known_by = known_by

    engine._rebuild_alive_counters()


def build_steady_engine(
    spec: SteadySpec, backend: str, *, sync_sets: bool = True
) -> Tuple[SynchronousEngine, int]:
    """Build an injected engine plus the window's total pointer count.

    Step the engine ``spec.window`` times to execute the workload; the
    returned pointer count is what the engine's metrics will report for
    those rounds (useful for ns/pointer without reading metrics early).
    Pass ``sync_sets=False`` at large n (see :func:`inject_steady_state`).
    """
    n = spec.n
    first_laggard = n - min(spec.laggards, max(0, n - 4))
    stride = 1
    if spec.senders_per_round is not None:
        stride = max(1, n // max(1, spec.senders_per_round))

    size = spec.pointers_per_message
    payloads: Dict[int, FrozenSet[int]] = {}
    full_payload: Optional[FrozenSet[int]] = None
    hops: Dict[int, int] = {}
    window_pointers = 0
    for round_no in range(1, spec.window + 1):
        if size is None or size >= n:
            if full_payload is None:
                full_payload = frozenset(range(n))
            payloads[round_no] = full_payload
        else:
            base = derive_seed(spec.seed, "steady-payload", round_no) % n
            payloads[round_no] = frozenset(
                (base + j) % n for j in range(size)
            )
        hops[round_no] = derive_seed(spec.seed, "steady-hop", round_no) % (n - 1) + 1
        senders = sum(
            1
            for i in range(first_laggard)
            if (i - round_no) % stride == 0
        )
        window_pointers += senders * len(payloads[round_no])

    node_type = type(
        "BoundSteadyNode",
        (SteadyNode,),
        {
            "_n": n,
            "_stride": stride,
            "_first_laggard": first_laggard,
            "_payloads": payloads,
            "_hops": hops,
        },
    )
    engine = SynchronousEngine(
        ring_adjacency(n),
        node_type,
        seed=spec.seed,
        enforce_legality=False,
        backend=backend,
        algorithm_name=f"steady:{spec.n}",
    )
    inject_steady_state(engine, laggard_missing(spec), sync_sets=sync_sets)
    return engine, window_pointers


def run_steady_window(spec: SteadySpec, backend: str) -> List[str]:
    """Drive one window and return the per-round knowledge digests.

    The cross-backend equivalence test compares these lists; benchmarks
    time :func:`build_steady_engine` + ``engine.step()`` directly
    instead, keeping digesting out of the measured region.
    """
    engine, _ = build_steady_engine(spec, backend)
    digests = []
    for _ in range(spec.window):
        engine.step()
        digests.append(engine.knowledge_digest())
    return digests
