"""Persistence for run results.

Sweeps are expensive; analyses are cheap.  The store serializes
:class:`repro.sim.metrics.RunResult` collections to a stable JSON schema
so post-hoc analysis (fitting, plotting, regression tracking between
library versions) never needs to re-run the simulations.

Round-level trajectories are included optionally: they dominate file size
and most analyses only need the totals.

Two on-disk formats live here:

* **results files** (:func:`save_results` / :func:`load_results`) — one
  JSON document written after a sweep finishes; the analysis-facing
  artifact.
* **sweep journals** (:func:`append_journal` / :func:`load_journal`) —
  an append-only JSONL log written *while* a sweep runs, one record per
  line, fsynced per append.  The first record is a manifest describing
  the case matrix; each completed cell appends a ``result`` or
  ``failure`` record, so an interrupted sweep loses at most the cell in
  flight and :class:`repro.bench.sweeprun.SweepRunner` can resume by
  skipping journaled cells.  See docs/OPS.md for the schema.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple, Union

from ..sim.metrics import RoundStats, RunResult

SCHEMA_VERSION = 1

#: Schema version stamped into journal manifests; bump when record shapes
#: change incompatibly.
JOURNAL_SCHEMA = 1


def result_to_dict(result: RunResult, include_rounds: bool = False) -> Dict[str, Any]:
    """JSON-ready dict for one result (observer extras are not persisted:
    they may hold arbitrary objects)."""
    payload: Dict[str, Any] = {
        "algorithm": result.algorithm,
        "n": result.n,
        "seed": result.seed,
        "completed": result.completed,
        "rounds": result.rounds,
        "messages": result.messages,
        "pointers": result.pointers,
        "dropped_messages": result.dropped_messages,
        "messages_by_kind": dict(result.messages_by_kind),
        "pointers_by_kind": dict(result.pointers_by_kind),
        "dropped_by_reason": dict(result.dropped_by_reason),
        # JSON object keys are strings; delays are re-int-keyed on load.
        "delivery_delays": {
            str(delay): count for delay, count in result.delivery_delays.items()
        },
        "params": dict(result.params),
    }
    if include_rounds:
        payload["round_stats"] = [
            {
                "round_no": stats.round_no,
                "messages": stats.messages,
                "pointers": stats.pointers,
                "dropped_messages": stats.dropped_messages,
            }
            for stats in result.round_stats
        ]
    return payload


def result_from_dict(payload: Dict[str, Any]) -> RunResult:
    """Inverse of :func:`result_to_dict`."""
    round_stats = tuple(
        RoundStats(
            round_no=entry["round_no"],
            messages=entry["messages"],
            pointers=entry["pointers"],
            dropped_messages=entry.get("dropped_messages", 0),
        )
        for entry in payload.get("round_stats", ())
    )
    return RunResult(
        algorithm=payload["algorithm"],
        n=payload["n"],
        seed=payload["seed"],
        completed=payload["completed"],
        rounds=payload["rounds"],
        messages=payload["messages"],
        pointers=payload["pointers"],
        dropped_messages=payload.get("dropped_messages", 0),
        messages_by_kind=dict(payload.get("messages_by_kind", {})),
        pointers_by_kind=dict(payload.get("pointers_by_kind", {})),
        dropped_by_reason=dict(payload.get("dropped_by_reason", {})),
        delivery_delays={
            int(delay): count
            for delay, count in payload.get("delivery_delays", {}).items()
        },
        round_stats=round_stats,
        params=dict(payload.get("params", {})),
    )


def save_results(
    results: Iterable[RunResult],
    path: Union[str, Path],
    include_rounds: bool = False,
    metadata: Dict[str, Any] | None = None,
) -> int:
    """Write results to *path*; returns the number saved."""
    rows = [result_to_dict(result, include_rounds) for result in results]
    document = {
        "schema": SCHEMA_VERSION,
        "metadata": dict(metadata or {}),
        "results": rows,
    }
    Path(path).write_text(json.dumps(document, indent=1, sort_keys=True))
    return len(rows)


def load_results(path: Union[str, Path]) -> List[RunResult]:
    """Read results previously written by :func:`save_results`."""
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or "results" not in document:
        raise ValueError(f"{path}: not a repro results file")
    schema = document.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema {schema!r} (expected {SCHEMA_VERSION})"
        )
    return [result_from_dict(entry) for entry in document["results"]]


def load_metadata(path: Union[str, Path]) -> Dict[str, Any]:
    """The metadata block of a results file."""
    document = json.loads(Path(path).read_text())
    return dict(document.get("metadata", {}))


# -- sweep journals -----------------------------------------------------------------


def append_journal(path: Union[str, Path], record: Dict[str, Any]) -> None:
    """Append one record to a JSONL journal, durably.

    The line is flushed and fsynced before returning, so a crash after
    the call cannot lose the record; a crash *during* the call leaves at
    most one torn trailing line, which :func:`read_journal` discards.
    """
    line = json.dumps(record, sort_keys=True, default=repr)
    with open(path, "a", encoding="utf-8") as stream:
        stream.write(line + "\n")
        stream.flush()
        os.fsync(stream.fileno())


def read_journal(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read every intact record of a journal.

    A torn final line (the footprint of a crash mid-append) is silently
    dropped; a torn line anywhere *else* means the file is not a journal
    and raises.
    """
    records: List[Dict[str, Any]] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for number, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if number == len(lines) - 1:
                break  # torn tail write from an interrupted append
            raise ValueError(
                f"{path}: corrupt journal record on line {number + 1}"
            ) from None
    return records


def load_journal(
    path: Union[str, Path],
) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]], Dict[str, Dict[str, Any]]]:
    """Fold a journal into ``(manifest, results_by_key, failures_by_key)``.

    Later records win per cell key, and a ``result`` clears any earlier
    ``failure`` for the same cell (a retry or resume that eventually
    succeeded).  ``resume`` and ``complete`` marker records are skipped.
    """
    manifest: Dict[str, Any] = {}
    results: Dict[str, Dict[str, Any]] = {}
    failures: Dict[str, Dict[str, Any]] = {}
    for record in read_journal(path):
        record_type = record.get("type")
        if record_type == "manifest":
            if not manifest:
                manifest = record
        elif record_type == "result":
            key = record["key"]
            results[key] = record
            failures.pop(key, None)
        elif record_type == "failure":
            failures[record["key"]] = record
    if not manifest:
        raise ValueError(f"{path}: no manifest record; not a sweep journal")
    schema = manifest.get("schema")
    if schema != JOURNAL_SCHEMA:
        raise ValueError(
            f"{path}: unsupported journal schema {schema!r} "
            f"(expected {JOURNAL_SCHEMA})"
        )
    return manifest, results, failures
