"""Persistence for run results.

Sweeps are expensive; analyses are cheap.  The store serializes
:class:`repro.sim.metrics.RunResult` collections to a stable JSON schema
so post-hoc analysis (fitting, plotting, regression tracking between
library versions) never needs to re-run the simulations.

Round-level trajectories are included optionally: they dominate file size
and most analyses only need the totals.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from ..sim.metrics import RoundStats, RunResult

SCHEMA_VERSION = 1


def result_to_dict(result: RunResult, include_rounds: bool = False) -> Dict[str, Any]:
    """JSON-ready dict for one result (observer extras are not persisted:
    they may hold arbitrary objects)."""
    payload: Dict[str, Any] = {
        "algorithm": result.algorithm,
        "n": result.n,
        "seed": result.seed,
        "completed": result.completed,
        "rounds": result.rounds,
        "messages": result.messages,
        "pointers": result.pointers,
        "dropped_messages": result.dropped_messages,
        "messages_by_kind": dict(result.messages_by_kind),
        "pointers_by_kind": dict(result.pointers_by_kind),
        "dropped_by_reason": dict(result.dropped_by_reason),
        # JSON object keys are strings; delays are re-int-keyed on load.
        "delivery_delays": {
            str(delay): count for delay, count in result.delivery_delays.items()
        },
        "params": dict(result.params),
    }
    if include_rounds:
        payload["round_stats"] = [
            {
                "round_no": stats.round_no,
                "messages": stats.messages,
                "pointers": stats.pointers,
                "dropped_messages": stats.dropped_messages,
            }
            for stats in result.round_stats
        ]
    return payload


def result_from_dict(payload: Dict[str, Any]) -> RunResult:
    """Inverse of :func:`result_to_dict`."""
    round_stats = tuple(
        RoundStats(
            round_no=entry["round_no"],
            messages=entry["messages"],
            pointers=entry["pointers"],
            dropped_messages=entry.get("dropped_messages", 0),
        )
        for entry in payload.get("round_stats", ())
    )
    return RunResult(
        algorithm=payload["algorithm"],
        n=payload["n"],
        seed=payload["seed"],
        completed=payload["completed"],
        rounds=payload["rounds"],
        messages=payload["messages"],
        pointers=payload["pointers"],
        dropped_messages=payload.get("dropped_messages", 0),
        messages_by_kind=dict(payload.get("messages_by_kind", {})),
        pointers_by_kind=dict(payload.get("pointers_by_kind", {})),
        dropped_by_reason=dict(payload.get("dropped_by_reason", {})),
        delivery_delays={
            int(delay): count
            for delay, count in payload.get("delivery_delays", {}).items()
        },
        round_stats=round_stats,
        params=dict(payload.get("params", {})),
    )


def save_results(
    results: Iterable[RunResult],
    path: Union[str, Path],
    include_rounds: bool = False,
    metadata: Dict[str, Any] | None = None,
) -> int:
    """Write results to *path*; returns the number saved."""
    rows = [result_to_dict(result, include_rounds) for result in results]
    document = {
        "schema": SCHEMA_VERSION,
        "metadata": dict(metadata or {}),
        "results": rows,
    }
    Path(path).write_text(json.dumps(document, indent=1, sort_keys=True))
    return len(rows)


def load_results(path: Union[str, Path]) -> List[RunResult]:
    """Read results previously written by :func:`save_results`."""
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or "results" not in document:
        raise ValueError(f"{path}: not a repro results file")
    schema = document.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema {schema!r} (expected {SCHEMA_VERSION})"
        )
    return [result_from_dict(entry) for entry in document["results"]]


def load_metadata(path: Union[str, Path]) -> Dict[str, Any]:
    """The metadata block of a results file."""
    document = json.loads(Path(path).read_text())
    return dict(document.get("metadata", {}))
