"""F5 — convergence curves: how completeness saturates round by round.

For each algorithm at a fixed n, the figure series is the fraction of the
complete knowledge graph known after each round (mean over machines),
with the t50/t90/t99/t100 milestone table beside it.

The story: swamping saturates almost instantly (it squares the graph but
pays cubic pointers), namedropper rises smoothly (every round spreads a
constant factor), and sublog is *stepped* — completeness jumps at phase
boundaries and spikes at the final roster broadcast, the visual signature
of the cluster-merging mechanism.
"""

from __future__ import annotations

from ...analysis.convergence import curve_from_history
from ...sim.observers import KnowledgeSizeObserver
from ..runner import Case, run_case
from ..seeds import Scale
from ..tables import ExperimentReport, Figure, Table

EXPERIMENT_ID = "F5"
TITLE = "Knowledge completeness per round (convergence curves)"

ALGORITHMS = ("sublog", "namedropper", "swamping")


def run(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    n = scale.focus_n
    curves = {}
    for algorithm in ALGORITHMS:
        case = Case(
            algorithm=algorithm,
            topology="kout",
            n=n,
            seed=scale.seeds[0],
            params={"full": False} if algorithm == "swamping" else {},
            topology_params={"k": 3},
        )
        observer = KnowledgeSizeObserver()
        result = run_case(case, observers=[observer])
        assert result.completed
        curves[algorithm] = curve_from_history(observer.history, n=n)

    depth = max(curve.rounds for curve in curves.values()) + 1
    rounds_axis = list(range(depth))
    figure = Figure(
        f"F5: mean completeness per round (kout, k=3, n={n})",
        "round",
        rounds_axis,
        caption="1.0 = every machine knows every other",
    )
    for algorithm, curve in curves.items():
        values = list(curve.completeness)
        values += [1.0] * (depth - len(values))
        figure.add_series(algorithm, [round(v, 4) for v in values])
    report.add(figure)

    milestones = Table(
        "F5b: rounds to completeness milestones",
        ["algorithm", "t50", "t90", "t99", "t100", "sparkline"],
    )
    for algorithm, curve in curves.items():
        stones = curve.milestones()
        milestones.add_row(
            algorithm,
            stones["t50"],
            stones["t90"],
            stones["t99"],
            stones["t100"],
            curve.sparkline(),
        )
    report.add(milestones)
    report.summary = {
        algorithm: curve.milestones() for algorithm, curve in curves.items()
    }
    return report
