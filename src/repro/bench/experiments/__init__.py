"""Experiment registry: one module per evaluation table/figure.

Each module exposes ``EXPERIMENT_ID``, ``TITLE``, and
``run(scale) -> ExperimentReport``.  The registry is consumed by the CLI
(``python -m repro experiment T1``) and by the pytest-benchmark drivers in
``benchmarks/``.
"""

from __future__ import annotations

from types import ModuleType
from typing import Dict, Tuple

from . import (
    f1_scaling,
    f2_cluster_growth,
    f3_topologies,
    f4_lower_bound,
    f5_convergence,
    t1_headline,
    t2_messages,
    t3_faults,
    t4_weak_strong,
    t5_ablations,
    t6_churn,
    t7_asynchrony,
    t8_load,
    t9_load_realism,
)

_MODULES: Tuple[ModuleType, ...] = (
    t1_headline,
    t2_messages,
    f1_scaling,
    f2_cluster_growth,
    f3_topologies,
    f4_lower_bound,
    f5_convergence,
    t3_faults,
    t4_weak_strong,
    t5_ablations,
    t6_churn,
    t7_asynchrony,
    t8_load,
    t9_load_realism,
)

EXPERIMENTS: Dict[str, ModuleType] = {
    module.EXPERIMENT_ID: module for module in _MODULES
}


def experiment_ids() -> Tuple[str, ...]:
    return tuple(EXPERIMENTS)


def get_experiment(experiment_id: str) -> ModuleType:
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        raise ValueError(f"unknown experiment {experiment_id!r}; known: {known}")
    return EXPERIMENTS[key]
