"""T7 — sensitivity to bounded asynchrony (extension experiment).

The synchronous model is an idealization; real networks deliver messages
with variable latency.  This experiment re-runs discovery with *delivery
jitter*: a message arrives 1 .. 1 + J rounds after it was sent (uniform,
deterministic in the seed).

Expected shape, and why it is interesting:

* gossip (namedropper, flooding) degrades mildly — its progress argument
  only needs messages to arrive *eventually*;
* the phase-structured core algorithm degrades roughly linearly in J —
  an invite that misses its phase's FORWARD step waits for the next
  phase — but **still completes** for every J, because all its handlers
  were built to tolerate off-schedule messages (the same healing paths
  that give loss tolerance).  Lockstep is a performance assumption, not
  a correctness assumption.
"""

from __future__ import annotations

import statistics
from typing import Dict

from ..runner import Case, run_case
from ..seeds import Scale
from ..tables import ExperimentReport, Table

EXPERIMENT_ID = "T7"
TITLE = "Bounded asynchrony: rounds under delivery jitter"

JITTERS = (0, 1, 2, 4)
ALGORITHMS = ("sublog", "namedropper", "flooding")
SUBLOG_ASYNC_PARAMS = {"resilient": True, "stagnation_phases": 4}


def run(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    n = scale.focus_n
    table = Table(
        f"T7: median rounds under delivery jitter (kout, k=3, n={n})",
        ["jitter", *ALGORITHMS],
        caption="jitter J: messages take 1..1+J rounds to arrive",
    )
    summary: Dict[str, Dict[int, float]] = {a: {} for a in ALGORITHMS}
    for jitter in JITTERS:
        row: list[object] = [jitter]
        for algorithm in ALGORITHMS:
            params = (
                SUBLOG_ASYNC_PARAMS if (algorithm == "sublog" and jitter) else {}
            )
            rounds = []
            for seed in scale.seeds:
                case = Case(
                    algorithm=algorithm,
                    topology="kout",
                    n=n,
                    seed=seed,
                    params=params,
                    topology_params={"k": 3},
                )
                result = run_case(case, jitter=jitter, max_rounds=4000)
                assert result.completed, (algorithm, jitter, seed)
                rounds.append(result.rounds)
            median = statistics.median(rounds)
            summary[algorithm][jitter] = median
            row.append(f"{median:.0f}")
        table.add_row(*row)
    report.add(table)
    report.note(
        "all algorithms complete at every jitter level; sublog's phase "
        "machine pays roughly linearly in J (an off-phase invite waits "
        "for the next phase) while gossip pays a small constant factor"
    )
    report.summary = summary
    return report
