"""T7 — sensitivity to bounded asynchrony (extension experiment).

The synchronous model is an idealization; real networks deliver messages
with variable latency.  This experiment re-runs discovery with *delivery
jitter*: a message arrives 1 .. 1 + J rounds after it was sent (uniform,
deterministic in the seed).

Expected shape, and why it is interesting:

* gossip (namedropper, flooding) degrades mildly — its progress argument
  only needs messages to arrive *eventually*;
* the phase-structured core algorithm degrades roughly linearly in J —
  an invite that misses its phase's FORWARD step waits for the next
  phase — but **still completes** for every J, because all its handlers
  were built to tolerate off-schedule messages (the same healing paths
  that give loss tolerance).  Lockstep is a performance assumption, not
  a correctness assumption.

A second table runs the hostile delivery models of
:mod:`repro.sim.transport` at the same bound (D = 2, so every delivery
lands within 3 rounds of its send in all three rows):

* ``jitter:2`` — random delays, the baseline for comparison;
* ``adversarial:2`` — every message held the full 3 rounds, the
  worst-case stationary schedule a 3-bounded adversary can play;
* ``perlink:2`` — fixed heterogeneous per-link delays (slow links stay
  slow), the regime where a single slow link can gate a whole cluster
  merge.

The claim under test is the same: every algorithm still completes under
every model — the delivery schedule moves constants, not correctness.
"""

from __future__ import annotations

import statistics
from typing import Dict

from ..runner import Case, run_case
from ..seeds import Scale
from ..tables import ExperimentReport, Table

EXPERIMENT_ID = "T7"
TITLE = "Bounded asynchrony: rounds under delivery jitter"

JITTERS = (0, 1, 2, 4)
ALGORITHMS = ("sublog", "namedropper", "flooding")
SUBLOG_ASYNC_PARAMS = {"resilient": True, "stagnation_phases": 4}

#: Delivery models compared at the same delay bound (see module docstring).
DELIVERY_MODELS = ("jitter:2", "adversarial:2", "perlink:2")


def run(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    n = scale.focus_n
    table = Table(
        f"T7: median rounds under delivery jitter (kout, k=3, n={n})",
        ["jitter", *ALGORITHMS],
        caption="jitter J: messages take 1..1+J rounds to arrive",
    )
    summary: Dict[str, Dict[int, float]] = {a: {} for a in ALGORITHMS}
    for jitter in JITTERS:
        row: list[object] = [jitter]
        for algorithm in ALGORITHMS:
            params = (
                SUBLOG_ASYNC_PARAMS if (algorithm == "sublog" and jitter) else {}
            )
            rounds = []
            for seed in scale.seeds:
                case = Case(
                    algorithm=algorithm,
                    topology="kout",
                    n=n,
                    seed=seed,
                    params=params,
                    topology_params={"k": 3},
                )
                result = run_case(case, jitter=jitter, max_rounds=4000)
                assert result.completed, (algorithm, jitter, seed)
                rounds.append(result.rounds)
            median = statistics.median(rounds)
            summary[algorithm][jitter] = median
            row.append(f"{median:.0f}")
        table.add_row(*row)
    report.add(table)

    model_table = Table(
        f"T7b: median rounds by delivery model, delay bound 3 (kout, k=3, n={n})",
        ["delivery", *ALGORITHMS],
        caption=(
            "same bound, three schedules: random (jitter:2), worst-case "
            "(adversarial:2), fixed-per-link (perlink:2)"
        ),
    )
    model_summary: Dict[str, Dict[str, float]] = {a: {} for a in ALGORITHMS}
    for delivery in DELIVERY_MODELS:
        row = [delivery]
        for algorithm in ALGORITHMS:
            params = SUBLOG_ASYNC_PARAMS if algorithm == "sublog" else {}
            rounds = []
            for seed in scale.seeds:
                case = Case(
                    algorithm=algorithm,
                    topology="kout",
                    n=n,
                    seed=seed,
                    params=params,
                    topology_params={"k": 3},
                    delivery=delivery,
                )
                result = run_case(case, max_rounds=4000)
                assert result.completed, (algorithm, delivery, seed)
                rounds.append(result.rounds)
            median = statistics.median(rounds)
            model_summary[algorithm][delivery] = median
            row.append(f"{median:.0f}")
        model_table.add_row(*row)
    report.add(model_table)

    report.note(
        "all algorithms complete at every jitter level; sublog's phase "
        "machine pays roughly linearly in J (an off-phase invite waits "
        "for the next phase) while gossip pays a small constant factor"
    )
    report.note(
        "every delivery model completes too: the adversarial schedule is "
        "the most expensive (every message maximally late), while fixed "
        "per-link delays cost about the same as random jitter of the same "
        "bound (slow links are at least predictable)"
    )
    report.summary = {"jitter": summary, "delivery": model_summary}
    return report
