"""F2 — cluster-growth dynamics of the core algorithm.

Plots (as a series table) the per-phase cluster count and min/median/max
cluster sizes on one large random 3-out input, next to the idealized
squaring recurrence.  This is the mechanism figure: the doubly-exponential
collapse in cluster count is what makes the round complexity
doubly-logarithmic.
"""

from __future__ import annotations

from ...analysis.bounds import squaring_recurrence
from ...core.observers import ClusterSizeObserver
from ..runner import Case, run_case
from ..seeds import Scale
from ..tables import ExperimentReport, Table

EXPERIMENT_ID = "F2"
TITLE = "Cluster-size dynamics per phase (sublog)"


def run(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    n = scale.big_n
    observer = ClusterSizeObserver()
    case = Case(
        algorithm="sublog",
        topology="kout",
        n=n,
        seed=scale.seeds[0],
        topology_params={"k": 3},
    )
    result = run_case(case, observers=[observer])

    table = Table(
        f"F2: sublog cluster dynamics (kout, k=3, n={n})",
        ["phase", "clusters", "min-size", "median-size", "max-size", "ideal-sq"],
        caption="ideal-sq: the pure squaring recurrence 2, 4, 16, ... capped at n",
    )
    ideal = squaring_recurrence(2, n)
    for entry in observer.history:
        phase = int(entry["phase"])
        ideal_value = ideal[min(phase, len(ideal) - 1)] if phase >= 0 else 2
        table.add_row(
            phase,
            int(entry["clusters"]),
            int(entry["min"]),
            int(entry["median"]),
            int(entry["max"]),
            ideal_value,
        )
    report.add(table)
    report.note(
        f"completed={result.completed} rounds={result.rounds} "
        f"messages={result.messages:,} pointers={result.pointers:,}"
    )
    phases = [h for h in observer.history if h["phase"] > 0]
    merged_by = next(
        (h["phase"] for h in phases if h["clusters"] == 1), phases[-1]["phase"]
    )
    report.note(f"single cluster reached by phase {merged_by}")
    report.summary = {
        "history": observer.history,
        "rounds": result.rounds,
        "merged_by_phase": merged_by,
    }
    return report
