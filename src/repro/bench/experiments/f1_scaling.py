"""F1 — round-scaling figure.

The figure version of T1: one series per algorithm, rounds (median over
seeds) against n on random 3-out inputs, with the ball-containment lower
bound as the reference series.  Rendered as the exact numbers the plot
would show.
"""

from __future__ import annotations

import statistics
from typing import Optional

from ...analysis.bounds import lower_bound_rounds
from ...graphs.generators import make_topology
from ..runner import index_results, sweep
from ..seeds import Scale
from ..sweeprun import SweepOptions
from ..tables import ExperimentReport, Figure

EXPERIMENT_ID = "F1"
TITLE = "Rounds vs n (figure series)"

ALGORITHMS = ("sublog", "sublogcoin", "namedropper", "flooding")
#: Mirrors T1's caps (same justification there); sublog runs uncapped.
SIZE_CAPS = {"flooding": 2048, "namedropper": 8192, "sublogcoin": 16384}


def run(scale: Scale, options: Optional[SweepOptions] = None) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    results = sweep(
        ALGORITHMS,
        "kout",
        scale.sweep_sizes,
        scale.seeds,
        topology_params={"k": 3},
        size_caps=SIZE_CAPS,
        **(options.sweep_kwargs() if options else {}),
    )
    indexed = index_results(results)

    figure = Figure(
        "F1: rounds to strong discovery vs n (kout, k=3)",
        "n",
        list(scale.sweep_sizes),
        caption="series are medians; lower-bound = ceil(log2 diameter)",
    )
    bounds = [
        float(
            lower_bound_rounds(
                make_topology("kout", n, seed=scale.seeds[0], k=3),
                exact=n <= 1500,
            )
        )
        for n in scale.sweep_sizes
    ]
    figure.add_series("lower-bound", bounds)
    for algorithm in ALGORITHMS:
        series = []
        for n in scale.sweep_sizes:
            runs = indexed.get((algorithm, n))
            if runs:
                series.append(float(statistics.median(r.rounds for r in runs)))
            else:
                series.append(float("nan"))
        figure.add_series(algorithm, series)
    report.add(figure)
    report.summary = {"x": list(scale.sweep_sizes)}
    return report
