"""T2 — message and pointer complexity.

Validates the second half of the headline: the core algorithm keeps its
message complexity near-linear in n (the "optimal message complexity" the
PODC announcement advertises), while the round-optimal baseline (swamping)
pays with pointer complexity that is cubic-ish, and Name-Dropper sits in
between.

Columns report messages, messages-per-machine, and pointers.  The pointer
floor for strong discovery is Ω(n²) — every machine must receive ~n ids —
which the ``sublog`` pointer column approaches within a small factor (the
final roster broadcast dominates; experiment T4 isolates it).
"""

from __future__ import annotations

import statistics
from typing import Optional

from ...analysis.bounds import optimal_message_bound
from ..runner import index_results, sweep
from ..seeds import Scale
from ..sweeprun import SweepOptions
from ..tables import ExperimentReport, Table

EXPERIMENT_ID = "T2"
TITLE = "Message and pointer complexity on random 3-out graphs"

ALGORITHMS = ("sublog", "namedropper", "swamping", "flooding")
SIZE_CAPS = {"swamping": 512}


def run(scale: Scale, options: Optional[SweepOptions] = None) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    results = sweep(
        ALGORITHMS,
        "kout",
        scale.sweep_sizes,
        scale.seeds,
        params_by_algorithm={"swamping": {"full": False}},
        topology_params={"k": 3},
        size_caps=SIZE_CAPS,
        **(options.sweep_kwargs() if options else {}),
    )
    indexed = index_results(results)

    msg_table = Table(
        "T2a: median messages (and messages per machine)",
        ["n", "msg-bound", *ALGORITHMS],
        caption="message lower bound = n-1; cells: total (per machine)",
    )
    ptr_table = Table(
        "T2b: median pointers",
        ["n", *ALGORITHMS],
        caption="pointer floor for strong discovery is ~n^2/2",
    )
    per_node: dict[str, list[float]] = {a: [] for a in ALGORITHMS}
    for n in scale.sweep_sizes:
        msg_row: list[object] = [n, optimal_message_bound(n)]
        ptr_row: list[object] = [n]
        for algorithm in ALGORITHMS:
            runs = indexed.get((algorithm, n))
            if not runs:
                msg_row.append("-")
                ptr_row.append("-")
                continue
            messages = statistics.median(r.messages for r in runs)
            pointers = statistics.median(r.pointers for r in runs)
            per_node[algorithm].append(messages / n)
            msg_row.append(f"{messages:,.0f} ({messages / n:.1f})")
            ptr_row.append(f"{pointers:,.0f}")
        msg_table.add_row(*msg_row)
        ptr_table.add_row(*ptr_row)
    report.add(msg_table)
    report.add(ptr_table)

    for algorithm, values in per_node.items():
        if len(values) >= 2:
            report.note(
                f"{algorithm}: messages/machine across the sweep: "
                + " -> ".join(f"{v:.1f}" for v in values)
            )
    report.summary = {"messages_per_node": per_node}
    return report
