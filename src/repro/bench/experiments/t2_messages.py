"""T2 — message and pointer complexity across the full algorithm catalog.

Validates the second half of the headline: the core algorithm keeps its
message complexity near-linear in n (the "optimal message complexity" the
PODC announcement advertises), while the round-optimal baseline (swamping)
pays with pointer complexity that is cubic-ish, and Name-Dropper sits in
between.  The deterministic baselines bracket the randomized field from
both sides: ``det_optimal`` (KKS-style aggregate-then-broadcast) sets the
message *floor* of the suite — on random 3-out graphs at n ≥ 1024 its
total message count beats every randomized algorithm — while
``chord_discover`` shows what structured-overlay maintenance costs in
pointers when every machine keeps Θ(log n) fingers current.

Columns report messages, messages-per-machine, pointers, and rounds.  The
pointer floor for strong discovery is Ω(n²) — every machine must receive
~n ids — which the ``sublog`` pointer column approaches within a small
factor (the final roster broadcast dominates; experiment T4 isolates it).

The algorithm list is derived from the registry (never hard-coded), so a
newly registered algorithm joins this experiment automatically.
"""

from __future__ import annotations

import statistics
from typing import Optional

from ...algorithms import algorithm_names
from ...analysis.bounds import optimal_message_bound
from ..runner import index_results, sweep
from ..seeds import Scale
from ..sweeprun import SweepOptions
from ..tables import ExperimentReport, Table

EXPERIMENT_ID = "T2"
TITLE = "Message and pointer complexity on random 3-out graphs"

#: Coin-flipping algorithms — the field det_optimal must beat on messages.
RANDOMIZED = ("rpj", "namedropper", "sublog", "sublogcoin")

#: Classic swamping's pointer complexity is cubic; chord_discover's
#: every-finger delta push is pointer-quadratic with a Θ(log n) fan-out
#: constant (~24M pointers at n=1024).  Past these sizes the cells cost
#: minutes and add no insight.
SIZE_CAPS = {"swamping": 512, "chord_discover": 1024}


def run(scale: Scale, options: Optional[SweepOptions] = None) -> ExperimentReport:
    algorithms = tuple(algorithm_names())
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    results = sweep(
        algorithms,
        "kout",
        scale.sweep_sizes,
        scale.seeds,
        params_by_algorithm={"swamping": {"full": False}},
        topology_params={"k": 3},
        size_caps=SIZE_CAPS,
        **(options.sweep_kwargs() if options else {}),
    )
    indexed = index_results(results)

    msg_table = Table(
        "T2a: median messages (and messages per machine)",
        ["n", "msg-bound", *algorithms],
        caption="message lower bound = n-1; cells: total (per machine)",
    )
    ptr_table = Table(
        "T2b: median pointers",
        ["n", *algorithms],
        caption="pointer floor for strong discovery is ~n^2/2",
    )
    rnd_table = Table(
        "T2c: median rounds",
        ["n", *algorithms],
        caption="deterministic baselines trade rounds for messages",
    )
    per_node: dict[str, list[float]] = {a: [] for a in algorithms}
    medians: dict[tuple[str, int], float] = {}
    for n in scale.sweep_sizes:
        msg_row: list[object] = [n, optimal_message_bound(n)]
        ptr_row: list[object] = [n]
        rnd_row: list[object] = [n]
        for algorithm in algorithms:
            runs = indexed.get((algorithm, n))
            if not runs:
                msg_row.append("-")
                ptr_row.append("-")
                rnd_row.append("-")
                continue
            messages = statistics.median(r.messages for r in runs)
            pointers = statistics.median(r.pointers for r in runs)
            rounds = statistics.median(r.rounds for r in runs)
            medians[(algorithm, n)] = messages
            per_node[algorithm].append(messages / n)
            msg_row.append(f"{messages:,.0f} ({messages / n:.1f})")
            ptr_row.append(f"{pointers:,.0f}")
            rnd_row.append(f"{rounds:.0f}")
        msg_table.add_row(*msg_row)
        ptr_table.add_row(*ptr_row)
        rnd_table.add_row(*rnd_row)
    report.add(msg_table)
    report.add(ptr_table)
    report.add(rnd_table)

    for algorithm, values in per_node.items():
        if len(values) >= 2:
            report.note(
                f"{algorithm}: messages/machine across the sweep: "
                + " -> ".join(f"{v:.1f}" for v in values)
            )

    # The acceptance claim: at every measured n >= 1024, det_optimal's
    # total message count undercuts every randomized algorithm.
    beats_at = []
    for n in scale.sweep_sizes:
        mine = medians.get(("det_optimal", n))
        field = [medians[(a, n)] for a in RANDOMIZED if (a, n) in medians]
        if mine is not None and field and mine < min(field):
            beats_at.append(n)
    if beats_at:
        report.note(
            "det_optimal beats every randomized algorithm on total "
            f"messages at n in {beats_at}"
        )
    report.summary = {
        "messages_per_node": per_node,
        "det_optimal_beats_randomized_at": beats_at,
    }
    return report
