"""F4 — the ball-containment lower bound, observed.

Runs the round-optimal baseline (swamping, which squares the knowledge
graph and therefore *saturates* the bound) and the core algorithm on a
path, with the strict :class:`BallContainmentObserver` attached, and prints
per round the maximum observed knowledge radius against the 2^t ceiling.

Two facts are demonstrated at once:

* no run ever exceeds the ceiling (the checker is strict: a violation
  would abort the experiment) — simulator and algorithms obey the model;
* swamping's radius doubles every round, i.e. the bound is tight, so the
  Ω(log diameter) floor on high-diameter inputs is real, which is why the
  sub-logarithmic claim is stated for low-diameter inputs.
"""

from __future__ import annotations

from ...analysis.invariants import BallContainmentObserver
from ..runner import Case, build_graph, run_case
from ..seeds import Scale
from ..tables import ExperimentReport, Table

EXPERIMENT_ID = "F4"
TITLE = "Knowledge radius vs the 2^t ceiling (path input)"

ALGORITHMS = ("swamping", "sublog", "namedropper")


def run(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    n = min(256, scale.focus_n)
    radii: dict[str, list[int]] = {}
    rounds_used: dict[str, int] = {}
    for algorithm in ALGORITHMS:
        case = Case(algorithm=algorithm, topology="path", n=n, seed=scale.seeds[0])
        graph = build_graph(case)
        observer = BallContainmentObserver(graph, strict=True)
        result = run_case(
            case, observers=[observer], enforce_legality=True, graph=graph
        )
        radii[algorithm] = observer.max_radius_by_round
        rounds_used[algorithm] = result.rounds

    depth = max(len(values) for values in radii.values())
    table = Table(
        f"F4: max knowledge radius per round (path, n={n})",
        ["round", "ceiling 2^t", *ALGORITHMS],
        caption="strict checker: any cell above its ceiling aborts the run",
    )
    for round_index in range(depth):
        round_no = round_index + 1
        row: list[object] = [round_no, min(2**round_no, n)]
        for algorithm in ALGORITHMS:
            values = radii[algorithm]
            row.append(values[round_index] if round_index < len(values) else "-")
        table.add_row(*row)
    report.add(table)
    for algorithm in ALGORITHMS:
        report.note(f"{algorithm}: completed in {rounds_used[algorithm]} rounds, 0 violations")
    report.summary = {"radii": radii, "rounds": rounds_used}
    return report
