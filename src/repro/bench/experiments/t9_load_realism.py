"""T9 — load realism: skewed demand, flash crowds, regional failures,
dynamic graphs.

Every other experiment drives the algorithms with uniform synthetic
input.  T9 replays the seeded traces of :mod:`repro.workloads` — the
demand shapes real discovery services face — and measures *service*
quality (was a lookup answerable when it arrived?) next to the usual
protocol costs:

* **T9a (Zipf skew)** — lookup popularity from uniform (``alpha=0``) to
  heavily skewed (``alpha=1.4``; arXiv 1403.3017 motivates the shape).
  Demand is read-only, so protocol costs cannot depend on it; what
  changes is how much of the demand each algorithm can answer mid-run,
  and whether hot targets are learned earlier than cold ones.
* **T9b (flash crowd)** — a step burst of hot-key demand mid-run.  The
  question the docs ask of ``det_optimal``: its message floor survives
  trivially (messages are demand-independent), but its big-bang delivery
  (aggregate first, broadcast last) means burst demand waits for the
  final broadcast, where gossip's incremental spread answers early.
* **T9c (correlated regional failures)** — an entire topology region
  crashes together (trace membership rule = the ``clustered`` topology's
  ``node % clusters``), against a *random* crash of the same size as the
  control.  Random crashes are the T3 regime every resilient variant
  heals from; correlated ones can wedge the cluster-merge structure —
  the completion-rate gap is the finding.
* **T9d (dynamic graph)** — contact edges churn mid-run (arXiv
  1202.2092's regime), injected through the engine's out-of-band
  knowledge seam; compared against the static graph on rounds and
  messages.

With :class:`~repro.bench.sweeprun.SweepOptions` carrying a journal
path, every cell is journaled under its canonical
:func:`~repro.bench.runner.case_key` (one forked journal per stage, as
F3 does) and ``resume`` restores finished cells without re-running.
"""

from __future__ import annotations

import statistics
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ...sim.faults import crash_fraction_plan
from ...workloads import Trace, make_workload, run_trace_workload
from ..runner import Case, case_key, run_case
from ..seeds import Scale
from ..store import JOURNAL_SCHEMA, append_journal, load_journal
from ..sweeprun import SweepOptions
from ..tables import ExperimentReport, Table

EXPERIMENT_ID = "T9"
TITLE = "Load realism: skewed demand, flash crowds, regional failures"

ALGORITHMS = ("sublog", "namedropper", "det_optimal", "chord_discover")
ZIPF_ALPHAS = (0.0, 1.1, 1.4)
SPIKE_FACTORS = (1.0, 8.0, 32.0)
FAILURE_ROUND = 6
LOOKUP_ROUNDS = 12


class _StageCells:
    """Journal-backed cell cache for one T9 stage.

    Cells are keyed by their canonical :func:`case_key`; with a journal
    configured each computed payload is appended durably
    (:func:`repro.bench.store.append_journal`) and a resume run restores
    it through :func:`repro.bench.store.load_journal` instead of
    re-simulating.
    """

    def __init__(self, options: Optional[SweepOptions], stage: str) -> None:
        self.path: Optional[Path] = None
        self._cached: Dict[str, Dict[str, Any]] = {}
        if options is None or options.journal is None:
            return
        staged = options.for_stage(stage)
        self.path = Path(staged.journal)
        if options.resume and self.path.exists():
            _manifest, results, _failures = load_journal(self.path)
            self._cached = {
                key: dict(record["payload"]) for key, record in results.items()
            }
        else:
            self.path.unlink(missing_ok=True)
            append_journal(
                self.path,
                {
                    "type": "manifest",
                    "schema": JOURNAL_SCHEMA,
                    "experiment": EXPERIMENT_ID,
                    "stage": stage,
                },
            )

    @property
    def restored(self) -> int:
        return len(self._cached)

    def cell(
        self, case: Case, compute: Callable[[], Dict[str, Any]]
    ) -> Dict[str, Any]:
        key = case_key(case)
        cached = self._cached.get(key)
        if cached is not None:
            return cached
        payload = compute()
        if self.path is not None:
            append_journal(
                self.path, {"type": "result", "key": key, "payload": payload}
            )
        return payload


def _served_percent(lookups: Dict[str, Any]) -> float:
    requests = lookups["requests"]
    return 100.0 * lookups["served_at_arrival"] / requests if requests else 100.0


def _hot_decile(lookups: Dict[str, Any]) -> Dict[str, Any]:
    by_decile = lookups.get("by_decile", {})
    if not by_decile:
        return {"served_at_arrival": 1.0, "mean_delay": 0.0}
    return by_decile[min(by_decile)]


def _zipf_stage(
    report: ExperimentReport, scale: Scale, options: Optional[SweepOptions]
) -> Dict[str, Any]:
    cells = _StageCells(options, "t9a")
    n = scale.focus_n
    table = Table(
        f"T9a: Zipf-skewed lookup demand (kout, n={n}, {LOOKUP_ROUNDS}-round window)",
        [
            "alpha",
            "algorithm",
            "served@arrival",
            "mean delay",
            "hot-decile served",
            "rounds",
        ],
        caption=(
            "served@arrival = lookups answerable the round they arrive; "
            "delay in rounds; hot decile = hottest 10% of targets"
        ),
    )
    summary: Dict[str, Dict[str, float]] = {}
    for alpha in ZIPF_ALPHAS:
        for algorithm in ALGORITHMS:
            served, delays, hot_served, rounds = [], [], [], []
            for seed in scale.seeds:
                case = Case(
                    algorithm=algorithm,
                    topology="kout",
                    n=n,
                    seed=seed,
                    params={"workload": "zipf", "alpha": alpha},
                    label=f"t9a/{algorithm}/a{alpha}",
                )

                def compute(seed: int = seed, alpha: float = alpha) -> Dict[str, Any]:
                    trace = make_workload(
                        "zipf", n, seed=seed, alpha=alpha, rounds=LOOKUP_ROUNDS
                    )
                    replay = run_trace_workload(
                        trace,
                        algorithm,
                        seed=seed,
                        enforce_legality=False,
                    )
                    return {
                        "served": _served_percent(replay.lookups),
                        "mean_delay": replay.lookups["mean_delay"],
                        "hot_served": 100.0
                        * _hot_decile(replay.lookups)["served_at_arrival"],
                        "rounds": replay.result.rounds,
                    }

                payload = cells.cell(case, compute)
                served.append(payload["served"])
                delays.append(payload["mean_delay"])
                hot_served.append(payload["hot_served"])
                rounds.append(payload["rounds"])
            row = {
                "served": statistics.median(served),
                "mean_delay": statistics.median(delays),
                "hot_served": statistics.median(hot_served),
                "rounds": statistics.median(rounds),
            }
            summary[f"{algorithm}@a{alpha}"] = row
            table.add_row(
                f"{alpha:.1f}",
                algorithm,
                f"{row['served']:.0f}%",
                f"{row['mean_delay']:.1f}",
                f"{row['hot_served']:.0f}%",
                f"{row['rounds']:.0f}",
            )
    report.add(table)
    return summary


def _flash_stage(
    report: ExperimentReport, scale: Scale, options: Optional[SweepOptions]
) -> Dict[str, Any]:
    cells = _StageCells(options, "t9b")
    n = scale.focus_n
    table = Table(
        f"T9b: flash crowd (kout, n={n}, burst at round 8)",
        [
            "spike",
            "algorithm",
            "hot served@arrival",
            "hot mean delay",
            "messages",
            "rounds",
        ],
        caption=(
            "hot columns follow the burst's hot-key demand; messages are "
            "demand-independent, so the det_optimal message floor survives "
            "any spike — the burst only hurts algorithms still spreading "
            "knowledge when it lands"
        ),
    )
    summary: Dict[str, Dict[str, float]] = {}
    for factor in SPIKE_FACTORS:
        for algorithm in ALGORITHMS:
            hot_served, hot_delay, messages, rounds = [], [], [], []
            for seed in scale.seeds:
                case = Case(
                    algorithm=algorithm,
                    topology="kout",
                    n=n,
                    seed=seed,
                    params={"workload": "flash_crowd", "spike_factor": factor},
                    label=f"t9b/{algorithm}/x{factor:.0f}",
                )

                def compute(seed: int = seed, factor: float = factor) -> Dict[str, Any]:
                    trace = make_workload(
                        "flash_crowd",
                        n,
                        seed=seed,
                        spike_factor=factor,
                        spike_round=8,
                        rounds=18,
                    )
                    replay = run_trace_workload(
                        trace,
                        algorithm,
                        seed=seed,
                        enforce_legality=False,
                    )
                    hot = _hot_decile(replay.lookups)
                    return {
                        "hot_served": 100.0 * hot["served_at_arrival"],
                        "hot_delay": hot["mean_delay"],
                        "messages": replay.result.messages,
                        "rounds": replay.result.rounds,
                    }

                payload = cells.cell(case, compute)
                hot_served.append(payload["hot_served"])
                hot_delay.append(payload["hot_delay"])
                messages.append(payload["messages"])
                rounds.append(payload["rounds"])
            row = {
                "hot_served": statistics.median(hot_served),
                "hot_delay": statistics.median(hot_delay),
                "messages": statistics.median(messages),
                "rounds": statistics.median(rounds),
            }
            summary[f"{algorithm}@x{factor:.0f}"] = row
            table.add_row(
                f"{factor:.0f}x",
                algorithm,
                f"{row['hot_served']:.0f}%",
                f"{row['hot_delay']:.1f}",
                f"{row['messages']:,.0f}",
                f"{row['rounds']:.0f}",
            )
    report.add(table)
    return summary


def _failures_stage(
    report: ExperimentReport, scale: Scale, options: Optional[SweepOptions]
) -> Dict[str, Any]:
    from ...algorithms import ALGORITHMS as REGISTRY
    from ...workloads import fault_plan_from_trace
    from ..runner import build_graph

    cells = _StageCells(options, "t9c")
    n = scale.focus_n
    clusters = 8
    table = Table(
        f"T9c: correlated regional failures (clustered, n={n}, "
        f"2/8 regions 50% down at round {FAILURE_ROUND})",
        [
            "algorithm",
            "correlated done",
            "random done",
            "corr rounds",
            "rand rounds",
        ],
        caption=(
            "goal strong_alive; 'random done' crashes the *same number* of "
            "machines chosen uniformly (the T3 regime) on the same graph — "
            "the completion-rate gap is the cost of correlation"
        ),
    )
    summary: Dict[str, Dict[str, Any]] = {}

    def _rate(flags: List[bool]) -> str:
        return f"{sum(flags)}/{len(flags)}"

    def _rounds(rounds: List[float]) -> str:
        completed = [value for value in rounds if value is not None]
        return f"{statistics.median(completed):.0f}" if completed else "-"

    for algorithm in ALGORITHMS:
        hostile = dict(REGISTRY[algorithm].hostile_params)
        corr_done: List[bool] = []
        rand_done: List[bool] = []
        corr_rounds: List[Optional[float]] = []
        rand_rounds: List[Optional[float]] = []
        for seed in scale.seeds:
            for variant in ("correlated", "random"):
                case = Case(
                    algorithm=algorithm,
                    topology="clustered",
                    n=n,
                    seed=seed,
                    goal="strong_alive",
                    params={"workload": "correlated_failures", "variant": variant},
                    topology_params={"clusters": clusters},
                    label=f"t9c/{algorithm}/{variant}",
                )

                def compute(seed: int = seed, variant: str = variant) -> Dict[str, Any]:
                    trace = make_workload(
                        "correlated_failures",
                        n,
                        seed=seed,
                        clusters=clusters,
                        victim_clusters=2,
                        fail_fraction=0.5,
                        failure_round=FAILURE_ROUND,
                    )
                    if variant == "correlated":
                        replay = run_trace_workload(
                            trace,
                            algorithm,
                            seed=seed,
                            topology="clustered",
                            topology_params={"clusters": clusters},
                            goal="strong_alive",
                            enforce_legality=False,
                            **hostile,
                        )
                        result = replay.result
                    else:
                        graph = build_graph(
                            Case(
                                algorithm=algorithm,
                                topology="clustered",
                                n=n,
                                seed=seed,
                                topology_params={"clusters": clusters},
                            )
                        )
                        victims = len(
                            fault_plan_from_trace(trace, graph.node_ids).crash_rounds
                        )
                        plan = crash_fraction_plan(
                            graph.node_ids, victims / n, FAILURE_ROUND, seed
                        )
                        result = run_case(
                            Case(
                                algorithm=algorithm,
                                topology="clustered",
                                n=n,
                                seed=seed,
                                goal="strong_alive",
                                params=hostile,
                                topology_params={"clusters": clusters},
                            ),
                            fault_plan=plan,
                        )
                    return {
                        "completed": result.completed,
                        "rounds": result.rounds if result.completed else None,
                    }

                payload = cells.cell(case, compute)
                if variant == "correlated":
                    corr_done.append(payload["completed"])
                    corr_rounds.append(payload["rounds"])
                else:
                    rand_done.append(payload["completed"])
                    rand_rounds.append(payload["rounds"])
        summary[algorithm] = {
            "correlated_rate": sum(corr_done) / len(corr_done),
            "random_rate": sum(rand_done) / len(rand_done),
        }
        table.add_row(
            algorithm,
            _rate(corr_done),
            _rate(rand_done),
            _rounds(corr_rounds),
            _rounds(rand_rounds),
        )
    report.add(table)
    return summary


def _dynamic_stage(
    report: ExperimentReport, scale: Scale, options: Optional[SweepOptions]
) -> Dict[str, Any]:
    cells = _StageCells(options, "t9d")
    n = scale.focus_n
    table = Table(
        f"T9d: dynamic contact-edge churn (kout, n={n}, 8 edges/round "
        "for 6 rounds)",
        ["algorithm", "static rounds", "churn rounds", "msg delta"],
        caption=(
            "fresh contact edges appear mid-run via the engine's "
            "out-of-band injection seam (arXiv 1202.2092's dynamic-"
            "network regime); free long-range edges can only help"
        ),
    )
    summary: Dict[str, Dict[str, float]] = {}
    for algorithm in ALGORITHMS:
        static_rounds, churn_rounds_seen, deltas = [], [], []
        for seed in scale.seeds:
            for variant in ("static", "churn"):
                case = Case(
                    algorithm=algorithm,
                    topology="kout",
                    n=n,
                    seed=seed,
                    params={"workload": "dynamic_graph", "variant": variant},
                    label=f"t9d/{algorithm}/{variant}",
                )

                def compute(seed: int = seed, variant: str = variant) -> Dict[str, Any]:
                    if variant == "static":
                        result = run_case(
                            Case(
                                algorithm=algorithm, topology="kout", n=n, seed=seed
                            )
                        )
                        return {"rounds": result.rounds, "messages": result.messages}
                    trace = make_workload(
                        "dynamic_graph",
                        n,
                        seed=seed,
                        edges_per_round=8,
                        churn_rounds=6,
                        start_round=2,
                    )
                    replay = run_trace_workload(
                        trace,
                        algorithm,
                        seed=seed,
                        enforce_legality=False,
                    )
                    return {
                        "rounds": replay.result.rounds,
                        "messages": replay.result.messages,
                    }

                payload = cells.cell(case, compute)
                if variant == "static":
                    static = payload
                    static_rounds.append(payload["rounds"])
                else:
                    churn_rounds_seen.append(payload["rounds"])
                    deltas.append(
                        100.0
                        * (payload["messages"] - static["messages"])
                        / static["messages"]
                    )
        row = {
            "static_rounds": statistics.median(static_rounds),
            "churn_rounds": statistics.median(churn_rounds_seen),
            "msg_delta": statistics.median(deltas),
        }
        summary[algorithm] = row
        table.add_row(
            algorithm,
            f"{row['static_rounds']:.0f}",
            f"{row['churn_rounds']:.0f}",
            f"{row['msg_delta']:+.0f}%",
        )
    report.add(table)
    return summary


def run(scale: Scale, options: Optional[SweepOptions] = None) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    summary: Dict[str, Any] = {}
    summary["zipf"] = _zipf_stage(report, scale, options)
    summary["flash"] = _flash_stage(report, scale, options)
    summary["failures"] = _failures_stage(report, scale, options)
    summary["dynamic"] = _dynamic_stage(report, scale, options)
    report.note(
        "demand is read-only, so every message/round column matches the "
        "uniform experiments; what realistic load changes is *service*. "
        "The det_optimal message floor survives flash crowds trivially "
        "(messages are demand-independent) and, completing before the "
        "burst, so does its availability — the skew casualty is sublog, "
        "whose hierarchical merge keeps per-machine knowledge sparse "
        "until the final rounds.  Under regional failures, completion "
        "itself turns seed-dependent for the merge-based algorithms "
        "(correlated and random crashes of equal size both can wedge "
        "them) while the deterministic baselines always heal."
    )
    report.summary = summary
    return report
