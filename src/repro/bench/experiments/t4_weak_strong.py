"""T4 — weak versus strong discovery cost.

Strong discovery (everyone knows everyone) carries an unavoidable Ω(n²)
pointer floor: n machines must each receive ~n identifiers.  Weak
discovery (a leader knows everyone and everyone knows the leader) only
needs O(n·polylog) pointers.  This table isolates the final roster
broadcast of the core algorithm — the Θ(n²) completion step — from the
merging machinery, by running ``sublog`` to both goals.

Expected shape: rounds nearly identical (the broadcast is 1 round);
pointers drop from ~n² to near-linear when the broadcast is skipped.
"""

from __future__ import annotations

import statistics

from ...analysis.bounds import strong_discovery_pointer_bound
from ..runner import Case, run_case
from ..seeds import Scale
from ..tables import ExperimentReport, Table

EXPERIMENT_ID = "T4"
TITLE = "Weak vs strong discovery cost (sublog)"


def run(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    table = Table(
        "T4: sublog to weak vs strong goals (kout, k=3)",
        [
            "n",
            "rounds strong",
            "rounds weak",
            "pointers strong",
            "pointers weak",
            "ptr floor (strong)",
        ],
        caption="weak runs skip the completion broadcast (completion='none')",
    )
    summary = {}
    for n in scale.sweep_sizes:
        strong_runs = []
        weak_runs = []
        for seed in scale.seeds:
            strong_runs.append(
                run_case(
                    Case(
                        algorithm="sublog",
                        topology="kout",
                        n=n,
                        seed=seed,
                        goal="strong",
                        topology_params={"k": 3},
                    )
                )
            )
            weak_runs.append(
                run_case(
                    Case(
                        algorithm="sublog",
                        topology="kout",
                        n=n,
                        seed=seed,
                        goal="weak",
                        params={"completion": "none"},
                        topology_params={"k": 3},
                    )
                )
            )
        strong_ptrs = statistics.median(r.pointers for r in strong_runs)
        weak_ptrs = statistics.median(r.pointers for r in weak_runs)
        table.add_row(
            n,
            statistics.median(r.rounds for r in strong_runs),
            statistics.median(r.rounds for r in weak_runs),
            f"{strong_ptrs:,.0f}",
            f"{weak_ptrs:,.0f}",
            f"{strong_discovery_pointer_bound(n):,}",
        )
        summary[n] = {"strong_pointers": strong_ptrs, "weak_pointers": weak_ptrs}
    report.add(table)
    report.note(
        "the strong/weak pointer gap is the isolated cost of the final "
        "roster broadcast — the Omega(n^2) completion step no algorithm "
        "can avoid for strong discovery"
    )
    report.summary = summary
    return report
