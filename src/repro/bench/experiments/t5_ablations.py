"""T5 — ablations of the core algorithm's design choices.

Each row disables or swaps exactly one mechanism at a fixed n, quantifying
the reconstruction decisions documented in DESIGN.md section 2:

* ``coin contraction`` — depth-1 randomized merges instead of chain
  contraction: the phase count degrades to Θ(log n).
* ``no delegation``  — the leader sends all invites itself.  In this model
  (unbounded per-round sends) correctness and message counts are
  unchanged; the row documents that delegation is about *load spread*,
  not round count, here.
* ``spread limit 1`` — at most one invite per member per phase: the purest
  squaring regime; mild round cost while pools exceed cluster sizes.
* ``resilient``      — loss-hardening overhead with zero loss injected:
  the pointer premium paid for full contact re-reports.
* ``pushpull name-dropper`` — the strengthened gossip baseline, to show
  the gap to sublog is not an artifact of push-only gossip.
"""

from __future__ import annotations

import statistics
from typing import Any, Dict, Mapping, Tuple

from ..runner import Case, run_case
from ..seeds import Scale
from ..tables import ExperimentReport, Table

EXPERIMENT_ID = "T5"
TITLE = "Ablations of the core algorithm"

VARIANTS: Tuple[Tuple[str, str, Mapping[str, Any]], ...] = (
    ("sublog (default)", "sublog", {}),
    ("coin contraction", "sublog", {"contraction": "coin"}),
    ("no delegation", "sublog", {"delegation": False}),
    ("spread limit 1", "sublog", {"spread_limit": 1}),
    ("resilient mode", "sublog", {"resilient": True}),
    ("namedropper push", "namedropper", {}),
    ("namedropper pushpull", "namedropper", {"mode": "pushpull"}),
)


def run(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    n = scale.focus_n
    table = Table(
        f"T5: ablation grid (kout, k=3, n={n})",
        ["variant", "rounds", "messages", "pointers", "done"],
        caption=f"medians over {len(scale.seeds)} seeds",
    )
    summary: Dict[str, Dict[str, float]] = {}
    for label, algorithm, params in VARIANTS:
        runs = []
        for seed in scale.seeds:
            case = Case(
                algorithm=algorithm,
                topology="kout",
                n=n,
                seed=seed,
                params=params,
                topology_params={"k": 3},
                label=label,
            )
            runs.append(run_case(case))
        rounds = statistics.median(r.rounds for r in runs)
        messages = statistics.median(r.messages for r in runs)
        pointers = statistics.median(r.pointers for r in runs)
        rate = sum(1 for r in runs if r.completed) / len(runs)
        summary[label] = {
            "rounds": rounds,
            "messages": messages,
            "pointers": pointers,
        }
        table.add_row(
            label, f"{rounds:.0f}", f"{messages:,.0f}", f"{pointers:,.0f}", f"{rate:.0%}"
        )
    report.add(table)
    default = summary["sublog (default)"]["rounds"]
    coin = summary["coin contraction"]["rounds"]
    report.note(
        f"chain contraction vs coin star contraction: {default:.0f} vs "
        f"{coin:.0f} rounds — the chain-collapse mechanism is where the "
        "sub-logarithmic behavior comes from"
    )
    report.summary = summary
    return report
