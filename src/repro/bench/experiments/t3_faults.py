"""T3 — robustness under message loss and crash failures.

Two sub-experiments at a fixed n on random 3-out inputs:

* **T3a (loss)** — independent message loss at 0/1/5/10 %.  The core
  algorithm runs in ``resilient`` mode (full contact re-reports, retried
  invites) and is compared with Name-Dropper, whose memoryless pushes are
  naturally loss-tolerant.  The metric is round inflation relative to the
  loss-free run, plus completion rate.
* **T3b (crashes)** — a random fraction of machines crashes at round 5;
  the goal becomes ``strong_alive`` (every survivor knows every
  survivor).  The core algorithm uses its watchdog (orphaned members
  revert to singletons) and stagnation broadcasts (dead ids wedge pools);
  the structure-free Name-Dropper is the robustness yardstick.

The honest finding this table documents: leader-based structure buys a
large round/message advantage in the common case at a measurable (bounded)
robustness cost — precisely the trade the fault machinery is there to
contain.
"""

from __future__ import annotations

import statistics
from typing import Dict, List

from ...sim.faults import FaultPlan, crash_fraction_plan
from ...sim.metrics import RunResult
from ..runner import Case, build_graph, run_case
from ..seeds import Scale
from ..tables import ExperimentReport, Table

EXPERIMENT_ID = "T3"
TITLE = "Robustness under message loss and crash failures"

LOSS_RATES = (0.0, 0.01, 0.05, 0.1)
CRASH_FRACTIONS = (0.1, 0.2)
CRASH_ROUND = 5

SUBLOG_FAULT_PARAMS = {
    "resilient": True,
    "watchdog_phases": 3,
    "stagnation_phases": 4,
}


def _median_rounds(results: List[RunResult]) -> float:
    return statistics.median(r.rounds for r in results)


def _rate(results: List[RunResult]) -> float:
    return sum(1 for r in results if r.completed) / len(results)


def run(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    n = scale.focus_n

    loss_table = Table(
        f"T3a: message loss (kout, k=3, n={n})",
        ["loss", "sublog rounds", "sublog done", "namedropper rounds", "nd done"],
        caption="rounds are medians over seeds; done = completion rate",
    )
    summary: Dict[str, Dict[float, float]] = {"sublog": {}, "namedropper": {}}
    for loss in LOSS_RATES:
        per_algorithm: Dict[str, List[RunResult]] = {}
        for algorithm, params in (
            ("sublog", SUBLOG_FAULT_PARAMS),
            ("namedropper", {}),
        ):
            runs = []
            for seed in scale.seeds:
                case = Case(
                    algorithm=algorithm,
                    topology="kout",
                    n=n,
                    seed=seed,
                    params=params,
                    topology_params={"k": 3},
                )
                plan = FaultPlan(loss_rate=loss, seed=seed)
                runs.append(run_case(case, fault_plan=plan))
            per_algorithm[algorithm] = runs
            summary[algorithm][loss] = _median_rounds(runs)
        loss_table.add_row(
            f"{loss:.0%}",
            f"{_median_rounds(per_algorithm['sublog']):.0f}",
            f"{_rate(per_algorithm['sublog']):.0%}",
            f"{_median_rounds(per_algorithm['namedropper']):.0f}",
            f"{_rate(per_algorithm['namedropper']):.0%}",
        )
    report.add(loss_table)

    crash_table = Table(
        f"T3b: crash failures at round {CRASH_ROUND} (goal: survivors know survivors)",
        ["crashed", "sublog rounds", "sublog done", "namedropper rounds", "nd done"],
        caption="sublog runs with watchdog + stagnation broadcasts",
    )
    crash_summary: Dict[str, Dict[float, float]] = {"sublog": {}, "namedropper": {}}
    for fraction in CRASH_FRACTIONS:
        per_algorithm = {}
        for algorithm, params in (
            ("sublog", SUBLOG_FAULT_PARAMS),
            ("namedropper", {}),
        ):
            runs = []
            for seed in scale.seeds:
                case = Case(
                    algorithm=algorithm,
                    topology="kout",
                    n=n,
                    seed=seed,
                    goal="strong_alive",
                    params=params,
                    topology_params={"k": 3},
                )
                graph = build_graph(case)
                plan = crash_fraction_plan(
                    graph.node_ids, fraction, CRASH_ROUND, seed
                )
                runs.append(run_case(case, fault_plan=plan, graph=graph))
            per_algorithm[algorithm] = runs
            crash_summary[algorithm][fraction] = _rate(runs)
        crash_table.add_row(
            f"{fraction:.0%}",
            f"{_median_rounds(per_algorithm['sublog']):.0f}",
            f"{_rate(per_algorithm['sublog']):.0%}",
            f"{_median_rounds(per_algorithm['namedropper']):.0f}",
            f"{_rate(per_algorithm['namedropper']):.0%}",
        )
    report.add(crash_table)
    report.summary = {"loss": summary, "crash": crash_summary}
    return report
