"""T6 — dynamic membership (extension experiment).

Machines keep arriving while discovery runs: a fraction of the fleet
joins, spread evenly over a fixed 48-round window (so larger join volumes
mean *denser* arrivals, as in a real autoscaling burst — not a longer
schedule), each newcomer configured with 3 bootstrap addresses among the
machines already up.  The question the table answers: how many rounds
after the *last* join does each algorithm need to finish strong discovery
("settle time")?

Expected shape: the cluster-merging algorithm absorbs each newcomer as
one extra singleton cluster — settle time stays a small constant number
of phases regardless of how many machines joined — and gossip behaves
similarly; neither needs protocol changes, which is itself the finding
(dynamic discovery is a workload, not a new algorithm, in this model).
"""

from __future__ import annotations

import statistics
from typing import Dict, List

from ...sim.churn import late_join_workload
from ...sim.metrics import RunResult
from ..seeds import Scale
from ..tables import ExperimentReport, Table

EXPERIMENT_ID = "T6"
TITLE = "Dynamic membership: staggered joins during discovery"

JOIN_FRACTIONS = (0.05, 0.15, 0.3)
ALGORITHMS = ("sublog", "namedropper")
JOIN_WINDOW = 48


def run(scale: Scale) -> ExperimentReport:
    from ... import discover  # late import avoids a package cycle

    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    incumbents = scale.focus_n
    table = Table(
        f"T6: settle time after the last join ({incumbents} incumbents, kout k=3)",
        [
            "joiners",
            "last-join round",
            "sublog settle",
            "namedropper settle",
        ],
        caption="settle = completion round minus last join round; medians over seeds",
    )
    summary: Dict[float, Dict[str, float]] = {}
    for fraction in JOIN_FRACTIONS:
        joiners = max(1, int(incumbents * fraction))
        settles: Dict[str, List[int]] = {algorithm: [] for algorithm in ALGORITHMS}
        last_join = 0
        for seed in scale.seeds:
            graph, plan = late_join_workload(
                incumbents,
                joiners,
                seed=seed,
                k=3,
                join_start=7,
                join_window=JOIN_WINDOW,
            )
            last_join = plan.last_join
            for algorithm in ALGORITHMS:
                result: RunResult = discover(
                    graph,
                    algorithm=algorithm,
                    seed=seed,
                    join_plan=plan,
                    max_rounds=plan.last_join + 600,
                )
                assert result.completed, (algorithm, fraction, seed)
                settles[algorithm].append(result.rounds - plan.last_join)
        row = {
            algorithm: statistics.median(values)
            for algorithm, values in settles.items()
        }
        summary[fraction] = row
        table.add_row(
            joiners,
            last_join,
            f"{row['sublog']:.0f}",
            f"{row['namedropper']:.0f}",
        )
    report.add(table)
    report.note(
        "settle time is flat in the number of joiners for both algorithms: "
        "a newcomer is just one more singleton cluster (sublog) or one more "
        "gossiper (namedropper)"
    )
    report.summary = summary
    return report
