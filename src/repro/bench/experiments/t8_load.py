"""T8 — communication load profile (extension experiment).

Message-count optimality is not the whole systems story: it matters
*where* the messages land.  This experiment measures, per algorithm, the
peak single-round inbox any machine sees and the total-receive skew
(hottest machine over fleet mean).

Expected shape — the honest flip side of the headline:

* the cluster-merging algorithm concentrates load on leaders — the final
  leader absorbs Θ(cluster-size) reports per phase, so peak round load is
  Θ(n) and skew is large.  This is the *price* of its message and round
  optimality in this model (a bandwidth-capped model would force a
  dissemination tree inside clusters — noted as future work in
  DESIGN.md);
* gossip spreads load almost uniformly (peak round load O(log n)-ish,
  skew near 1), which is why it remains attractive in bandwidth-capped
  deployments despite losing every total-cost column.
"""

from __future__ import annotations

import statistics
from typing import Dict

from ...sim.observers import LoadObserver
from ..runner import Case, run_case
from ..seeds import Scale
from ..tables import ExperimentReport, Table

EXPERIMENT_ID = "T8"
TITLE = "Communication load profile: hotspots vs uniform gossip"

ALGORITHMS = ("sublog", "sublogcoin", "namedropper", "flooding")


def run(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    n = scale.focus_n
    table = Table(
        f"T8: receive-load profile (kout, k=3, n={n})",
        ["algorithm", "peak inbox/round", "load skew", "rounds"],
        caption="peak = largest single-round inbox; skew = hottest machine / mean",
    )
    summary: Dict[str, Dict[str, float]] = {}
    for algorithm in ALGORITHMS:
        peaks, skews, rounds = [], [], []
        for seed in scale.seeds:
            observer = LoadObserver()
            case = Case(
                algorithm=algorithm,
                topology="kout",
                n=n,
                seed=seed,
                topology_params={"k": 3},
            )
            result = run_case(case, observers=[observer])
            assert result.completed
            peaks.append(observer.peak_receive_load())
            skews.append(observer.load_skew())
            rounds.append(result.rounds)
        row = {
            "peak": statistics.median(peaks),
            "skew": statistics.median(skews),
            "rounds": statistics.median(rounds),
        }
        summary[algorithm] = row
        table.add_row(
            algorithm, f"{row['peak']:.0f}", f"{row['skew']:.1f}", f"{row['rounds']:.0f}"
        )
    report.add(table)
    report.note(
        "leader-based merging buys total-cost optimality by concentrating "
        "Θ(n) load on leaders; gossip pays more total but spreads it — "
        "the classic centralization/amortization trade, quantified"
    )
    report.summary = summary
    return report
