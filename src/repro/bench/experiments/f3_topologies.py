"""F3 — topology sensitivity.

Rounds at a fixed n across the topology family, with the per-topology
lower bound.  The story this figure tells:

* on the high-diameter shapes (path, cycle, lollipop) *every* algorithm is
  pinned to Ω(log n) rounds — sub-logarithmic time is impossible there,
  and sublog tracks the bound within its constant;
* on the low-diameter shapes (kout, tree, star, clustered, prefattach)
  sublog detaches from the baselines and runs in near-constant rounds.
"""

from __future__ import annotations

import statistics
from typing import Optional

from ...analysis.bounds import lower_bound_rounds
from ...graphs.generators import make_topology
from ..runner import index_results, sweep
from ..seeds import Scale
from ..sweeprun import SweepOptions
from ..tables import ExperimentReport, Table

EXPERIMENT_ID = "F3"
TITLE = "Rounds by topology at fixed n"

ALGORITHMS = ("sublog", "namedropper", "swamping", "flooding")
TOPOLOGIES = (
    "path",
    "cycle",
    "lollipop",
    "grid",
    "tree",
    "star_in",
    "clustered",
    "kout",
    "prefattach",
)


def run(scale: Scale, options: Optional[SweepOptions] = None) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    n = scale.focus_n
    table = Table(
        f"F3: median rounds by topology (n={n})",
        ["topology", "diameter", "lower-bound", *ALGORITHMS],
        caption=f"median over {len(scale.seeds)} seeds",
    )
    summary: dict[str, dict[str, float]] = {}
    for topology in TOPOLOGIES:
        probe = make_topology(topology, n, seed=scale.seeds[0])
        diameter = probe.undirected_diameter(exact=n <= 1500)
        bound = lower_bound_rounds(probe, exact=n <= 1500)
        # One sweep (and so one journal) per topology: each is its own
        # case matrix, so a shared journal would fail the digest check.
        stage = options.for_stage(topology) if options else None
        results = sweep(
            ALGORITHMS,
            topology,
            [n],
            scale.seeds,
            params_by_algorithm={"swamping": {"full": False}},
            **(stage.sweep_kwargs() if stage else {}),
        )
        indexed = index_results(results)
        row: list[object] = [topology, diameter, bound]
        summary[topology] = {}
        for algorithm in ALGORITHMS:
            runs = indexed.get((algorithm, n), [])
            if not runs:
                row.append("-")
                continue
            median = statistics.median(r.rounds for r in runs)
            summary[topology][algorithm] = median
            incomplete = any(not r.completed for r in runs)
            row.append(f"{median:.0f}" + ("!" if incomplete else ""))
        table.add_row(*row)
    report.add(table)
    report.note(
        "high-diameter rows (path/cycle/lollipop) pin every algorithm to "
        "Omega(log n) by the ball-containment bound; the sublog advantage "
        "appears exactly on the low-diameter rows"
    )
    report.summary = summary
    return report
