"""T1 — headline round-complexity table.

Validates the paper's central claim: on the canonical low-diameter
discovery workload (random 3-out registration graphs), the core algorithm
completes strong discovery in rounds that grow doubly-logarithmically,
beating every baseline's growth — while the lower-bound column shows how
close to optimal it runs.

Expected shape (EXPERIMENTS.md records measured values):
  sublog      ≈ 6·⌈log log n⌉ + O(1)   (plateaus: same rounds at 512 and 2048)
  sublogcoin  ≈ Θ(log n) phases
  namedropper ≈ Θ(log n · log log n .. log² n), growing visibly with n
  swamping    ≈ log₂ D + O(1) rounds (optimal rounds, ruinous pointers — T2)
  flooding    ≈ D
  rpj         erratic; included as the cautionary baseline
"""

from __future__ import annotations

import math
import statistics
from typing import Optional

from ...analysis.bounds import lower_bound_rounds
from ...analysis.fitting import fit_all_models
from ...graphs.generators import make_topology
from ..runner import index_results, sweep
from ..seeds import Scale
from ..sweeprun import SweepOptions
from ..tables import ExperimentReport, Table

EXPERIMENT_ID = "T1"
TITLE = "Rounds to strong discovery on random 3-out graphs"

ALGORITHMS = ("sublog", "sublogcoin", "namedropper", "swamping", "flooding", "rpj")

#: Per-algorithm size caps (see runner.sweep).  Classic swamping's pointer
#: complexity is cubic and rpj's rounds can be linear; past these sizes
#: they only burn wall clock.  The namedropper/sublogcoin caps bite only
#: at the ``large`` scale, where a single honest run costs minutes of
#: protocol-side (backend-independent) set bookkeeping per extra
#: doubling; sublog — the headline curve — runs uncapped.
SIZE_CAPS = {
    "swamping": 512,
    "rpj": 1024,
    "flooding": 2048,
    "namedropper": 8192,
    "sublogcoin": 16384,
}


def run(scale: Scale, options: Optional[SweepOptions] = None) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    results = sweep(
        ALGORITHMS,
        "kout",
        scale.sweep_sizes,
        scale.seeds,
        params_by_algorithm={"swamping": {"full": False}},
        topology_params={"k": 3},
        size_caps=SIZE_CAPS,
        **(options.sweep_kwargs() if options else {}),
    )
    indexed = index_results(results)

    table = Table(
        "T1: median rounds to strong discovery (kout, k=3)",
        ["n", "lower-bound", *ALGORITHMS],
        caption=f"median over {len(scale.seeds)} seeds; '-' = size-capped",
    )
    medians: dict[str, list[tuple[int, float]]] = {a: [] for a in ALGORITHMS}
    for n in scale.sweep_sizes:
        bound = lower_bound_rounds(
            make_topology("kout", n, seed=scale.seeds[0], k=3),
            exact=n <= 1500,
        )
        row: list[object] = [n, bound]
        for algorithm in ALGORITHMS:
            runs = indexed.get((algorithm, n))
            if not runs:
                row.append("-")
                continue
            incomplete = [r for r in runs if not r.completed]
            median = statistics.median(r.rounds for r in runs)
            medians[algorithm].append((n, median))
            cell = f"{median:.0f}" + ("!" if incomplete else "")
            row.append(cell)
        table.add_row(*row)
    report.add(table)

    # Growth-model fits for the two central curves.
    for algorithm in ("sublog", "namedropper"):
        points = medians[algorithm]
        if len(points) >= 3:
            fits = fit_all_models([p[0] for p in points], [p[1] for p in points])
            best = fits[0]
            report.note(
                f"{algorithm}: best-fit growth model = {best.model} "
                f"(rmse {best.rmse:.2f}); next: {fits[1].model} "
                f"(rmse {fits[1].rmse:.2f})"
            )
    sub = dict(medians["sublog"])
    if len(sub) >= 2:
        smallest, largest = min(sub), max(sub)
        report.note(
            f"sublog growth over n={smallest}->{largest}: "
            f"{sub[smallest]:.0f} -> {sub[largest]:.0f} rounds "
            f"(log2 n grows {math.log2(smallest):.0f} -> {math.log2(largest):.0f})"
        )
    nd = dict(medians["namedropper"])
    common = sorted(set(sub) & set(nd))
    # The crossover is the smallest n from which sublog stays at or below
    # namedropper for the rest of the sweep (a single early tie at tiny n
    # does not count).
    crossover = None
    for candidate in common:
        if all(sub[m] <= nd[m] for m in common if m >= candidate):
            crossover = candidate
            break
    if crossover is not None:
        report.note(
            f"round-count crossover vs namedropper at n≈{crossover} "
            "(sublog plateaus, namedropper keeps growing; on pointers "
            "sublog wins at every size — see T2)"
        )
    else:
        report.note(
            "no round-count crossover within this sweep — extend to "
            "n>=2048 (scale=full) to see sublog's plateau overtake "
            "namedropper"
        )
    report.summary = {
        "medians": {a: dict(points) for a, points in medians.items()},
    }
    return report
