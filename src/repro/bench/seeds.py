"""Benchmark scales and canonical seeds.

Experiments run at two scales:

* ``small`` — CI-friendly (seconds to a couple of minutes per experiment);
  the default for ``pytest benchmarks/``.
* ``full`` — the sizes reported in EXPERIMENTS.md (minutes).

Select with the ``REPRO_BENCH_SCALE`` environment variable or the CLI's
``--scale`` flag.  Seeds are fixed constants so that every report is
reproducible bit-for-bit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

_SCALES = ("small", "full")

#: Canonical seed list; experiments take a prefix.
CANONICAL_SEEDS: Tuple[int, ...] = (11, 23, 37, 53, 71, 89, 101, 127)


@dataclass(frozen=True)
class Scale:
    """Per-scale knobs shared by the experiments."""

    name: str
    seeds: Tuple[int, ...]
    sweep_sizes: Tuple[int, ...]  # the main n-sweep
    focus_n: int  # single-size experiments (ablations, faults)
    big_n: int  # the one large showcase size (cluster growth)

    @property
    def seed_count(self) -> int:
        return len(self.seeds)


SCALES = {
    "small": Scale(
        name="small",
        seeds=CANONICAL_SEEDS[:3],
        sweep_sizes=(64, 128, 256, 512),
        focus_n=256,
        big_n=512,
    ),
    "full": Scale(
        name="full",
        seeds=CANONICAL_SEEDS[:5],
        sweep_sizes=(64, 128, 256, 512, 1024, 2048),
        focus_n=1024,
        big_n=4096,
    ),
}


def bench_scale(name: str | None = None) -> Scale:
    """Resolve the active scale (arg > env var > ``small``)."""
    resolved = name or os.environ.get("REPRO_BENCH_SCALE", "small")
    if resolved not in SCALES:
        raise ValueError(f"unknown scale {resolved!r}; expected one of {_SCALES}")
    return SCALES[resolved]
