"""Benchmark scales and canonical seeds.

Experiments run at three scales:

* ``small`` — CI-friendly (seconds to a couple of minutes per experiment);
  the default for ``pytest benchmarks/``.
* ``full`` — the sizes reported in EXPERIMENTS.md (minutes).
* ``large`` — extends the sweep 8× past ``full``'s ceiling (n up to
  16 384, single seed; tens of minutes).  The engine side is feasible
  because the bench runner upgrades cells to the bit-packed vector
  backend at n ≥ 8192 (``runner.resolve_backend``); wall clock is
  dominated by the *protocol* side (per-node Python set bookkeeping is
  O(total learning) on any backend), which is what the per-algorithm
  size caps in T1/F1 bound.  n = 32 768 honest runs were measured to
  exceed this box's 125 GB of RAM — not in the engine matrix (128 MB)
  but in protocol-side sets and in-flight full-knowledge payloads —
  so steady-state scaling beyond that is B1's synthetic-kernel
  territory (``repro.bench.steady``), not the sweep's.

Select with the ``REPRO_BENCH_SCALE`` environment variable or the CLI's
``--scale`` flag.  Seeds are fixed constants so that every report is
reproducible bit-for-bit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

_SCALES = ("small", "full", "large")

#: Canonical seed list; experiments take a prefix.
CANONICAL_SEEDS: Tuple[int, ...] = (11, 23, 37, 53, 71, 89, 101, 127)


@dataclass(frozen=True)
class Scale:
    """Per-scale knobs shared by the experiments."""

    name: str
    seeds: Tuple[int, ...]
    sweep_sizes: Tuple[int, ...]  # the main n-sweep
    focus_n: int  # single-size experiments (ablations, faults)
    big_n: int  # the one large showcase size (cluster growth)

    @property
    def seed_count(self) -> int:
        return len(self.seeds)


SCALES = {
    "small": Scale(
        name="small",
        seeds=CANONICAL_SEEDS[:3],
        sweep_sizes=(64, 128, 256, 512),
        focus_n=256,
        big_n=512,
    ),
    "full": Scale(
        name="full",
        seeds=CANONICAL_SEEDS[:5],
        sweep_sizes=(64, 128, 256, 512, 1024, 2048),
        focus_n=1024,
        big_n=4096,
    ),
    "large": Scale(
        name="large",
        seeds=CANONICAL_SEEDS[:1],
        sweep_sizes=(4096, 8192, 16384),
        focus_n=8192,
        big_n=16384,
    ),
}


def bench_scale(name: str | None = None) -> Scale:
    """Resolve the active scale (arg > env var > ``small``)."""
    resolved = name or os.environ.get("REPRO_BENCH_SCALE", "small")
    if resolved not in SCALES:
        raise ValueError(f"unknown scale {resolved!r}; expected one of {_SCALES}")
    return SCALES[resolved]
