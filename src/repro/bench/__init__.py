"""Benchmark harness: sweep runner, tables, scales, experiments, and
record-and-replay engine kernels."""

from .replay import RecordedRun, ReplayNode, record_run, replay_engine
from .runner import (
    Case,
    build_cases,
    build_graph,
    case_key,
    index_results,
    run_case,
    sweep,
    sweep_seeds,
)
from .seeds import CANONICAL_SEEDS, SCALES, Scale, bench_scale
from .store import (
    append_journal,
    load_journal,
    load_metadata,
    load_results,
    read_journal,
    save_results,
)
from .sweeprun import (
    CellFailure,
    CellTimeout,
    SweepError,
    SweepOptions,
    SweepProgress,
    SweepReport,
    SweepRunner,
)
from .tables import ExperimentReport, Figure, Series, Table

__all__ = [
    "CANONICAL_SEEDS",
    "Case",
    "CellFailure",
    "CellTimeout",
    "ExperimentReport",
    "Figure",
    "RecordedRun",
    "ReplayNode",
    "SCALES",
    "Scale",
    "Series",
    "SweepError",
    "SweepOptions",
    "SweepProgress",
    "SweepReport",
    "SweepRunner",
    "Table",
    "append_journal",
    "bench_scale",
    "build_cases",
    "build_graph",
    "case_key",
    "index_results",
    "load_journal",
    "load_metadata",
    "load_results",
    "read_journal",
    "record_run",
    "replay_engine",
    "run_case",
    "save_results",
    "sweep",
    "sweep_seeds",
]
