"""Benchmark harness: sweep runner, tables, scales, and experiments."""

from .runner import Case, build_graph, index_results, run_case, sweep
from .seeds import CANONICAL_SEEDS, SCALES, Scale, bench_scale
from .store import load_metadata, load_results, save_results
from .tables import ExperimentReport, Figure, Series, Table

__all__ = [
    "CANONICAL_SEEDS",
    "Case",
    "ExperimentReport",
    "Figure",
    "SCALES",
    "Scale",
    "Series",
    "Table",
    "bench_scale",
    "build_graph",
    "index_results",
    "load_metadata",
    "load_results",
    "run_case",
    "save_results",
    "sweep",
]
