"""Benchmark harness: sweep runner, tables, scales, experiments, and
record-and-replay engine kernels."""

from .replay import RecordedRun, ReplayNode, record_run, replay_engine
from .runner import Case, build_graph, index_results, run_case, sweep, sweep_seeds
from .seeds import CANONICAL_SEEDS, SCALES, Scale, bench_scale
from .store import load_metadata, load_results, save_results
from .tables import ExperimentReport, Figure, Series, Table

__all__ = [
    "CANONICAL_SEEDS",
    "Case",
    "ExperimentReport",
    "Figure",
    "RecordedRun",
    "ReplayNode",
    "SCALES",
    "Scale",
    "Series",
    "Table",
    "bench_scale",
    "build_graph",
    "index_results",
    "load_metadata",
    "load_results",
    "record_run",
    "replay_engine",
    "run_case",
    "save_results",
    "sweep",
    "sweep_seeds",
]
