"""Plain-text tables and figure series for experiment reports.

The benchmark harness regenerates each evaluation artifact as an ASCII
:class:`Table` (for paper-style tables) or as a :class:`Series` block (for
figures, rendered as aligned columns of x/y series — the data a plot would
show).  Both render deterministically, so report files diff cleanly across
runs with the same seeds.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}" if abs(value) < 1000 else f"{value:,.0f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


class Table:
    """A titled, column-aligned plain-text table."""

    def __init__(
        self, title: str, columns: Sequence[str], caption: str = ""
    ) -> None:
        self.title = title
        self.columns = list(columns)
        self.caption = caption
        self._rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append([_format_cell(value) for value in values])

    @property
    def rows(self) -> List[List[str]]:
        return [list(row) for row in self._rows]

    def column(self, name: str) -> List[str]:
        index = self.columns.index(name)
        return [row[index] for row in self._rows]

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        out = io.StringIO()
        out.write(f"== {self.title} ==\n")
        if self.caption:
            out.write(f"{self.caption}\n")
        header = "  ".join(
            column.ljust(width) for column, width in zip(self.columns, widths)
        )
        out.write(header.rstrip() + "\n")
        out.write("  ".join("-" * width for width in widths) + "\n")
        for row in self._rows:
            line = "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            out.write(line.rstrip() + "\n")
        return out.getvalue()

    def to_csv(self) -> str:
        lines = [",".join(self.columns)]
        for row in self._rows:
            lines.append(",".join(cell.replace(",", "") for cell in row))
        return "\n".join(lines) + "\n"


@dataclass
class Series:
    """One named y-series over a shared x-axis (a figure's line)."""

    name: str
    values: List[float] = field(default_factory=list)


class Figure:
    """Figure data rendered as aligned x/series columns.

    Absolute plotting is left to the reader; the rendered block contains
    exactly the numbers the corresponding paper figure would plot.
    """

    def __init__(
        self,
        title: str,
        x_label: str,
        x_values: Sequence[float],
        caption: str = "",
    ) -> None:
        self.title = title
        self.x_label = x_label
        self.x_values = list(x_values)
        self.caption = caption
        self.series: List[Series] = []

    def add_series(self, name: str, values: Sequence[float]) -> None:
        values = list(values)
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, x-axis has "
                f"{len(self.x_values)}"
            )
        self.series.append(Series(name=name, values=values))

    def render(self) -> str:
        table = Table(
            self.title,
            [self.x_label, *(series.name for series in self.series)],
            caption=self.caption,
        )
        for index, x in enumerate(self.x_values):
            table.add_row(x, *(series.values[index] for series in self.series))
        return table.render()


@dataclass
class ExperimentReport:
    """Everything one experiment produced: tables, figures, free-form notes."""

    experiment_id: str
    title: str
    artifacts: List[Any] = field(default_factory=list)  # Table | Figure
    notes: List[str] = field(default_factory=list)
    summary: Dict[str, Any] = field(default_factory=dict)

    def add(self, artifact: Any) -> None:
        self.artifacts.append(artifact)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        out = io.StringIO()
        out.write(f"######## {self.experiment_id}: {self.title} ########\n\n")
        for artifact in self.artifacts:
            out.write(artifact.render())
            out.write("\n")
        for note in self.notes:
            out.write(f"note: {note}\n")
        return out.getvalue()
