"""Sweep execution for the benchmark harness.

:func:`run_case` executes one (algorithm, topology, n, seed) cell;
:func:`sweep` executes a full matrix, optionally fanned out over worker
processes.  Runs in the harness disable the per-message legality check by
default — the model conformance of every shipped algorithm is established
by the test suite (including the strict ball-containment observer), so the
harness pays for it only in experiment F4, which is *about* the invariant.
For the same reason the harness runs on the engine's dense fast path by
default: the differential suite holds it bit-identical to the reference
path, and the experiments exist to measure protocols, not to re-prove the
engine.

Parallel sweeps are deterministic: every cell's randomness derives from
the cell's own seed (see :func:`sweep_seeds` for deriving a seed list from
one master seed via ``sim.rng``), each worker rebuilds its input graph
from that seed, and results return in case order — so ``workers=8`` and
``workers=1`` produce identical result lists.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..graphs.generators import make_topology
from ..graphs.knowledge import KnowledgeGraph
from ..sim.faults import FaultPlan
from ..sim.metrics import RunResult
from ..sim.observers import Observer
from ..sim.rng import derive_seed
from ..sim.transport import DeliveryModel
from ..sim.vector_kernel import vector_available

#: Size at which harness runs upgrade from the fast path to the vector
#: backend when no explicit backend is requested.  The crossover point:
#: below it the fast path's per-message Python-int ops win on constant
#: factors; above it the vector backend's batched screens dominate (and
#: the fast path's pow2 table ages out at n > 2**14 anyway).  Gated on
#: the oracle's vector-vs-fast differential coverage — see
#: :func:`repro.oracle.differential.diff_vector_vs_fast`.
VECTOR_DEFAULT_MIN_N = 8192


def resolve_backend(
    n: int, backend: Optional[str] = None, *, fast_path: bool = True
) -> str:
    """The engine backend a harness run of size *n* executes on.

    An explicit *backend* always wins.  Otherwise ``fast_path=False``
    selects the reference path, and the default fast path auto-upgrades
    to ``vector`` at ``n >= VECTOR_DEFAULT_MIN_N`` when numpy is
    importable (falling back to ``fast`` when it is not, so a
    numpy-less environment still benches rather than erroring).
    """
    if backend is not None:
        return backend
    if not fast_path:
        return "legacy"
    if n >= VECTOR_DEFAULT_MIN_N and vector_available():
        return "vector"
    return "fast"


@dataclass(frozen=True)
class Case:
    """One cell of an experiment matrix.

    ``delivery`` is a delivery-model spec (string like ``"adversarial:2"``
    or an unbound :class:`~repro.sim.transport.DeliveryModel`); ``None``
    means lockstep.  Specs are picklable, so delivery-model cases fan out
    over sweep workers like any other.
    """

    algorithm: str
    topology: str
    n: int
    seed: int
    goal: str = "strong"
    params: Mapping[str, Any] = field(default_factory=dict)
    topology_params: Mapping[str, Any] = field(default_factory=dict)
    delivery: Optional[Union[str, DeliveryModel]] = None
    label: Optional[str] = None  # display name when params vary

    @property
    def display(self) -> str:
        return self.label or self.algorithm


def build_graph(case: Case) -> KnowledgeGraph:
    """The deterministic input graph of a case (seeded by the case seed)."""
    return make_topology(
        case.topology, case.n, seed=case.seed, **dict(case.topology_params)
    )


def case_key(case: Case) -> str:
    """Canonical identity string for one cell.

    Sweep journals key their records on this, so it must be stable across
    processes, platforms, and library versions: a plain JSON object with
    sorted keys, delivery models flattened to their spec strings, and
    non-JSON parameter values rendered via ``repr``.
    """
    delivery = case.delivery
    if delivery is not None and not isinstance(delivery, str):
        delivery = delivery.describe()
    payload = {
        "algorithm": case.algorithm,
        "topology": case.topology,
        "n": case.n,
        "seed": case.seed,
        "goal": case.goal,
        "params": dict(case.params),
        "topology_params": dict(case.topology_params),
        "delivery": delivery,
        "label": case.label,
    }
    return json.dumps(payload, sort_keys=True, default=repr, separators=(",", ":"))


def sweep_seeds(master_seed: int, count: int) -> List[int]:
    """Derive *count* independent 32-bit case seeds from one master seed.

    Uses the repository's stable seed derivation (`sim.rng.derive_seed`),
    so the same master seed yields the same sweep on any machine, any
    worker count, any process launch method.
    """
    return [
        derive_seed(master_seed, "sweep-case", index) & 0xFFFFFFFF
        for index in range(count)
    ]


def run_case(
    case: Case,
    *,
    fault_plan: Optional[FaultPlan] = None,
    jitter: int = 0,
    delivery: Optional[Union[str, DeliveryModel]] = None,
    observers: Iterable[Observer] = (),
    enforce_legality: bool = False,
    fast_path: bool = True,
    backend: Optional[str] = None,
    max_rounds: Optional[int] = None,
    graph: Optional[KnowledgeGraph] = None,
) -> RunResult:
    """Execute one case and return its result.

    The ``delivery`` keyword overrides ``case.delivery`` when given;
    ``jitter`` remains the legacy alias and is mutually exclusive with
    both (enforced by the engine).  ``backend`` pins the engine backend;
    by default :func:`resolve_backend` picks one from the case size.
    """
    from .. import discover  # local import: repro re-exports this module

    if graph is None:
        graph = build_graph(case)
    if delivery is None:
        delivery = case.delivery
    return discover(
        graph,
        algorithm=case.algorithm,
        seed=case.seed,
        goal=case.goal,
        fault_plan=fault_plan,
        jitter=jitter,
        delivery=delivery,
        observers=observers,
        enforce_legality=enforce_legality,
        backend=resolve_backend(case.n, backend, fast_path=fast_path),
        max_rounds=max_rounds,
        **dict(case.params),
    )


def _run_sweep_case(payload: Tuple[Case, bool, bool, Optional[str]]) -> RunResult:
    """Module-level worker body (must be picklable for spawn workers)."""
    case, enforce_legality, fast_path, backend = payload
    return run_case(
        case,
        enforce_legality=enforce_legality,
        fast_path=fast_path,
        backend=backend,
    )


def build_cases(
    algorithms: Sequence[str],
    topology: str,
    sizes: Sequence[int],
    seeds: Sequence[int],
    *,
    goal: str = "strong",
    params_by_algorithm: Optional[Mapping[str, Mapping[str, Any]]] = None,
    topology_params: Optional[Mapping[str, Any]] = None,
    size_caps: Optional[Mapping[str, int]] = None,
    delivery: Optional[Union[str, DeliveryModel]] = None,
) -> List[Case]:
    """The (algorithm × size × seed) case matrix of a sweep, in run order.

    One graph seed per (size, seed) cell, shared by all algorithms so
    that every algorithm sees the *same* inputs.  Cells size-capped for
    an algorithm are absent.
    """
    params_by_algorithm = params_by_algorithm or {}
    cases: List[Case] = []
    for n in sizes:
        for seed in seeds:
            for algorithm in algorithms:
                cap = (size_caps or {}).get(algorithm)
                if cap is not None and n > cap:
                    continue
                cases.append(
                    Case(
                        algorithm=algorithm,
                        topology=topology,
                        n=n,
                        seed=seed,
                        goal=goal,
                        params=params_by_algorithm.get(algorithm, {}),
                        topology_params=topology_params or {},
                        delivery=delivery,
                    )
                )
    return cases


def sweep(
    algorithms: Sequence[str],
    topology: str,
    sizes: Sequence[int],
    seeds: Sequence[int],
    *,
    goal: str = "strong",
    params_by_algorithm: Optional[Mapping[str, Mapping[str, Any]]] = None,
    topology_params: Optional[Mapping[str, Any]] = None,
    size_caps: Optional[Mapping[str, int]] = None,
    workers: Optional[int] = None,
    enforce_legality: bool = False,
    fast_path: bool = True,
    backend: Optional[str] = None,
    delivery: Optional[Union[str, DeliveryModel]] = None,
    retries: int = 0,
    cell_timeout: Optional[float] = None,
    journal: Optional[Any] = None,
    resume: bool = False,
    progress: Optional[Callable[[Any], None]] = None,
    on_failure: str = "raise",
    _test_fault_hook: Optional[Callable[[Case, int], None]] = None,
) -> List[RunResult]:
    """Run a full (algorithm × size × seed) matrix on one topology.

    ``size_caps`` bounds the n at which an expensive algorithm still runs
    (e.g. classic swamping's pointer complexity is cubic; running it past
    n ≈ 512 buys no insight for minutes of wall clock).  Capped cells are
    simply absent from the result list; tables render them as ``-``.

    ``workers`` > 1 distributes the cells over a process pool.  Each
    worker rebuilds its cell's graph deterministically from the cell seed,
    and the result list keeps case order, so the output is identical to a
    serial sweep.

    ``delivery`` applies one delivery-model spec to every cell (each run
    binds its own per-run state, so sharing the spec is safe — including
    across worker processes, where it travels by pickle inside the case).

    The remaining keywords select the crash-safe execution layer
    (:class:`repro.bench.sweeprun.SweepRunner`): ``retries`` re-attempts a
    failing cell with bounded seed-deterministic backoff, ``cell_timeout``
    bounds one cell's wall clock, ``journal``/``resume`` persist completed
    cells to an append-only JSONL log and skip them on restart, and
    ``progress`` receives a :class:`~repro.bench.sweeprun.SweepProgress`
    event per finished cell.  ``on_failure`` decides what a cell that
    still fails after its retries does to the sweep: ``"raise"`` (the
    default) raises :class:`~repro.bench.sweeprun.SweepError` *after*
    every other cell has run (and been journaled), ``"skip"`` leaves the
    failed cells out of the result list.  With none of these engaged the
    sweep runs on the plain in-process paths below, byte-for-byte as it
    always has.
    """
    cases = build_cases(
        algorithms,
        topology,
        sizes,
        seeds,
        goal=goal,
        params_by_algorithm=params_by_algorithm,
        topology_params=topology_params,
        size_caps=size_caps,
        delivery=delivery,
    )

    robust = (
        retries
        or cell_timeout is not None
        or journal is not None
        or resume
        or progress is not None
        or on_failure != "raise"
        or _test_fault_hook is not None
    )
    if robust:
        from .sweeprun import SweepError, SweepRunner

        runner = SweepRunner(
            workers=workers,
            retries=retries,
            cell_timeout=cell_timeout,
            journal=journal,
            resume=resume,
            progress=progress,
            enforce_legality=enforce_legality,
            fast_path=fast_path,
            backend=backend,
            fault_hook=_test_fault_hook,
        )
        report = runner.run(cases)
        if report.failures and on_failure == "raise":
            raise SweepError(report.failures)
        return report.results

    if workers is not None and workers > 1 and len(cases) > 1:
        payloads = [(case, enforce_legality, fast_path, backend) for case in cases]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_run_sweep_case, payloads))

    results: List[RunResult] = []
    graph_cache: Dict[Tuple[int, int], KnowledgeGraph] = {}
    for case in cases:
        key = (case.n, case.seed)
        graph = graph_cache.get(key)
        if graph is None:
            graph = build_graph(case)
            graph_cache[key] = graph
        results.append(
            run_case(
                case,
                graph=graph,
                enforce_legality=enforce_legality,
                fast_path=fast_path,
                backend=backend,
            )
        )
    return results


def index_results(
    results: Iterable[RunResult],
) -> Dict[Tuple[str, int], List[RunResult]]:
    """Index results by (algorithm, n) for table construction."""
    indexed: Dict[Tuple[str, int], List[RunResult]] = {}
    for result in results:
        indexed.setdefault((result.algorithm, result.n), []).append(result)
    return indexed
