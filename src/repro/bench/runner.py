"""Sweep execution for the benchmark harness.

:func:`run_case` executes one (algorithm, topology, n, seed) cell;
:func:`sweep` executes a full matrix.  Runs in the harness disable the
per-message legality check by default — the model conformance of every
shipped algorithm is established by the test suite (including the strict
ball-containment observer), so the harness pays for it only in experiment
F4, which is *about* the invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..graphs.generators import make_topology
from ..graphs.knowledge import KnowledgeGraph
from ..sim.faults import FaultPlan
from ..sim.metrics import RunResult
from ..sim.observers import Observer


@dataclass(frozen=True)
class Case:
    """One cell of an experiment matrix."""

    algorithm: str
    topology: str
    n: int
    seed: int
    goal: str = "strong"
    params: Mapping[str, Any] = field(default_factory=dict)
    topology_params: Mapping[str, Any] = field(default_factory=dict)
    label: Optional[str] = None  # display name when params vary

    @property
    def display(self) -> str:
        return self.label or self.algorithm


def build_graph(case: Case) -> KnowledgeGraph:
    """The deterministic input graph of a case (seeded by the case seed)."""
    return make_topology(
        case.topology, case.n, seed=case.seed, **dict(case.topology_params)
    )


def run_case(
    case: Case,
    *,
    fault_plan: Optional[FaultPlan] = None,
    jitter: int = 0,
    observers: Iterable[Observer] = (),
    enforce_legality: bool = False,
    max_rounds: Optional[int] = None,
    graph: Optional[KnowledgeGraph] = None,
) -> RunResult:
    """Execute one case and return its result."""
    from .. import discover  # local import: repro re-exports this module

    if graph is None:
        graph = build_graph(case)
    return discover(
        graph,
        algorithm=case.algorithm,
        seed=case.seed,
        goal=case.goal,
        fault_plan=fault_plan,
        jitter=jitter,
        observers=observers,
        enforce_legality=enforce_legality,
        max_rounds=max_rounds,
        **dict(case.params),
    )


def sweep(
    algorithms: Sequence[str],
    topology: str,
    sizes: Sequence[int],
    seeds: Sequence[int],
    *,
    goal: str = "strong",
    params_by_algorithm: Optional[Mapping[str, Mapping[str, Any]]] = None,
    topology_params: Optional[Mapping[str, Any]] = None,
    size_caps: Optional[Mapping[str, int]] = None,
) -> List[RunResult]:
    """Run a full (algorithm × size × seed) matrix on one topology.

    ``size_caps`` bounds the n at which an expensive algorithm still runs
    (e.g. classic swamping's pointer complexity is cubic; running it past
    n ≈ 512 buys no insight for minutes of wall clock).  Capped cells are
    simply absent from the result list; tables render them as ``-``.
    """
    params_by_algorithm = params_by_algorithm or {}
    results: List[RunResult] = []
    for n in sizes:
        # One graph per (size, seed), shared by all algorithms so that
        # every algorithm sees the *same* inputs.
        for seed in seeds:
            case_graph = make_topology(
                topology, n, seed=seed, **(topology_params or {})
            )
            for algorithm in algorithms:
                cap = (size_caps or {}).get(algorithm)
                if cap is not None and n > cap:
                    continue
                case = Case(
                    algorithm=algorithm,
                    topology=topology,
                    n=n,
                    seed=seed,
                    goal=goal,
                    params=params_by_algorithm.get(algorithm, {}),
                    topology_params=topology_params or {},
                )
                results.append(run_case(case, graph=case_graph))
    return results


def index_results(
    results: Iterable[RunResult],
) -> Dict[Tuple[str, int], List[RunResult]]:
    """Index results by (algorithm, n) for table construction."""
    indexed: Dict[Tuple[str, int], List[RunResult]] = {}
    for result in results:
        indexed.setdefault((result.algorithm, result.n), []).append(result)
    return indexed
