"""Benchmark driver for experiment T5 — ablations.

Regenerates: T5 (one row per disabled mechanism).
Shape asserted: chain contraction is the load-bearing mechanism (the coin
variant is materially slower), and the default variant's pointer cost is
a small fraction of full-knowledge gossip.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import get_experiment


def test_t5_ablations(benchmark, scale, save_report):
    report = run_once(benchmark, lambda: get_experiment("T5").run(scale))
    save_report(report)

    summary = report.summary
    default = summary["sublog (default)"]
    assert summary["coin contraction"]["rounds"] >= 1.5 * default["rounds"]
    assert default["pointers"] < summary["namedropper push"]["pointers"] / 2
