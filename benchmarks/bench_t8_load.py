"""Benchmark driver for experiment T8 — load profile.

Regenerates: T8 (peak inbox and receive skew per algorithm).
Shape asserted: the leader-based algorithm has a materially higher peak
and skew than uniform gossip — the documented price of its total-cost
optimality.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import get_experiment


def test_t8_load(benchmark, scale, save_report):
    report = run_once(benchmark, lambda: get_experiment("T8").run(scale))
    save_report(report)

    summary = report.summary
    assert summary["sublog"]["peak"] > 4 * summary["namedropper"]["peak"]
    assert summary["sublog"]["skew"] > summary["namedropper"]["skew"]
