"""Benchmark driver for experiment F4 — the lower-bound demonstration.

Regenerates: F4 (max knowledge radius per round vs the 2^t ceiling).
Shape asserted: the strict checker recorded zero violations and
swamping's radius trace actually doubles (the bound is tight).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import get_experiment


def test_f4_lower_bound(benchmark, scale, save_report):
    report = run_once(benchmark, lambda: get_experiment("F4").run(scale))
    save_report(report)

    radii = report.summary["radii"]["swamping"]
    # Doubling trace: each round's radius is close to 2x the previous.
    for previous, current in zip(radii, radii[1:]):
        assert current >= previous
    assert radii[-1] >= 2 ** (len(radii) - 2)
    assert all("0 violations" in note for note in report.notes)
