"""Benchmark driver for experiment F1 — round-scaling figure.

Regenerates: F1 (rounds vs n series per algorithm + lower bound).
Shape asserted: every series dominates the lower-bound series.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.bench.experiments import get_experiment


def test_f1_round_scaling(benchmark, scale, save_report):
    report = run_once(benchmark, lambda: get_experiment("F1").run(scale))
    save_report(report)

    figure = report.artifacts[0]
    bounds = next(s for s in figure.series if s.name == "lower-bound")
    for series in figure.series:
        if series.name == "lower-bound":
            continue
        for bound, value in zip(bounds.values, series.values):
            if not math.isnan(value):
                assert value >= bound
