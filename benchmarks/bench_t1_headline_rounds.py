"""Benchmark driver for experiment T1 — the headline rounds table.

Regenerates: T1 (rounds to strong discovery, all algorithms, n-sweep).

Shape asserted (the asymptotic claim, not a pointwise one): sublog's
round count *plateaus* — it grows by at most two phases across the whole
sweep — while namedropper's keeps growing with log n, so sublog's total
growth is no larger than namedropper's and the curves cross.  Measured
crossover on 3-out inputs: n ≈ 1024–2048 (namedropper 18 → 26 rounds over
n = 512 → 4096 while sublog stays at 20); below it namedropper's small
constant wins on rounds, but sublog already wins pointers by ~8×
everywhere (experiment T2).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import get_experiment
from repro.core.phases import ROUNDS_PER_PHASE


def test_t1_headline_rounds(benchmark, scale, save_report):
    report = run_once(benchmark, lambda: get_experiment("T1").run(scale))
    save_report(report)

    medians = report.summary["medians"]
    sublog = medians["sublog"]
    namedropper = medians["namedropper"]

    # Plateau: at most two extra phases across the whole sweep.
    smallest, biggest = min(sublog), max(sublog)
    assert sublog[biggest] <= sublog[smallest] + 2 * ROUNDS_PER_PHASE

    # Relative shape: sublog grows no faster than namedropper.
    common = sorted(set(sublog) & set(namedropper))
    lo, hi = common[0], common[-1]
    sublog_growth = sublog[hi] - sublog[lo]
    namedropper_growth = namedropper[hi] - namedropper[lo]
    assert sublog_growth <= max(namedropper_growth, ROUNDS_PER_PHASE)

    # Past the measured crossover the plateau must actually win.
    if hi >= 2048:
        assert sublog[hi] <= namedropper[hi]
