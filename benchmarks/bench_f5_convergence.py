"""Benchmark driver for experiment F5 — convergence curves.

Regenerates: F5 (completeness per round) and F5b (milestones).
Shape asserted: every algorithm reaches t100, and swamping's t100 is the
earliest (it is round-optimal).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import get_experiment


def test_f5_convergence(benchmark, scale, save_report):
    report = run_once(benchmark, lambda: get_experiment("F5").run(scale))
    save_report(report)

    summary = report.summary
    for algorithm, stones in summary.items():
        assert stones["t100"] is not None, algorithm
    assert summary["swamping"]["t100"] <= summary["sublog"]["t100"]
    assert summary["swamping"]["t100"] <= summary["namedropper"]["t100"]
