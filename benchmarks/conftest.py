"""Shared fixtures for the benchmark drivers.

Each driver regenerates one evaluation artifact (table or figure), prints
it, and writes it under ``results/`` so EXPERIMENTS.md can reference the
exact output.  Scale is controlled by ``REPRO_BENCH_SCALE`` (small|full).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.seeds import Scale, bench_scale

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale() -> Scale:
    return bench_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir, scale):
    """Print a report and persist it as results/<id>.<scale>.txt."""

    def _save(report) -> None:
        text = report.render()
        print()
        print(text)
        path = results_dir / f"{report.experiment_id}.{scale.name}.txt"
        path.write_text(text)

    return _save


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing.

    Experiments are long-running sweeps; statistical repetition happens
    *inside* them (across seeds), so one timed invocation is correct.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
