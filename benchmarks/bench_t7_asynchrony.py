"""Benchmark driver for experiment T7 — bounded asynchrony.

Regenerates: T7 (rounds under delivery jitter).
Shape asserted: every algorithm completes at every jitter level (the
experiment itself asserts completion), and degradation is bounded —
jitter 4 costs sublog at most ~(1+J) times its synchronous rounds.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import get_experiment


def test_t7_asynchrony(benchmark, scale, save_report):
    report = run_once(benchmark, lambda: get_experiment("T7").run(scale))
    save_report(report)

    summary = report.summary
    for algorithm, by_jitter in summary.items():
        assert by_jitter[4] <= (1 + 4) * max(by_jitter[0], 6.0), algorithm
    # Gossip's relative degradation is the milder one.
    nd_ratio = summary["namedropper"][4] / summary["namedropper"][0]
    sublog_ratio = summary["sublog"][4] / summary["sublog"][0]
    assert nd_ratio <= sublog_ratio + 1.0
