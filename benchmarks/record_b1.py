"""Regenerate ``BENCH_B1.json`` — the committed B1 kernel baseline.

Measures the engine's round throughput on the steady-state replay kernel
(the final, heaviest rounds of a recorded Name-Dropper run — see
``docs/PERF.md``) and on the cold-start kernel, on all three engine
backends and both legality modes, plus the synthetic steady-state
kernels (:mod:`repro.bench.steady`) at n = 10^5 where recording a real
run is out of reach.  Writes one machine-readable JSON record including
the git revision it was measured at::

    PYTHONPATH=src python benchmarks/record_b1.py --out BENCH_B1.json

The committed file is documentation plus one CI gate
(``benchmarks/check_b1_regression.py`` re-times the n=256 kernel and
fails on a large ns/pointer regression): absolute numbers are
machine-dependent, but the backend *ratios* are what the dense paths
promise — fast >= 3x over legacy at n=256, and vector >= 10x over fast
at n = 10^5 in the catch-up regime at below the fast path's n=4096
per-pointer cost.

n = 10^6 remains out of reach on one box: the packed knowledge matrix
alone is n * n/8 = 125 GB, matching this machine's entire RAM before
accounting for the engine or the payloads.  The stretch row is therefore
documented as infeasible rather than measured; see docs/PERF.md.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402
from repro.algorithms.registry import get_algorithm  # noqa: E402
from repro.bench.replay import RecordedRun, record_run, replay_engine  # noqa: E402
from repro.bench.steady import SteadySpec, build_steady_engine  # noqa: E402
from repro.graphs import make_topology  # noqa: E402
from repro.sim import SynchronousEngine, vector_available  # noqa: E402

SEED = 11
STEADY_WINDOW = 5
ACCEPTANCE_SPEEDUP = 3.0
VECTOR_ACCEPTANCE_SPEEDUP = 10.0
#: The fast path's measured steady-state cost at n=4096 (the best it
#: achieves at any size); the vector backend must do better at n=1e5.
FAST_N4096_NS_PER_POINTER = 2.9
#: Best-of repeat counts per size (large-n windows are seconds long).
REPEATS = {256: 7, 1024: 3, 4096: 1}

#: The two synthetic large-n workloads.  ``catchup`` is the comparable
#: row — half the network missing a shared 40k-id block while complete
#: nodes broadcast full knowledge; both dense backends can run it.
#: ``broadcast`` is the true steady-state regime — every complete node
#: gossips the full id space every round; only the vector backend can
#: afford the per-message payload translation at this n, so its row is
#: vector-only (the fast path's O(|ids|) per-message conversion alone
#: would cost hours per round).
LARGE_N_SPECS = {
    "catchup": dict(
        window=2,
        senders_per_round=2048,
        pointers_per_message=None,
        laggards_fraction=0.5,
        missing_per_laggard=40_000,
        shared_missing=True,
    ),
    "broadcast": dict(
        window=2,
        senders_per_round=None,
        pointers_per_message=None,
        laggards_fraction=None,  # fixed small population
        missing_per_laggard=4096,
        shared_missing=False,
    ),
}


def best_of(make_engine: Callable[[], SynchronousEngine],
            rounds: int, repeats: int) -> float:
    """Best-of-*repeats* wall time of stepping a fresh engine *rounds*
    times; engine construction is excluded from the timed region."""
    best = float("inf")
    for _ in range(repeats):
        engine = make_engine()
        started = time.perf_counter()
        for _ in range(rounds):
            engine.step()
        best = min(best, time.perf_counter() - started)
    return best


def replay_backends() -> List[str]:
    backends = ["legacy", "fast"]
    if vector_available():
        backends.append("vector")
    return backends


def steady_case(recorded: RecordedRun, n: int, enforce: bool,
                repeats: int) -> Dict[str, object]:
    start = recorded.rounds - STEADY_WINDOW + 1
    window_pointers = sum(
        stats.pointers for stats in recorded.result.round_stats[start - 1:]
    )
    timings = {}
    for backend in replay_backends():
        timings[backend] = best_of(
            lambda: replay_engine(
                recorded, start_round=start, backend=backend, force=True,
                enforce_legality=enforce,
            ),
            STEADY_WINDOW,
            repeats,
        )
    case: Dict[str, object] = {
        "kernel": "steady_replay",
        "n": n,
        "seed": SEED,
        "enforce_legality": enforce,
        "window_rounds": STEADY_WINDOW,
        "window_pointers": window_pointers,
        "bytes_per_node": (n + 7) >> 3,
        "matrix_mb": round(n * ((n + 7) >> 3) / (1 << 20), 1),
        "legacy_ms": round(timings["legacy"] * 1e3, 3),
        "fast_ms": round(timings["fast"] * 1e3, 3),
        "speedup": round(timings["legacy"] / timings["fast"], 2),
        "rounds_per_s_legacy": round(STEADY_WINDOW / timings["legacy"], 1),
        "rounds_per_s_fast": round(STEADY_WINDOW / timings["fast"], 1),
        "ns_per_pointer_legacy": round(
            timings["legacy"] * 1e9 / window_pointers, 1
        ),
        "ns_per_pointer_fast": round(
            timings["fast"] * 1e9 / window_pointers, 1
        ),
    }
    if "vector" in timings:
        case["vector_ms"] = round(timings["vector"] * 1e3, 3)
        case["speedup_vector"] = round(timings["legacy"] / timings["vector"], 2)
        case["vector_over_fast"] = round(timings["fast"] / timings["vector"], 2)
        case["ns_per_pointer_vector"] = round(
            timings["vector"] * 1e9 / window_pointers, 2
        )
    return case


def cold_start_case(graph, n: int, repeats: int) -> Dict[str, object]:
    """The pre-existing B1 kernel: 5 rounds from a cold engine, protocol
    work included.  Kept for continuity — it is protocol-dominated, so
    the backends are expected to be close here."""
    spec = get_algorithm("namedropper")
    timings = {}
    for backend in replay_backends():
        timings[backend] = best_of(
            lambda: SynchronousEngine(
                graph, spec.node_factory(), seed=SEED,
                enforce_legality=False, backend=backend,
            ),
            5,
            repeats,
        )
    case: Dict[str, object] = {
        "kernel": "cold_start_5_rounds",
        "n": n,
        "seed": SEED,
        "enforce_legality": False,
        "legacy_ms": round(timings["legacy"] * 1e3, 3),
        "fast_ms": round(timings["fast"] * 1e3, 3),
        "speedup": round(timings["legacy"] / timings["fast"], 2),
    }
    if "vector" in timings:
        case["vector_ms"] = round(timings["vector"] * 1e3, 3)
        case["vector_over_fast"] = round(timings["fast"] / timings["vector"], 2)
    return case


def large_n_spec(name: str, n: int) -> SteadySpec:
    params = LARGE_N_SPECS[name]
    fraction = params["laggards_fraction"]
    laggards = int(n * fraction) if fraction is not None else 64
    return SteadySpec(
        n=n,
        window=params["window"],
        senders_per_round=params["senders_per_round"],
        pointers_per_message=params["pointers_per_message"],
        laggards=laggards,
        missing_per_laggard=params["missing_per_laggard"],
        shared_missing=params["shared_missing"],
        seed=SEED,
    )


def synthetic_case(name: str, n: int) -> Dict[str, object]:
    """One synthetic steady-state row at large n (single-shot timing —
    a window is seconds long and the injected state is deterministic)."""
    spec = large_n_spec(name, n)
    backends = ["vector"] if name == "broadcast" else ["fast", "vector"]
    case: Dict[str, object] = {
        "kernel": f"steady_synthetic_{name}",
        "n": n,
        "seed": SEED,
        "enforce_legality": False,
        "window_rounds": spec.window,
        "senders_per_round": spec.senders_per_round,
        "pointers_per_message": spec.pointers_per_message or n,
        "laggards": spec.laggards,
        "bytes_per_node": spec.bytes_per_node,
        "matrix_mb": spec.matrix_mb,
    }
    window_pointers = None
    for backend in backends:
        engine, window_pointers = build_steady_engine(
            spec, backend, sync_sets=False
        )
        started = time.perf_counter()
        for _ in range(spec.window):
            engine.step()
        elapsed = time.perf_counter() - started
        del engine  # free the ~GB state before the next backend builds
        case[f"{backend}_ms"] = round(elapsed * 1e3, 1)
        case[f"ns_per_pointer_{backend}"] = round(
            elapsed * 1e9 / window_pointers, 3
        )
    case["window_pointers"] = window_pointers
    if "fast_ms" in case:
        case["vector_over_fast"] = round(
            case["fast_ms"] / case["vector_ms"], 2  # type: ignore[operator]
        )
    else:
        case["fast_ms"] = None
        case["note"] = (
            "fast path infeasible: O(|ids|) per-message payload "
            "translation at full-knowledge payloads costs hours per round"
        )
    return case


def git_rev() -> Optional[str]:
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT, text=True
        ).strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", nargs="+", type=int,
                        default=[256, 1024, 4096])
    parser.add_argument("--large-n", nargs="+", type=int, default=[100_000],
                        help="sizes for the synthetic steady-state rows")
    parser.add_argument("--skip-large", action="store_true",
                        help="skip the synthetic large-n rows")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_B1.json"))
    args = parser.parse_args(argv)

    results: List[Dict[str, object]] = []
    for n in args.sizes:
        repeats = REPEATS.get(n, 1)
        graph = make_topology("kout", n, seed=SEED, k=3)
        spec = get_algorithm("namedropper")
        probe = repro.discover(
            graph, algorithm="namedropper", seed=SEED, enforce_legality=False
        )
        print(f"n={n}: recording {probe.rounds}-round run "
              f"({probe.pointers:,} pointers)...", flush=True)
        recorded = record_run(
            graph, spec.node_factory(), seed=SEED,
            snapshot_rounds=(probe.rounds - STEADY_WINDOW,),
            max_rounds=spec.round_cap(n),
        )
        for enforce in (False, True):
            case = steady_case(recorded, n, enforce, repeats)
            results.append(case)
            print(f"  steady enforce={enforce}: legacy {case['legacy_ms']}ms "
                  f"fast {case['fast_ms']}ms "
                  f"vector {case.get('vector_ms', '-')}ms "
                  f"-> {case['speedup']}x", flush=True)
        case = cold_start_case(graph, n, repeats)
        results.append(case)
        print(f"  cold-start: legacy {case['legacy_ms']}ms "
              f"fast {case['fast_ms']}ms -> {case['speedup']}x", flush=True)

    if not args.skip_large and vector_available():
        for n in args.large_n:
            for name in ("catchup", "broadcast"):
                print(f"n={n}: synthetic {name} kernel...", flush=True)
                case = synthetic_case(name, n)
                results.append(case)
                print(f"  fast {case['fast_ms']}ms "
                      f"vector {case['vector_ms']}ms "
                      f"({case['ns_per_pointer_vector']} ns/ptr vector)",
                      flush=True)

    acceptance = next(
        (case for case in results
         if case["kernel"] == "steady_replay" and case["n"] == 256
         and not case["enforce_legality"]),
        None,
    )
    vector_case = next(
        (case for case in results
         if case["kernel"] == "steady_synthetic_catchup"),
        None,
    )
    vector_pass = bool(
        vector_case
        and vector_case.get("vector_over_fast") is not None
        and vector_case["vector_over_fast"] >= VECTOR_ACCEPTANCE_SPEEDUP
        and vector_case["ns_per_pointer_vector"] <= FAST_N4096_NS_PER_POINTER
    )
    payload = {
        "benchmark": "B1",
        "algorithm": "namedropper",
        "topology": "kout(k=3)",
        "seed": SEED,
        "steady_window_rounds": STEADY_WINDOW,
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "backends": replay_backends(),
        "acceptance": {
            "kernel": "steady_replay n=256 enforce_legality=false",
            "backend": "fast",
            "baseline_backend": "legacy",
            "required_speedup": ACCEPTANCE_SPEEDUP,
            "measured_speedup": acceptance["speedup"] if acceptance else None,
            "pass": bool(
                acceptance and acceptance["speedup"] >= ACCEPTANCE_SPEEDUP
            ),
        },
        "vector_acceptance": {
            "kernel": "steady_synthetic_catchup n=1e5",
            "backend": "vector",
            "baseline_backend": "fast",
            "required_speedup": VECTOR_ACCEPTANCE_SPEEDUP,
            "required_ns_per_pointer": FAST_N4096_NS_PER_POINTER,
            "measured_speedup": (
                vector_case.get("vector_over_fast") if vector_case else None
            ),
            "measured_ns_per_pointer": (
                vector_case.get("ns_per_pointer_vector") if vector_case else None
            ),
            "pass": vector_pass,
        },
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    ok = payload["acceptance"]["pass"] and (
        args.skip_large or not vector_available() or vector_pass
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
