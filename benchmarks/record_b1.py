"""Regenerate ``BENCH_B1.json`` — the committed B1 kernel baseline.

Measures the engine's round throughput on the steady-state replay kernel
(the final, heaviest rounds of a recorded Name-Dropper run — see
``docs/PERF.md``) and on the cold-start kernel, on both engine paths and
both legality modes, and writes one machine-readable JSON record
including the git revision it was measured at::

    PYTHONPATH=src python benchmarks/record_b1.py --out BENCH_B1.json

The committed file is documentation, not a CI gate: absolute numbers are
machine-dependent, but the legacy/fast *ratios* are what the dense fast
path promises (acceptance: >= 3x at n=256 on the steady-state kernel).
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402
from repro.algorithms.registry import get_algorithm  # noqa: E402
from repro.bench.replay import RecordedRun, record_run, replay_engine  # noqa: E402
from repro.graphs import make_topology  # noqa: E402
from repro.sim import SynchronousEngine  # noqa: E402

SEED = 11
STEADY_WINDOW = 5
ACCEPTANCE_SPEEDUP = 3.0
#: Best-of repeat counts per size (large-n windows are seconds long).
REPEATS = {256: 7, 1024: 3, 4096: 1}


def best_of(make_engine: Callable[[], SynchronousEngine],
            rounds: int, repeats: int) -> float:
    """Best-of-*repeats* wall time of stepping a fresh engine *rounds*
    times; engine construction is excluded from the timed region."""
    best = float("inf")
    for _ in range(repeats):
        engine = make_engine()
        started = time.perf_counter()
        for _ in range(rounds):
            engine.step()
        best = min(best, time.perf_counter() - started)
    return best


def steady_case(recorded: RecordedRun, n: int, enforce: bool,
                repeats: int) -> Dict[str, object]:
    start = recorded.rounds - STEADY_WINDOW + 1
    window_pointers = sum(
        stats.pointers for stats in recorded.result.round_stats[start - 1:]
    )
    timings = {}
    for label, fast in (("legacy", False), ("fast", True)):
        timings[label] = best_of(
            lambda: replay_engine(
                recorded, start_round=start, fast_path=fast,
                enforce_legality=enforce,
            ),
            STEADY_WINDOW,
            repeats,
        )
    return {
        "kernel": "steady_replay",
        "n": n,
        "seed": SEED,
        "enforce_legality": enforce,
        "window_rounds": STEADY_WINDOW,
        "window_pointers": window_pointers,
        "legacy_ms": round(timings["legacy"] * 1e3, 3),
        "fast_ms": round(timings["fast"] * 1e3, 3),
        "speedup": round(timings["legacy"] / timings["fast"], 2),
        "rounds_per_s_legacy": round(STEADY_WINDOW / timings["legacy"], 1),
        "rounds_per_s_fast": round(STEADY_WINDOW / timings["fast"], 1),
        "ns_per_pointer_legacy": round(
            timings["legacy"] * 1e9 / window_pointers, 1
        ),
        "ns_per_pointer_fast": round(
            timings["fast"] * 1e9 / window_pointers, 1
        ),
    }


def cold_start_case(graph, n: int, repeats: int) -> Dict[str, object]:
    """The pre-existing B1 kernel: 5 rounds from a cold engine, protocol
    work included.  Kept for continuity — it is protocol-dominated, so the
    two paths are expected to be close here."""
    spec = get_algorithm("namedropper")
    timings = {}
    for label, fast in (("legacy", False), ("fast", True)):
        timings[label] = best_of(
            lambda: SynchronousEngine(
                graph, spec.node_factory(), seed=SEED,
                enforce_legality=False, fast_path=fast,
            ),
            5,
            repeats,
        )
    return {
        "kernel": "cold_start_5_rounds",
        "n": n,
        "seed": SEED,
        "enforce_legality": False,
        "legacy_ms": round(timings["legacy"] * 1e3, 3),
        "fast_ms": round(timings["fast"] * 1e3, 3),
        "speedup": round(timings["legacy"] / timings["fast"], 2),
    }


def git_rev() -> Optional[str]:
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT, text=True
        ).strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", nargs="+", type=int,
                        default=[256, 1024, 4096])
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_B1.json"))
    args = parser.parse_args(argv)

    results: List[Dict[str, object]] = []
    for n in args.sizes:
        repeats = REPEATS.get(n, 1)
        graph = make_topology("kout", n, seed=SEED, k=3)
        spec = get_algorithm("namedropper")
        probe = repro.discover(
            graph, algorithm="namedropper", seed=SEED, enforce_legality=False
        )
        print(f"n={n}: recording {probe.rounds}-round run "
              f"({probe.pointers:,} pointers)...", flush=True)
        recorded = record_run(
            graph, spec.node_factory(), seed=SEED,
            snapshot_rounds=(probe.rounds - STEADY_WINDOW,),
            max_rounds=spec.round_cap(n),
        )
        for enforce in (False, True):
            case = steady_case(recorded, n, enforce, repeats)
            results.append(case)
            print(f"  steady enforce={enforce}: legacy {case['legacy_ms']}ms "
                  f"fast {case['fast_ms']}ms -> {case['speedup']}x", flush=True)
        case = cold_start_case(graph, n, repeats)
        results.append(case)
        print(f"  cold-start: legacy {case['legacy_ms']}ms "
              f"fast {case['fast_ms']}ms -> {case['speedup']}x", flush=True)

    acceptance = next(
        (case for case in results
         if case["kernel"] == "steady_replay" and case["n"] == 256
         and not case["enforce_legality"]),
        None,
    )
    payload = {
        "benchmark": "B1",
        "algorithm": "namedropper",
        "topology": "kout(k=3)",
        "seed": SEED,
        "steady_window_rounds": STEADY_WINDOW,
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "acceptance": {
            "kernel": "steady_replay n=256 enforce_legality=false",
            "required_speedup": ACCEPTANCE_SPEEDUP,
            "measured_speedup": acceptance["speedup"] if acceptance else None,
            "pass": bool(
                acceptance and acceptance["speedup"] >= ACCEPTANCE_SPEEDUP
            ),
        },
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if payload["acceptance"]["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
