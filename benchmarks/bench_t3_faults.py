"""Benchmark driver for experiment T3 — fault tolerance.

Regenerates: T3a (message loss) and T3b (crash failures).
Shape asserted: the hardened core algorithm completes at every injected
loss rate with bounded round inflation, and survivors complete after
crashes.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import get_experiment


def test_t3_faults(benchmark, scale, save_report):
    report = run_once(benchmark, lambda: get_experiment("T3").run(scale))
    save_report(report)

    loss = report.summary["loss"]["sublog"]
    clean = loss[0.0]
    worst = max(loss.values())
    assert worst <= 8 * clean  # bounded inflation across 0..10% loss

    crash = report.summary["crash"]["sublog"]
    assert all(rate == 1.0 for rate in crash.values())
