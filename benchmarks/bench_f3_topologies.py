"""Benchmark driver for experiment F3 — topology sensitivity.

Regenerates: F3 (rounds by topology at fixed n).
Shape asserted: sublog beats namedropper on the low-diameter rows, and on
the path — where sub-logarithmic time is impossible — no algorithm beats
the lower bound.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import get_experiment


def test_f3_topologies(benchmark, scale, save_report):
    report = run_once(benchmark, lambda: get_experiment("F3").run(scale))
    save_report(report)

    summary = report.summary
    for topology in ("kout", "star_in", "tree"):
        assert summary[topology]["sublog"] <= summary[topology]["namedropper"] * 1.5
    # On the path everyone is pinned to >= lower bound; sublog included.
    assert summary["path"]["sublog"] >= summary["kout"]["sublog"]
