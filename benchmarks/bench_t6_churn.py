"""Benchmark driver for experiment T6 — dynamic membership.

Regenerates: T6 (settle time after the last staggered join).
Shape asserted: settle time is flat in the number of joiners — tripling
the join volume must not triple the settle time.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import get_experiment


def test_t6_churn(benchmark, scale, save_report):
    report = run_once(benchmark, lambda: get_experiment("T6").run(scale))
    save_report(report)

    summary = report.summary
    fractions = sorted(summary)
    smallest = summary[fractions[0]]["sublog"]
    largest = summary[fractions[-1]]["sublog"]
    assert largest <= 3 * max(smallest, 6.0)
