"""Benchmark driver for experiment T4 — weak vs strong discovery.

Regenerates: T4 (pointer cost of the two goals).
Shape asserted: the weak-goal pointer cost grows far slower than the
strong-goal cost — the Θ(n²) completion broadcast is real and isolated.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import get_experiment


def test_t4_weak_strong(benchmark, scale, save_report):
    report = run_once(benchmark, lambda: get_experiment("T4").run(scale))
    save_report(report)

    largest = max(report.summary)
    row = report.summary[largest]
    assert row["weak_pointers"] < row["strong_pointers"] / 2
