"""B1 — simulator-kernel microbenchmarks.

Unlike the experiment drivers (one timed sweep each), these use
pytest-benchmark's normal statistical looping to characterize the
substrate itself: engine round throughput under the heaviest shipped
protocols, graph generation, and the metric utilities.  Regressions here
silently inflate every experiment's wall clock, so they are tracked
separately.
"""

from __future__ import annotations

import pytest

import repro
from repro.algorithms.registry import get_algorithm
from repro.bench.replay import record_run, replay_engine
from repro.graphs import make_topology
from repro.sim import BACKENDS, SynchronousEngine, vector_available

N = 256
SEED = 11
STEADY_WINDOW = 5  # replayed tail rounds; see recorded_namedropper

BACKEND_PARAMS = [
    pytest.param(
        backend,
        id=backend,
        marks=()
        if backend != "vector" or vector_available()
        else pytest.mark.skip(reason="numpy unavailable"),
    )
    for backend in BACKENDS
]


@pytest.fixture(scope="module")
def kout_graph():
    return make_topology("kout", N, seed=SEED, k=3)


@pytest.fixture(scope="module")
def recorded_namedropper(kout_graph):
    """One recorded Name-Dropper run whose last STEADY_WINDOW rounds form
    the steady-state kernel (peak pointer traffic, knowledge nearly full)."""
    spec = get_algorithm("namedropper")
    probe = repro.discover(
        kout_graph, algorithm="namedropper", seed=SEED, enforce_legality=False
    )
    return record_run(
        kout_graph,
        spec.node_factory(),
        seed=SEED,
        snapshot_rounds=(probe.rounds - STEADY_WINDOW,),
        max_rounds=spec.round_cap(N),
    )


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
def test_b1_engine_rounds_namedropper(benchmark, kout_graph, backend):
    """Cost of executing 5 gossip rounds (heavy pointer traffic)."""

    def run_five_rounds():
        engine = SynchronousEngine(
            kout_graph,
            get_algorithm("namedropper").node_factory(),
            seed=SEED,
            enforce_legality=False,
            backend=backend,
        )
        for _ in range(5):
            engine.step()
        return engine.round_no

    assert benchmark(run_five_rounds) == 5


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
def test_b1_steady_state_replay(benchmark, recorded_namedropper, backend):
    """Engine-only round throughput in the run's heaviest regime.

    Replays the final STEADY_WINDOW rounds of the recorded Name-Dropper
    run from a knowledge snapshot, so protocol work and engine
    construction are both excluded — this is the pure delivery/learning
    kernel the fast path was built for (see docs/PERF.md).
    """
    recorded = recorded_namedropper
    start = recorded.rounds - STEADY_WINDOW + 1

    def make_engine():
        engine = replay_engine(
            recorded, start_round=start, backend=backend, force=True
        )
        return (engine,), {}

    def run_window(engine):
        for _ in range(STEADY_WINDOW):
            engine.step()
        return engine.is_strongly_complete()

    assert benchmark.pedantic(run_window, setup=make_engine, rounds=20)


def test_b1_full_sublog_run(benchmark, kout_graph):
    """End-to-end core-algorithm run at n=256."""

    result = benchmark(
        lambda: repro.discover(
            kout_graph, algorithm="sublog", seed=SEED, enforce_legality=False
        )
    )
    assert result.completed


def test_b1_legality_enforcement_overhead(benchmark, kout_graph):
    """The same run with per-message legality checks on (tests pay this)."""

    result = benchmark(
        lambda: repro.discover(
            kout_graph, algorithm="sublog", seed=SEED, enforce_legality=True
        )
    )
    assert result.completed


def test_b1_graph_generation(benchmark):
    graph = benchmark(lambda: make_topology("kout", 2048, seed=3, k=3))
    assert graph.n == 2048


def test_b1_diameter_estimate(benchmark, kout_graph):
    diameter = benchmark(lambda: kout_graph.undirected_diameter(exact=False))
    assert diameter >= 1


def test_b1_ball_query(benchmark, kout_graph):
    ball = benchmark(lambda: kout_graph.undirected_ball(0, 3))
    assert len(ball) > 1
