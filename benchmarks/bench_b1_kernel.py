"""B1 — simulator-kernel microbenchmarks.

Unlike the experiment drivers (one timed sweep each), these use
pytest-benchmark's normal statistical looping to characterize the
substrate itself: engine round throughput under the heaviest shipped
protocols, graph generation, and the metric utilities.  Regressions here
silently inflate every experiment's wall clock, so they are tracked
separately.
"""

from __future__ import annotations

import pytest

import repro
from repro.algorithms.registry import get_algorithm
from repro.graphs import make_topology
from repro.sim import SynchronousEngine

N = 256
SEED = 11


@pytest.fixture(scope="module")
def kout_graph():
    return make_topology("kout", N, seed=SEED, k=3)


def test_b1_engine_rounds_namedropper(benchmark, kout_graph):
    """Cost of executing 5 gossip rounds (heavy pointer traffic)."""

    def run_five_rounds():
        engine = SynchronousEngine(
            kout_graph,
            get_algorithm("namedropper").node_factory(),
            seed=SEED,
            enforce_legality=False,
        )
        for _ in range(5):
            engine.step()
        return engine.round_no

    assert benchmark(run_five_rounds) == 5


def test_b1_full_sublog_run(benchmark, kout_graph):
    """End-to-end core-algorithm run at n=256."""

    result = benchmark(
        lambda: repro.discover(
            kout_graph, algorithm="sublog", seed=SEED, enforce_legality=False
        )
    )
    assert result.completed


def test_b1_legality_enforcement_overhead(benchmark, kout_graph):
    """The same run with per-message legality checks on (tests pay this)."""

    result = benchmark(
        lambda: repro.discover(
            kout_graph, algorithm="sublog", seed=SEED, enforce_legality=True
        )
    )
    assert result.completed


def test_b1_graph_generation(benchmark):
    graph = benchmark(lambda: make_topology("kout", 2048, seed=3, k=3))
    assert graph.n == 2048


def test_b1_diameter_estimate(benchmark, kout_graph):
    diameter = benchmark(lambda: kout_graph.undirected_diameter(exact=False))
    assert diameter >= 1


def test_b1_ball_query(benchmark, kout_graph):
    ball = benchmark(lambda: kout_graph.undirected_ball(0, 3))
    assert len(ball) > 1
