"""Benchmark driver for experiment T2 — message/pointer complexity.

Regenerates: T2a (messages) and T2b (pointers).
Shape asserted: sublog's messages-per-machine stay bounded across the
sweep (near-linear total messages), the paper's "optimal message
complexity" claim.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import get_experiment


def test_t2_message_complexity(benchmark, scale, save_report):
    report = run_once(benchmark, lambda: get_experiment("T2").run(scale))
    save_report(report)

    per_node = report.summary["messages_per_node"]["sublog"]
    assert max(per_node) < 80
    # Growth across the sweep is far below linear: doubling n repeatedly
    # must not double messages/machine each time.
    assert per_node[-1] < per_node[0] * len(per_node)
