#!/usr/bin/env python3
"""Check relative markdown links and anchors across the repo's docs.

Walks every tracked ``*.md`` at the repo root and under ``docs/``,
extracts inline links, and verifies:

* relative file links resolve to a file that exists (query strings and
  external ``http(s)://`` / ``mailto:`` links are skipped);
* fragment links (``FILE.md#anchor`` or ``#anchor``) name a real heading
  in the target file, using GitHub's slug rule (lowercase, punctuation
  stripped, spaces to dashes, duplicate slugs suffixed ``-1``, ``-2``).

Exits non-zero listing every broken link, so CI can gate on docs drift.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target). Images share the syntax.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*)$")
CODE_FENCE = re.compile(r"^\s*(```|~~~)")


def doc_files() -> List[Path]:
    files = sorted(REPO.glob("*.md")) + sorted((REPO / "docs").glob("*.md"))
    return [path for path in files if path.is_file()]


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    slug = re.sub(r"[^\w\- ]", "", text.lower(), flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def anchors_of(path: Path) -> set:
    anchors = set()
    seen: Dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match:
            anchors.add(github_slug(match.group(2), seen))
    return anchors


def check() -> List[Tuple[Path, str, str]]:
    broken: List[Tuple[Path, str, str]] = []
    anchor_cache: Dict[Path, set] = {}
    for source in doc_files():
        in_fence = False
        for line in source.read_text(encoding="utf-8").splitlines():
            if CODE_FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                file_part, _, fragment = target.partition("#")
                if file_part:
                    resolved = (source.parent / file_part).resolve()
                    if not resolved.exists():
                        broken.append((source, target, "missing file"))
                        continue
                else:
                    resolved = source.resolve()
                if fragment and resolved.suffix == ".md":
                    if resolved not in anchor_cache:
                        anchor_cache[resolved] = anchors_of(resolved)
                    if fragment.lower() not in anchor_cache[resolved]:
                        broken.append((source, target, "missing anchor"))
    return broken


def main() -> int:
    broken = check()
    if broken:
        for source, target, why in broken:
            print(f"{source.relative_to(REPO)}: {target} ({why})")
        print(f"{len(broken)} broken link(s)")
        return 1
    print(f"docs: {len(doc_files())} files, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
