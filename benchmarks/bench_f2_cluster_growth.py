"""Benchmark driver for experiment F2 — cluster-growth dynamics.

Regenerates: F2 (per-phase cluster counts/sizes vs the ideal squaring
recurrence).  Shape asserted: the cluster count collapses doubly
exponentially — a single cluster is reached within phases proportional to
log log n, far below the log2(n) phases halving would need.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.bench.experiments import get_experiment


def test_f2_cluster_growth(benchmark, scale, save_report):
    report = run_once(benchmark, lambda: get_experiment("F2").run(scale))
    save_report(report)

    merged_by = report.summary["merged_by_phase"]
    n = scale.big_n
    # Halving per phase would need ~log2(n) phases; require much less.
    assert merged_by <= math.ceil(math.log2(n)) / 2 + 2
    assert report.summary["rounds"] > 0
