"""Hypothesis strategies for property-based tests.

The central strategy, :func:`weakly_connected_graphs`, draws arbitrary
weakly connected directed knowledge graphs — the exact input class of the
resource-discovery problem — over either dense or shuffled-sparse
identifier namespaces.
"""

from __future__ import annotations

from typing import Dict, Set

from hypothesis import strategies as st

from repro.graphs.generators import ensure_weakly_connected
from repro.graphs.knowledge import KnowledgeGraph


@st.composite
def weakly_connected_graphs(
    draw: st.DrawFn,
    min_nodes: int = 2,
    max_nodes: int = 16,
    sparse_ids: bool = True,
) -> KnowledgeGraph:
    """Draw a weakly connected directed graph.

    Edges are drawn independently with a drawn density; the generator
    augmentation then links any remaining weak components, exactly as the
    library does for its own random topologies — so the strategy's output
    distribution includes paths, near-cliques, and everything between.
    """
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    density = draw(st.floats(min_value=0.0, max_value=0.5))
    adjacency: Dict[int, Set[int]] = {node: set() for node in range(n)}
    for node in range(n):
        for other in range(n):
            if other != node and draw(
                st.booleans() if density > 0.25 else st.sampled_from([False, False, False, True])
            ):
                if draw(st.floats(min_value=0, max_value=1)) < density * 2:
                    adjacency[node].add(other)
    ensure_weakly_connected(adjacency)
    if sparse_ids and draw(st.booleans()):
        # Remap to a sparse, shuffled namespace to break density assumptions.
        offsets = draw(
            st.lists(
                st.integers(min_value=1, max_value=50),
                min_size=n,
                max_size=n,
            )
        )
        labels = []
        current = draw(st.integers(min_value=0, max_value=1000))
        for offset in offsets:
            current += offset
            labels.append(current)
        mapping = dict(zip(range(n), labels))
        adjacency = {
            mapping[node]: {mapping[neighbor] for neighbor in neighbors}
            for node, neighbors in adjacency.items()
        }
    return KnowledgeGraph(adjacency)


seeds = st.integers(min_value=0, max_value=2**32 - 1)
