"""Hypothesis strategies for property-based tests.

The central strategy, :func:`weakly_connected_graphs`, draws arbitrary
weakly connected directed knowledge graphs — the exact input class of the
resource-discovery problem — over either dense or shuffled-sparse
identifier namespaces.

The schedule strategies — :func:`delivery_models`, :func:`fault_plans`,
:func:`join_plans` — draw the adversarial environment of a run: a
transport model (any registered family, any legal parameters), a fault
plan (loss coin plus fail-stop crash rounds), and a churn script (late
joiners).  Property tests use them to assert the transport and fault
layers' structural invariants over *arbitrary* schedules, not a few
hand-picked ones.
"""

from __future__ import annotations

from typing import Dict, Set

from hypothesis import strategies as st

from repro.graphs.generators import ensure_weakly_connected
from repro.graphs.knowledge import KnowledgeGraph
from repro.sim.churn import JoinPlan
from repro.sim.faults import FaultPlan
from repro.sim.transport import (
    AdversarialScheduler,
    BoundedJitter,
    DeliveryModel,
    Lockstep,
    PartitionWindow,
    PerLinkLatency,
)


@st.composite
def weakly_connected_graphs(
    draw: st.DrawFn,
    min_nodes: int = 2,
    max_nodes: int = 16,
    sparse_ids: bool = True,
) -> KnowledgeGraph:
    """Draw a weakly connected directed graph.

    Edges are drawn independently with a drawn density; the generator
    augmentation then links any remaining weak components, exactly as the
    library does for its own random topologies — so the strategy's output
    distribution includes paths, near-cliques, and everything between.
    """
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    density = draw(st.floats(min_value=0.0, max_value=0.5))
    adjacency: Dict[int, Set[int]] = {node: set() for node in range(n)}
    for node in range(n):
        for other in range(n):
            if other != node and draw(
                st.booleans() if density > 0.25 else st.sampled_from([False, False, False, True])
            ):
                if draw(st.floats(min_value=0, max_value=1)) < density * 2:
                    adjacency[node].add(other)
    ensure_weakly_connected(adjacency)
    if sparse_ids and draw(st.booleans()):
        # Remap to a sparse, shuffled namespace to break density assumptions.
        offsets = draw(
            st.lists(
                st.integers(min_value=1, max_value=50),
                min_size=n,
                max_size=n,
            )
        )
        labels = []
        current = draw(st.integers(min_value=0, max_value=1000))
        for offset in offsets:
            current += offset
            labels.append(current)
        mapping = dict(zip(range(n), labels))
        adjacency = {
            mapping[node]: {mapping[neighbor] for neighbor in neighbors}
            for node, neighbors in adjacency.items()
        }
    return KnowledgeGraph(adjacency)


seeds = st.integers(min_value=0, max_value=2**32 - 1)


@st.composite
def delivery_models(
    draw: st.DrawFn,
    max_param: int = 4,
    max_round: int = 20,
    node_ids: range = range(16),
) -> DeliveryModel:
    """Draw an unbound delivery-model spec from any registered family.

    Parameters span the legal range including the degenerate zeros
    (``jitter:0`` etc.), so properties proved over this strategy cover
    the lockstep reductions too.  Partition windows fall inside
    ``[1, max_round]`` and may carry an explicit group over *node_ids*.
    """
    family = draw(
        st.sampled_from(("lockstep", "jitter", "adversarial", "perlink", "partition"))
    )
    if family == "lockstep":
        return Lockstep()
    if family == "jitter":
        return BoundedJitter(draw(st.integers(min_value=0, max_value=max_param)))
    if family == "adversarial":
        return AdversarialScheduler(draw(st.integers(min_value=0, max_value=max_param)))
    if family == "perlink":
        return PerLinkLatency(draw(st.integers(min_value=0, max_value=max_param)))
    start = draw(st.integers(min_value=1, max_value=max_round))
    end = draw(st.integers(min_value=start, max_value=max_round + max_param))
    group = None
    if draw(st.booleans()):
        group = draw(st.frozensets(st.sampled_from(list(node_ids)), max_size=len(node_ids)))
    return PartitionWindow(start, end, group=group)


@st.composite
def fault_plans(
    draw: st.DrawFn,
    max_node: int = 15,
    max_round: int = 12,
    max_loss: float = 0.5,
) -> FaultPlan:
    """Draw a fault plan: a loss rate plus a fail-stop crash schedule."""
    loss_rate = draw(
        st.one_of(
            st.just(0.0),
            st.floats(min_value=0.0, max_value=max_loss, allow_nan=False),
        )
    )
    crash_rounds = draw(
        st.dictionaries(
            st.integers(min_value=0, max_value=max_node),
            st.integers(min_value=1, max_value=max_round),
            max_size=max_node,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**16 - 1))
    return FaultPlan(loss_rate=loss_rate, crash_rounds=crash_rounds, seed=seed)


@st.composite
def join_plans(
    draw: st.DrawFn,
    max_node: int = 15,
    max_round: int = 12,
) -> JoinPlan:
    """Draw a churn script: machines dormant until their join round."""
    join_rounds = draw(
        st.dictionaries(
            st.integers(min_value=0, max_value=max_node),
            st.integers(min_value=1, max_value=max_round),
            max_size=max_node,
        )
    )
    return JoinPlan(join_rounds=join_rounds)
