"""Unit tests for growth-model fitting."""

from __future__ import annotations


import pytest

from repro.analysis.fitting import (
    GROWTH_MODELS,
    best_model,
    compare_models,
    describe_fits,
    fit_all_models,
    fit_model,
)

SIZES = [64, 128, 256, 512, 1024, 2048, 4096]


def synth(model: str, a: float = 3.0, b: float = 2.0) -> list:
    transform = GROWTH_MODELS[model]
    return [a * transform(n) + b for n in SIZES]


class TestFitModel:
    def test_exact_fit_recovers_parameters(self):
        fit = fit_model(SIZES, synth("log"), "log")
        assert fit.scale == pytest.approx(3.0, abs=1e-6)
        assert fit.offset == pytest.approx(2.0, abs=1e-6)
        assert fit.rmse == pytest.approx(0.0, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-6)

    def test_predict(self):
        fit = fit_model(SIZES, synth("log"), "log")
        assert fit.predict(8192) == pytest.approx(3.0 * 13 + 2.0, abs=1e-5)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            fit_model(SIZES, synth("log"), "cubic")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_model([1, 2], [1.0], "log")

    def test_two_points_minimum(self):
        with pytest.raises(ValueError):
            fit_model([64], [5.0], "log")


class TestModelSelection:
    @pytest.mark.parametrize("true_model", ("loglog", "log", "log2", "linear"))
    def test_best_model_identifies_generator(self, true_model: str):
        fit = best_model(SIZES, synth(true_model))
        assert fit.model == true_model

    def test_fit_all_sorted_by_rmse(self):
        fits = fit_all_models(SIZES, synth("log2"))
        rmses = [fit.rmse for fit in fits]
        assert rmses == sorted(rmses)

    def test_compare_models(self):
        candidate, against = compare_models(SIZES, synth("loglog"), "loglog", "log2")
        assert candidate.rmse < against.rmse

    def test_noise_tolerance(self):
        noisy = [v + ((-1) ** i) * 0.4 for i, v in enumerate(synth("log"))]
        assert best_model(SIZES, noisy).model in ("log", "loglog")

    def test_describe_fits_renders(self):
        text = describe_fits(fit_all_models(SIZES, synth("log")))
        assert "rmse" in text
        assert "log" in text
