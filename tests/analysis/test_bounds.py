"""Unit tests for closed-form bound calculators."""

from __future__ import annotations

import pytest

from repro.analysis.bounds import (
    log2,
    loglog2,
    lower_bound_rounds,
    namedropper_round_bound,
    optimal_message_bound,
    phases_to_cover,
    squaring_recurrence,
    strong_discovery_pointer_bound,
    sublog_phase_bound,
    swamping_round_bound,
)
from repro.graphs import KnowledgeGraph, make_topology


class TestLogs:
    def test_log2_clamps(self):
        assert log2(1) == 1.0
        assert log2(0) == 1.0
        assert log2(8) == 3.0

    def test_loglog2(self):
        assert loglog2(4) == 1.0
        assert loglog2(65536) == 4.0


class TestLowerBound:
    def test_path_bound(self):
        assert lower_bound_rounds(make_topology("path", 9)) == 3  # ceil(log2 8)
        assert lower_bound_rounds(make_topology("path", 10)) == 4

    def test_star_bound(self):
        assert lower_bound_rounds(make_topology("star_in", 10)) == 1

    def test_singleton_bound(self):
        assert lower_bound_rounds(KnowledgeGraph({0: set()})) == 0

    def test_complete_graph_needs_zero_rounds(self):
        assert lower_bound_rounds(make_topology("complete", 8)) == 0

    def test_incomplete_diameter_one_graph_needs_one_round(self):
        # 0 -> 1 and 1 -> 0 plus 0 <-> 2 one-way: closure diameter can be
        # small while the directed graph is incomplete.
        graph = KnowledgeGraph({0: {1, 2}, 1: {0, 2}, 2: {0, 1}})
        assert lower_bound_rounds(graph) == 0  # actually complete
        incomplete = KnowledgeGraph({0: {1, 2}, 1: {0, 2}, 2: {0}})
        assert lower_bound_rounds(incomplete) == 1

    def test_swamping_bound_above_lower(self):
        graph = make_topology("path", 33)
        assert swamping_round_bound(graph) >= lower_bound_rounds(graph)


class TestRecurrence:
    def test_pure_squaring(self):
        assert squaring_recurrence(2, 256) == [2, 4, 16, 256]

    def test_capped_at_target(self):
        sizes = squaring_recurrence(2, 100)
        assert sizes[-1] == 100

    def test_target_below_start(self):
        assert squaring_recurrence(4, 3) == [4]

    def test_start_validation(self):
        with pytest.raises(ValueError):
            squaring_recurrence(1, 100)

    def test_phases_to_cover_is_loglog(self):
        assert phases_to_cover(256) == 3
        assert phases_to_cover(65536) == 4

    def test_growth_parameter(self):
        slower = squaring_recurrence(2, 1 << 16, growth=1.5)
        faster = squaring_recurrence(2, 1 << 16, growth=2.0)
        assert len(slower) >= len(faster)


class TestSimpleBounds:
    def test_message_bound(self):
        assert optimal_message_bound(100) == 99
        assert optimal_message_bound(1) == 0

    def test_pointer_bound(self):
        assert strong_discovery_pointer_bound(10) == 45

    def test_shapes_are_ordered(self):
        # At any realistic n the predicted shapes must be strictly ordered.
        for n in (64, 1024, 1 << 20):
            assert sublog_phase_bound(n) < namedropper_round_bound(n)
