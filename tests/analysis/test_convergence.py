"""Unit tests for convergence curves."""

from __future__ import annotations

import pytest

import repro
from repro.analysis.convergence import (
    ConvergenceCurve,
    compare_milestones,
    curve_from_history,
)
from repro.graphs import make_topology
from repro.sim import KnowledgeSizeObserver


class TestConvergenceCurve:
    def test_milestones(self):
        curve = ConvergenceCurve(n=10, completeness=[0.1, 0.4, 0.6, 0.95, 1.0])
        assert curve.rounds_to(0.5) == 2
        assert curve.rounds_to(0.9) == 3
        assert curve.rounds_to(1.0) == 4
        milestones = curve.milestones()
        assert milestones["t50"] == 2
        assert milestones["t100"] == 4

    def test_unreached_milestone_is_none(self):
        curve = ConvergenceCurve(n=4, completeness=[0.1, 0.2])
        assert curve.rounds_to(0.9) is None

    def test_fraction_validation(self):
        curve = ConvergenceCurve(n=4, completeness=[1.0])
        with pytest.raises(ValueError):
            curve.rounds_to(0.0)
        with pytest.raises(ValueError):
            curve.rounds_to(1.5)

    def test_value_validation(self):
        with pytest.raises(ValueError):
            ConvergenceCurve(n=4, completeness=[1.2])

    def test_sparkline_length_and_extremes(self):
        curve = ConvergenceCurve(n=4, completeness=[0.0, 0.5, 1.0])
        spark = curve.sparkline()
        assert len(spark) == 3
        assert spark[0] == " "
        assert spark[-1] == "@"


class TestCurveFromHistory:
    def test_from_real_run(self):
        graph = make_topology("kout", 32, seed=1, k=3)
        observer = KnowledgeSizeObserver()
        result = repro.discover(
            graph, algorithm="sublog", seed=1, observers=[observer]
        )
        curve = curve_from_history(observer.history, n=32)
        assert curve.rounds == result.rounds
        assert curve.completeness[-1] == pytest.approx(1.0)
        # completeness is monotone under any discovery protocol
        values = list(curve.completeness)
        assert values == sorted(values)

    def test_faster_algorithm_has_earlier_milestones(self):
        graph = make_topology("path", 64)
        curves = {}
        for algorithm in ("swamping", "flooding"):
            observer = KnowledgeSizeObserver()
            repro.discover(graph, algorithm=algorithm, seed=1, observers=[observer])
            curves[algorithm] = curve_from_history(observer.history, n=64)
        milestones = compare_milestones(curves)
        assert milestones["swamping"]["t100"] < milestones["flooding"]["t100"]

    def test_singleton(self):
        curve = curve_from_history([{"round": 0, "mean": 1.0}], n=1)
        assert curve.completeness == [1.0]

    def test_n_validation(self):
        with pytest.raises(ValueError):
            curve_from_history([], n=0)
