"""Unit tests for the invariant observers."""

from __future__ import annotations

from typing import Sequence

import pytest

import repro
from repro.analysis.invariants import (
    BallContainmentObserver,
    InvariantViolation,
    MonotonicityObserver,
    closure_deficit,
    is_knowledge_closed,
    verify_view_consistency,
    weak_closure_witnesses,
)
from repro.graphs import make_topology
from repro.sim import Message, ProtocolNode, SynchronousEngine


class TestClosurePredicates:
    """The closure functions on hand-built knowledge states, no engine."""

    CLOSED = {0: {0, 1, 2}, 1: {0, 1, 2}, 2: {0, 1, 2}}
    # Path knowledge 0 → 1 → 2: nobody knows everyone.
    OPEN = {0: {0, 1}, 1: {1, 2}, 2: {2}}
    # Everything known except that 2 never learned 0.
    ONE_SHORT = {0: {0, 1, 2}, 1: {0, 1, 2}, 2: {1, 2}}

    def test_closed_state_has_empty_deficit(self):
        assert closure_deficit(self.CLOSED) == []
        assert is_knowledge_closed(self.CLOSED)

    def test_self_knowledge_not_required(self):
        # Same closed state but nobody lists themselves.
        knowledge = {0: {1, 2}, 1: {0, 2}, 2: {0, 1}}
        assert is_knowledge_closed(knowledge)

    def test_open_state_lists_every_missing_pair(self):
        assert closure_deficit(self.OPEN) == [(0, 2), (1, 0), (2, 0), (2, 1)]
        assert not is_knowledge_closed(self.OPEN)

    def test_one_edge_short(self):
        assert closure_deficit(self.ONE_SHORT) == [(2, 0)]
        assert not is_knowledge_closed(self.ONE_SHORT)

    def test_alive_subset_restriction(self):
        # Node 0 crashed: restricted to survivors {1, 2}, ONE_SHORT closes.
        alive = (1, 2)
        assert is_knowledge_closed(self.ONE_SHORT, universe=alive, holders=alive)
        # But requiring survivors to know the full universe still fails.
        assert closure_deficit(self.ONE_SHORT, holders=alive) == [(2, 0)]

    def test_missing_holder_owes_everything(self):
        knowledge = {0: {0, 1}, 1: {0, 1}}
        assert closure_deficit(knowledge, universe=(0, 1, 2)) == [
            (0, 2),
            (1, 2),
            (2, 0),
            (2, 1),
        ]

    def test_weak_witnesses_on_star_knowledge(self):
        # Hub 0 knows everyone and everyone knows the hub; leaves know
        # only the hub — classic weak-but-not-strong discovery.
        star = {0: {0, 1, 2, 3}, 1: {0, 1}, 2: {0, 2}, 3: {0, 3}}
        assert weak_closure_witnesses(star) == [0]
        assert not is_knowledge_closed(star)

    def test_weak_witness_needs_both_directions(self):
        # Node 0 knows everyone but node 2 never heard of it: no witness.
        one_way = {0: {0, 1, 2}, 1: {0, 1}, 2: {2}}
        assert weak_closure_witnesses(one_way) == []
        # Known-by-everyone without knowing everyone fails too.
        famous = {0: {0, 1}, 1: {0, 1, 2}, 2: {0, 2}}
        assert weak_closure_witnesses(famous) == []

    def test_closed_state_makes_every_node_a_witness(self):
        assert weak_closure_witnesses(self.CLOSED) == [0, 1, 2]

    def test_singleton_is_trivially_closed(self):
        assert is_knowledge_closed({7: set()})
        assert weak_closure_witnesses({7: set()}) == [7]


class TestBallContainment:
    @pytest.mark.parametrize("algorithm", ("swamping", "namedropper", "sublog", "flooding"))
    def test_no_violations_for_shipped_algorithms(self, algorithm: str):
        graph = make_topology("path", 33)
        observer = BallContainmentObserver(graph, strict=True)
        result = repro.discover(
            graph, algorithm=algorithm, seed=2, observers=[observer]
        )
        assert result.completed
        assert not observer.violations

    def test_radius_trace_respects_ceiling(self):
        graph = make_topology("path", 65)
        observer = BallContainmentObserver(graph)
        repro.discover(graph, algorithm="swamping", seed=1, observers=[observer])
        for round_index, radius in enumerate(observer.max_radius_by_round):
            assert radius <= 2 ** (round_index + 1)

    def test_swamping_nearly_saturates_bound(self):
        # Swamping doubles radius per round: the trace must track 2^t
        # within a factor of 2 (it starts at radius 1 and can lag one
        # doubling because reverse edges appear a round late).
        graph = make_topology("bipath", 129)
        observer = BallContainmentObserver(graph)
        repro.discover(graph, algorithm="swamping", seed=1, observers=[observer])
        for round_index, radius in enumerate(observer.max_radius_by_round):
            assert radius >= 2**round_index / 2

    def test_mismatched_graph_rejected(self):
        observer = BallContainmentObserver(make_topology("path", 4))
        with pytest.raises(ValueError):
            SynchronousEngine(
                make_topology("path", 5).adjacency(),
                repro.get_algorithm("flooding").node_factory(),
                observers=[observer],
            )

    def test_cheating_would_be_detected(self):
        # A synthetic run that teleports knowledge: hand the last node's id
        # to the first node via a direct engine poke, and confirm the
        # checker notices the impossible radius.
        graph = make_topology("path", 17)
        observer = BallContainmentObserver(graph, strict=False)

        class Teleporter(ProtocolNode):
            def on_round(self, round_no: int, inbox: Sequence[Message], rng) -> None:
                pass

        engine = SynchronousEngine(
            graph.adjacency(), Teleporter, observers=[observer], enforce_legality=False
        )
        engine.knowledge[0].add(16)  # impossible at round 1
        engine.step()
        assert observer.violations
        assert observer.violations[0]["node"] == 0

    def test_strict_mode_raises(self):
        graph = make_topology("path", 17)
        observer = BallContainmentObserver(graph, strict=True)

        class Teleporter(ProtocolNode):
            def on_round(self, round_no: int, inbox: Sequence[Message], rng) -> None:
                pass

        engine = SynchronousEngine(
            graph.adjacency(), Teleporter, observers=[observer], enforce_legality=False
        )
        engine.knowledge[0].add(16)
        with pytest.raises(InvariantViolation):
            engine.step()


class TestMonotonicity:
    def test_clean_run_has_no_violations(self):
        graph = make_topology("kout", 24, seed=1, k=2)
        observer = MonotonicityObserver()
        result = repro.discover(graph, algorithm="sublog", seed=1, observers=[observer])
        assert result.completed
        assert not observer.violations


class TestViewConsistency:
    def test_mismatch_is_reported(self):
        graph = make_topology("path", 4)
        engine = SynchronousEngine(
            graph.adjacency(), repro.get_algorithm("flooding").node_factory()
        )
        engine.run()
        engine.nodes[0].known.discard(3)  # corrupt the node's private view
        message = verify_view_consistency(engine)
        assert message is not None
        assert "node 0" in message
