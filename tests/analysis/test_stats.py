"""Unit tests for seed-aggregation statistics."""

from __future__ import annotations

import pytest

from repro.analysis.stats import aggregate, aggregate_results, completion_rate, group_by
from repro.sim.metrics import RunResult


def result(algorithm="a", n=8, seed=0, rounds=5, completed=True) -> RunResult:
    return RunResult(
        algorithm=algorithm,
        n=n,
        seed=seed,
        completed=completed,
        rounds=rounds,
        messages=10,
        pointers=20,
    )


class TestAggregate:
    def test_basic_stats(self):
        agg = aggregate([1.0, 2.0, 3.0, 4.0])
        assert agg.mean == pytest.approx(2.5)
        assert agg.median == pytest.approx(2.5)
        assert agg.minimum == 1.0
        assert agg.maximum == 4.0
        assert agg.count == 4

    def test_ci_contains_mean(self):
        agg = aggregate([10.0, 12.0, 11.0, 13.0, 9.0])
        assert agg.ci_low <= agg.mean <= agg.ci_high
        assert agg.ci_low < agg.ci_high

    def test_single_sample_degenerate_ci(self):
        agg = aggregate([7.0])
        assert agg.ci_low == agg.ci_high == 7.0
        assert agg.stdev == 0.0

    def test_constant_sample(self):
        agg = aggregate([5.0, 5.0, 5.0])
        assert agg.ci_low == agg.ci_high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_format(self):
        assert aggregate([1.0, 2.0, 3.0]).format() == "2.0 [1.0..3.0]"


class TestRunResultHelpers:
    def test_aggregate_results_metric(self):
        runs = [result(rounds=r) for r in (4, 6, 8)]
        agg = aggregate_results(runs, "rounds")
        assert agg.median == 6.0

    def test_completion_rate(self):
        runs = [result(completed=c) for c in (True, True, False, True)]
        assert completion_rate(runs) == pytest.approx(0.75)
        with pytest.raises(ValueError):
            completion_rate([])

    def test_group_by(self):
        runs = [
            result(algorithm="a", n=8),
            result(algorithm="a", n=16),
            result(algorithm="b", n=8),
        ]
        grouped = group_by(runs, "algorithm", "n")
        assert set(grouped) == {("a", 8), ("a", 16), ("b", 8)}
