"""Fault-tolerance tests for the core algorithm."""

from __future__ import annotations

import pytest

import repro
from repro.graphs import make_topology
from repro.sim import FaultPlan, crash_fraction_plan

RESILIENT = dict(resilient=True, watchdog_phases=3, stagnation_phases=4)


class TestMessageLoss:
    @pytest.mark.parametrize("loss", (0.01, 0.05, 0.1))
    def test_resilient_mode_completes_under_loss(self, loss: float):
        graph = make_topology("kout", 96, seed=11, k=3)
        plan = FaultPlan(loss_rate=loss, seed=11)
        result = repro.discover(
            graph, algorithm="sublog", seed=11, fault_plan=plan, **RESILIENT
        )
        assert result.completed, f"failed at loss={loss}"

    def test_loss_inflates_rounds_boundedly(self):
        graph = make_topology("kout", 96, seed=11, k=3)
        clean = repro.discover(graph, algorithm="sublog", seed=11, **RESILIENT)
        lossy = repro.discover(
            graph,
            algorithm="sublog",
            seed=11,
            fault_plan=FaultPlan(loss_rate=0.05, seed=11),
            **RESILIENT,
        )
        assert lossy.completed
        assert lossy.rounds <= 6 * clean.rounds

    def test_dropped_messages_are_counted(self):
        graph = make_topology("kout", 64, seed=2, k=3)
        result = repro.discover(
            graph,
            algorithm="sublog",
            seed=2,
            fault_plan=FaultPlan(loss_rate=0.1, seed=2),
            **RESILIENT,
        )
        assert result.dropped_messages > 0
        assert result.dropped_messages < result.messages

    def test_heavy_loss_eventually_completes(self):
        graph = make_topology("kout", 48, seed=5, k=3)
        result = repro.discover(
            graph,
            algorithm="sublog",
            seed=5,
            fault_plan=FaultPlan(loss_rate=0.25, seed=5),
            max_rounds=2000,
            **RESILIENT,
        )
        assert result.completed


class TestCrashes:
    @pytest.mark.parametrize("fraction", (0.1, 0.25))
    def test_survivors_discover_each_other(self, fraction: float):
        graph = make_topology("kout", 96, seed=13, k=3)
        plan = crash_fraction_plan(graph.node_ids, fraction, crash_round=5, seed=13)
        result = repro.discover(
            graph,
            algorithm="sublog",
            seed=13,
            goal="strong_alive",
            fault_plan=plan,
            **RESILIENT,
        )
        assert result.completed

    def test_crash_before_any_round(self):
        graph = make_topology("kout", 64, seed=3, k=3)
        plan = crash_fraction_plan(graph.node_ids, 0.15, crash_round=1, seed=3)
        result = repro.discover(
            graph,
            algorithm="sublog",
            seed=3,
            goal="strong_alive",
            fault_plan=plan,
            **RESILIENT,
        )
        assert result.completed

    def test_without_watchdog_leader_crash_can_stall(self):
        # Crash a heavy slice mid-merge with no recovery machinery: the
        # run may stall (orphaned members wait on dead leaders).  This
        # documents *why* the watchdog exists; we assert only that the
        # hardened configuration succeeds where the bare one is allowed
        # to fail.
        graph = make_topology("kout", 64, seed=21, k=3)
        plan = crash_fraction_plan(graph.node_ids, 0.3, crash_round=9, seed=21)
        bare = repro.discover(
            graph,
            algorithm="sublog",
            seed=21,
            goal="strong_alive",
            fault_plan=plan,
            max_rounds=300,
        )
        hardened = repro.discover(
            graph,
            algorithm="sublog",
            seed=21,
            goal="strong_alive",
            fault_plan=plan,
            max_rounds=600,
            **RESILIENT,
        )
        assert hardened.completed
        assert hardened.rounds >= 1  # bare may or may not have completed
        del bare

    def test_combined_loss_and_crash(self):
        graph = make_topology("kout", 64, seed=8, k=3)
        crash = crash_fraction_plan(graph.node_ids, 0.1, crash_round=7, seed=8)
        plan = FaultPlan(
            loss_rate=0.03, crash_rounds=dict(crash.crash_rounds), seed=8
        )
        result = repro.discover(
            graph,
            algorithm="sublog",
            seed=8,
            goal="strong_alive",
            fault_plan=plan,
            max_rounds=1200,
            **RESILIENT,
        )
        assert result.completed
