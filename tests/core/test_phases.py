"""Unit tests for phase/step arithmetic."""

from __future__ import annotations

import pytest

from repro.core.phases import (
    ROUNDS_PER_PHASE,
    STEP_ABSORB,
    STEP_ASSIGN,
    STEP_DECIDE,
    STEP_FORWARD,
    STEP_INVITE,
    STEP_NAMES,
    STEP_REPORT,
    phase_of,
    rounds_for_phases,
    step_of,
)


class TestStepArithmetic:
    def test_phase_has_six_rounds(self):
        assert ROUNDS_PER_PHASE == 6
        assert len(STEP_NAMES) == 6

    def test_step_sequence_of_first_phase(self):
        steps = [step_of(r) for r in range(1, 7)]
        assert steps == [
            STEP_REPORT,
            STEP_ASSIGN,
            STEP_INVITE,
            STEP_FORWARD,
            STEP_DECIDE,
            STEP_ABSORB,
        ]

    def test_steps_wrap(self):
        assert step_of(7) == STEP_REPORT
        assert step_of(13) == STEP_REPORT
        assert step_of(12) == STEP_ABSORB

    def test_phase_of(self):
        assert phase_of(1) == 1
        assert phase_of(6) == 1
        assert phase_of(7) == 2
        assert phase_of(12) == 2
        assert phase_of(13) == 3

    def test_rounds_for_phases(self):
        assert rounds_for_phases(0) == 0
        assert rounds_for_phases(3) == 18

    @pytest.mark.parametrize("bad", (0, -5))
    def test_rounds_are_one_based(self, bad: int):
        with pytest.raises(ValueError):
            step_of(bad)
        with pytest.raises(ValueError):
            phase_of(bad)
        with pytest.raises(ValueError):
            rounds_for_phases(-1)
