"""Step-level unit tests for SubLogNode's handlers and healing paths.

These drive a single node directly with crafted messages, pinning down
the behaviors the integration suite can only observe statistically:
forwarding chains, corrective welcomes, authoritative assigns, watchdog
reversion, and the contraction rule's decision table.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.config import SubLogConfig
from repro.core.phases import (
    ROUNDS_PER_PHASE,
    STEP_ASSIGN,
    STEP_DECIDE,
    STEP_FORWARD,
    STEP_INVITE,
    STEP_REPORT,
)
from repro.core.sublog import SubLogNode
from repro.sim.messages import Message


def make_node(node_id=1, knows=(2, 3), config=None) -> SubLogNode:
    node = SubLogNode(node_id, config=config)
    node.bind(knows, random.Random(0))
    return node


def deliver(node: SubLogNode, round_no: int, *messages: Message) -> List[Message]:
    """Absorb + run one round; return the outbox."""
    for message in messages:
        node.absorb(message)
    return node.run_round(round_no, list(messages))


def round_for(step: int, phase: int = 1) -> int:
    return (phase - 1) * ROUNDS_PER_PHASE + step + 1


class TestSetup:
    def test_initial_state_is_singleton_leader(self):
        node = make_node()
        assert node.is_leader
        assert node.roster == {1}
        assert node.pool == set()
        assert node.cluster_size == 1

    def test_initial_contacts_become_pool_at_report(self):
        node = make_node(knows=(2, 3))
        deliver(node, round_for(STEP_REPORT))
        assert node.pool == {2, 3}


class TestReportHandling:
    def test_leader_absorbs_reports_into_pool(self):
        node = make_node()
        outbox = deliver(
            node,
            round_for(STEP_ASSIGN),
            Message(kind="report", sender=2, recipient=1, ids=(7, 8)),
        )
        assert {7, 8} <= node.pool
        del outbox

    def test_stale_member_forwards_report_and_corrects_sender(self):
        node = make_node()
        node.leader = 9  # we are a plain member of 9 now
        node.known.add(9)
        outbox = deliver(
            node,
            round_for(STEP_FORWARD),
            Message(kind="report", sender=2, recipient=1, ids=(7,)),
        )
        kinds = {(m.kind, m.recipient) for m in outbox}
        assert ("report", 9) in kinds  # relayed upward
        assert ("welcome", 2) in kinds  # sender's pointer corrected
        welcome = next(m for m in outbox if m.kind == "welcome")
        assert tuple(welcome.ids) == (9,)

    def test_report_dedupes_against_roster(self):
        node = make_node()
        node.roster = {1, 7}
        deliver(
            node,
            round_for(STEP_ASSIGN),
            Message(kind="report", sender=7, recipient=1, ids=(7, 8)),
        )
        assert 7 not in node.pool
        assert 8 in node.pool


class TestAssignHandling:
    def test_assign_is_authoritative_about_leadership(self):
        node = make_node()
        assert node.is_leader
        deliver(
            node,
            round_for(STEP_INVITE),
            Message(kind="assign", sender=5, recipient=1, ids=(8,), data=(4, True)),
        )
        assert node.leader == 5
        assert not node.is_leader

    def test_assigned_targets_are_invited_with_cluster_identity(self):
        node = make_node()
        outbox = deliver(
            node,
            round_for(STEP_INVITE),
            Message(kind="assign", sender=5, recipient=1, ids=(8, 9), data=(4, True)),
        )
        invites = [m for m in outbox if m.kind == "invite"]
        assert {m.recipient for m in invites} == {8, 9}
        for invite in invites:
            assert tuple(invite.ids) == (5,)  # the assigning leader
            assert invite.data == (4, True)  # size and coin

    def test_empty_assign_is_a_heartbeat(self):
        node = make_node()
        outbox = deliver(
            node,
            round_for(STEP_INVITE),
            Message(kind="assign", sender=5, recipient=1, ids=(), data=(4, False)),
        )
        assert not [m for m in outbox if m.kind == "invite"]


class TestInviteFlow:
    def test_member_forwards_invites_to_leader(self):
        node = make_node()
        node.leader = 9
        node.known.add(9)
        deliver(
            node,
            round_for(STEP_INVITE),
            Message(kind="invite", sender=4, recipient=1, ids=(40,), data=(6, True)),
        )
        outbox = deliver(node, round_for(STEP_FORWARD))
        forwards = [m for m in outbox if m.kind == "fwd"]
        assert len(forwards) == 1
        assert forwards[0].recipient == 9
        assert tuple(forwards[0].ids) == (40,)
        assert forwards[0].data == ((6, True),)

    def test_intra_cluster_invites_are_dropped(self):
        node = make_node()
        node.leader = 9
        node.known.add(9)
        deliver(
            node,
            round_for(STEP_INVITE),
            Message(kind="invite", sender=4, recipient=1, ids=(9,), data=(6, True)),
        )
        outbox = deliver(node, round_for(STEP_FORWARD))
        assert not [m for m in outbox if m.kind == "fwd"]

    def test_leader_absorbs_forwarded_invites_into_pool(self):
        node = make_node()
        deliver(
            node,
            round_for(STEP_DECIDE),
            Message(
                kind="fwd", sender=2, recipient=1, ids=(40, 41),
                data=((6, True), (2, False)),
            ),
        )
        assert {40, 41} <= node.pool


class TestDecideRankRule:
    def _invite(self, inviter: int, size: int) -> Message:
        return Message(
            kind="fwd", sender=2, recipient=1, ids=(inviter,), data=((size, False),)
        )

    def test_joins_strictly_larger_inviter(self):
        node = make_node()  # size 1, id 1
        outbox = deliver(node, round_for(STEP_DECIDE), self._invite(40, 5))
        joins = [m for m in outbox if m.kind == "join"]
        assert len(joins) == 1
        assert joins[0].recipient == 40
        assert node.joining_to == 40

    def test_refuses_smaller_inviter(self):
        node = make_node()
        node.roster = {1, 2, 3}  # size 3
        node.known.update({2, 3})
        outbox = deliver(node, round_for(STEP_DECIDE), self._invite(40, 2))
        assert not [m for m in outbox if m.kind == "join"]
        assert 40 in node.pool  # edge preserved for later phases

    def test_equal_size_breaks_ties_by_id(self):
        node = make_node(node_id=50)
        outbox = deliver(node, round_for(STEP_DECIDE), self._invite(40, 1))
        # inviter id 40 < our id 50 at equal size: we stay.
        assert not [m for m in outbox if m.kind == "join"]

    def test_picks_largest_among_inviters(self):
        node = make_node()
        outbox = deliver(
            node,
            round_for(STEP_DECIDE),
            self._invite(40, 5),
            self._invite(41, 9),
        )
        joins = [m for m in outbox if m.kind == "join"]
        assert joins[0].recipient == 41

    def test_join_carries_roster_then_pool(self):
        node = make_node()
        node.roster = {1, 2}
        node.known.update({2})
        node.pool = {7}
        node.known.add(7)
        outbox = deliver(node, round_for(STEP_DECIDE), self._invite(40, 5))
        join = next(m for m in outbox if m.kind == "join")
        roster_size = join.data[0]
        ids = tuple(join.ids)
        assert ids[:roster_size] == (1, 2)
        assert 7 in ids[roster_size:]


class TestJoinAbsorption:
    def test_leader_absorbs_and_welcomes(self):
        node = make_node()
        outbox = deliver(
            node,
            round_for(STEP_REPORT, phase=2),
            Message(kind="join", sender=5, recipient=1, ids=(5, 6, 80), data=(2,)),
        )
        assert node.roster == {1, 5, 6}
        assert 80 in node.pool
        welcomes = [m for m in outbox if m.kind == "welcome"]
        assert {m.recipient for m in welcomes} == {5, 6}
        assert all(tuple(m.ids) == (1,) for m in welcomes)

    def test_mid_join_leader_forwards_joins_upstream(self):
        node = make_node()
        node.joining_to = 99
        node.known.add(99)
        outbox = deliver(
            node,
            round_for(5, phase=1),  # the ABSORB step
            Message(kind="join", sender=5, recipient=1, ids=(5,), data=(1,)),
        )
        forwarded = [m for m in outbox if m.kind == "join"]
        assert len(forwarded) == 1
        assert forwarded[0].recipient == 99
        assert node.roster == {1}  # not absorbed locally

    def test_ex_leader_relays_joins_to_current_leader(self):
        node = make_node()
        node.leader = 9
        node.known.add(9)
        outbox = deliver(
            node,
            round_for(STEP_REPORT, phase=2),
            Message(kind="join", sender=5, recipient=1, ids=(5,), data=(1,)),
        )
        forwarded = [m for m in outbox if m.kind == "join"]
        assert forwarded and forwarded[0].recipient == 9


class TestWelcomeHealing:
    def test_normal_welcome_after_join(self):
        node = make_node()
        node.joining_to = 40
        node.known.add(40)
        deliver(
            node,
            round_for(STEP_REPORT, phase=2),
            Message(kind="welcome", sender=40, recipient=1, ids=(40,)),
        )
        assert node.leader == 40
        assert not node.is_leader
        assert node.joining_to is None

    def test_unsolicited_welcome_hands_over_cluster_state(self):
        node = make_node()
        node.roster = {1, 2}
        node.known.update({2})
        node.pool = {7}
        node.known.add(7)
        outbox = deliver(
            node,
            round_for(STEP_REPORT, phase=2),
            Message(kind="welcome", sender=40, recipient=1, ids=(40,)),
        )
        joins = [m for m in outbox if m.kind == "join"]
        assert len(joins) == 1 and joins[0].recipient == 40
        assert node.leader == 40

    def test_self_welcome_is_ignored(self):
        node = make_node()
        deliver(
            node,
            round_for(STEP_REPORT, phase=2),
            Message(kind="welcome", sender=40, recipient=1, ids=(1,)),
        )
        assert node.is_leader


class TestWatchdog:
    def test_member_reverts_after_missed_heartbeats(self):
        config = SubLogConfig(watchdog_phases=2)
        node = make_node(config=config)
        node.leader = 9
        node.known.update({9, 5})
        # Two INVITE steps pass with no assign received.
        deliver(node, round_for(STEP_INVITE, phase=1))
        assert not node.is_leader
        deliver(node, round_for(STEP_INVITE, phase=2))
        assert node.is_leader  # reverted to singleton
        assert node.pool == node.known - {1}

    def test_heartbeat_resets_the_watchdog(self):
        config = SubLogConfig(watchdog_phases=2)
        node = make_node(config=config)
        node.leader = 9
        node.known.add(9)
        deliver(node, round_for(STEP_INVITE, phase=1))
        deliver(
            node,
            round_for(STEP_INVITE, phase=2),
            Message(kind="assign", sender=9, recipient=1, ids=(), data=(3, False)),
        )
        assert not node.is_leader
        deliver(node, round_for(STEP_INVITE, phase=3))
        assert not node.is_leader  # only one consecutive miss so far

    def test_watchdog_disabled_by_default(self):
        node = make_node()
        node.leader = 9
        node.known.add(9)
        for phase in range(1, 6):
            deliver(node, round_for(STEP_INVITE, phase=phase))
        assert not node.is_leader
