"""Behavioral tests for the core sub-logarithmic algorithm."""

from __future__ import annotations

import math
import statistics

import pytest

import repro
from repro.analysis.invariants import (
    BallContainmentObserver,
    MonotonicityObserver,
    verify_view_consistency,
)
from repro.core import ClusterSizeObserver, ROUNDS_PER_PHASE, SubLogNode
from repro.graphs import make_topology
from repro.sim import SynchronousEngine


class TestBasicCompletion:
    def test_two_nodes_one_edge(self):
        result = repro.discover({0: {1}, 1: set()}, algorithm="sublog")
        assert result.completed
        # The invite of phase 1 (round 3) already completes knowledge.
        assert result.rounds <= ROUNDS_PER_PHASE

    def test_singleton(self):
        result = repro.discover({0: set()}, algorithm="sublog")
        assert result.completed
        assert result.rounds == 0
        assert result.messages == 0

    @pytest.mark.parametrize("topo", ("path", "star_in", "kout", "clustered"))
    def test_completes_with_legality_enforced(self, topo: str):
        graph = make_topology(topo, 48, seed=8)
        result = repro.discover(
            graph, algorithm="sublog", seed=8, enforce_legality=True
        )
        assert result.completed


class TestHeadlineComplexity:
    def test_sublogarithmic_plateau_on_kout(self):
        """The core claim: rounds barely grow from n=64 to n=1024.

        log2 n doubles (6 -> 10) over this range; a logarithmic algorithm
        would grow ~67%.  The sub-logarithmic algorithm must grow by at
        most two phases.
        """
        medians = {}
        for n in (64, 1024):
            rounds = [
                repro.discover(
                    make_topology("kout", n, seed=seed, k=3),
                    algorithm="sublog",
                    seed=seed,
                ).rounds
                for seed in (1, 2, 3)
            ]
            medians[n] = statistics.median(rounds)
        assert medians[1024] <= medians[64] + 2 * ROUNDS_PER_PHASE

    def test_beats_namedropper_pointer_complexity(self):
        graph = make_topology("kout", 256, seed=4, k=3)
        sublog = repro.discover(graph, algorithm="sublog", seed=4)
        namedropper = repro.discover(graph, algorithm="namedropper", seed=4)
        assert sublog.pointers < namedropper.pointers / 3

    def test_message_complexity_near_linear(self):
        # O(n) messages per phase, O(log log n) phases: messages/n must
        # stay modest and grow sub-linearly.
        per_node = {}
        for n in (128, 512):
            graph = make_topology("kout", n, seed=2, k=3)
            result = repro.discover(graph, algorithm="sublog", seed=2)
            per_node[n] = result.messages / n
        assert per_node[512] < 60
        assert per_node[512] < per_node[128] * 3

    def test_respects_lower_bound_on_path(self):
        # Ball containment: no algorithm beats ceil(log2 D) rounds.
        graph = make_topology("path", 128)
        result = repro.discover(graph, algorithm="sublog", seed=1)
        assert result.completed
        assert result.rounds >= math.ceil(math.log2(127))


class TestInvariants:
    def test_ball_containment_holds(self):
        graph = make_topology("kout", 48, seed=3, k=3)
        observer = BallContainmentObserver(graph, strict=True)
        result = repro.discover(
            graph,
            algorithm="sublog",
            seed=3,
            observers=[observer],
            enforce_legality=True,
        )
        assert result.completed
        assert not observer.violations

    def test_monotonicity_holds(self):
        graph = make_topology("clustered", 48, seed=3)
        observer = MonotonicityObserver(strict=True)
        result = repro.discover(graph, algorithm="sublog", seed=3, observers=[observer])
        assert result.completed
        assert not observer.violations

    def test_view_matches_ground_truth(self):
        graph = make_topology("kout", 40, seed=5, k=3)
        spec = repro.get_algorithm("sublog")
        engine = SynchronousEngine(graph, spec.node_factory(), seed=5)
        result = engine.run(max_rounds=400)
        assert result.completed
        assert verify_view_consistency(engine) is None


class TestClusterMechanics:
    def test_cluster_count_collapses_doubly_exponentially(self):
        graph = make_topology("kout", 512, seed=6, k=3)
        observer = ClusterSizeObserver()
        result = repro.discover(graph, algorithm="sublog", seed=6, observers=[observer])
        assert result.completed
        counts = [entry["clusters"] for entry in observer.history if entry["phase"] >= 1]
        # After two merging phases (phase 1 bootstraps reporting), the
        # cluster count must have collapsed by far more than halving-per-
        # phase could achieve: 512 -> fewer than 64 by phase 3.
        by_phase = {entry["phase"]: entry["clusters"] for entry in observer.history}
        third = by_phase.get(3)
        if third is not None:
            assert third < 64
        assert counts[-1] == 1 or result.completed

    def test_exactly_one_leader_at_completion(self):
        graph = make_topology("kout", 64, seed=7, k=3)
        spec = repro.get_algorithm("sublog")
        engine = SynchronousEngine(graph, spec.node_factory(), seed=7)
        engine.run(max_rounds=400)
        leaders = [
            node
            for node in engine.nodes.values()
            if isinstance(node, SubLogNode) and node.is_leader
        ]
        assert len(leaders) == 1
        assert len(leaders[0].roster) == 64

    def test_members_point_at_the_final_leader(self):
        graph = make_topology("kout", 48, seed=9, k=3)
        spec = repro.get_algorithm("sublog")
        engine = SynchronousEngine(graph, spec.node_factory(), seed=9)
        engine.run(max_rounds=400)
        leader = next(
            node.node_id for node in engine.nodes.values() if node.is_leader
        )
        # Leader pointers may lag by an in-flight welcome, but at quiesce
        # (run stopped at completion) the vast majority must point home.
        pointing_home = sum(
            1 for node in engine.nodes.values() if node.leader == leader
        )
        assert pointing_home >= 46

    def test_message_kinds_are_the_documented_protocol(self):
        graph = make_topology("kout", 48, seed=2, k=3)
        result = repro.discover(graph, algorithm="sublog", seed=2)
        expected = {"report", "assign", "invite", "fwd", "join", "welcome", "roster"}
        assert set(result.messages_by_kind) <= expected
        for kind in ("report", "assign", "invite", "join", "welcome", "roster"):
            assert result.messages_by_kind.get(kind, 0) > 0, kind


class TestVariants:
    def test_coin_contraction_completes_but_slower(self):
        graph = make_topology("kout", 256, seed=3, k=3)
        rank = repro.discover(graph, algorithm="sublog", seed=3)
        coin = repro.discover(graph, algorithm="sublogcoin", seed=3)
        assert rank.completed and coin.completed
        assert coin.rounds > rank.rounds

    def test_no_delegation_still_completes(self):
        graph = make_topology("kout", 96, seed=4, k=3)
        result = repro.discover(graph, algorithm="sublog", seed=4, delegation=False)
        assert result.completed

    def test_spread_limit_one_completes(self):
        graph = make_topology("kout", 96, seed=4, k=3)
        result = repro.discover(graph, algorithm="sublog", seed=4, spread_limit=1)
        assert result.completed

    def test_weak_goal_without_broadcast(self):
        graph = make_topology("kout", 96, seed=5, k=3)
        weak = repro.discover(
            graph, algorithm="sublog", seed=5, goal="weak", completion="none"
        )
        strong = repro.discover(graph, algorithm="sublog", seed=5)
        assert weak.completed
        # Skipping the roster broadcast must strip the Θ(n²) pointer tail.
        assert weak.pointers < strong.pointers / 2

    def test_weak_run_emits_no_roster_messages(self):
        graph = make_topology("kout", 64, seed=5, k=3)
        result = repro.discover(
            graph, algorithm="sublog", seed=5, goal="weak", completion="none"
        )
        assert result.messages_by_kind.get("roster", 0) == 0
