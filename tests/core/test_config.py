"""Unit tests for SubLogConfig validation."""

from __future__ import annotations

import pytest

from repro.core.config import SubLogConfig


class TestSubLogConfig:
    def test_defaults(self):
        config = SubLogConfig()
        assert config.contraction == "rank"
        assert config.delegation is True
        assert config.spread_limit is None
        assert config.resilient is False
        assert config.watchdog_phases is None
        assert config.completion == "broadcast"
        assert config.stagnation_phases is None

    def test_is_frozen(self):
        config = SubLogConfig()
        with pytest.raises(AttributeError):
            config.contraction = "coin"  # type: ignore[misc]

    @pytest.mark.parametrize("contraction", ("rank", "coin"))
    def test_valid_contractions(self, contraction: str):
        assert SubLogConfig(contraction=contraction).contraction == contraction

    def test_invalid_contraction(self):
        with pytest.raises(ValueError, match="contraction"):
            SubLogConfig(contraction="vote")

    def test_invalid_completion(self):
        with pytest.raises(ValueError, match="completion"):
            SubLogConfig(completion="sometimes")

    @pytest.mark.parametrize("value", (0, -1))
    def test_invalid_spread_limit(self, value: int):
        with pytest.raises(ValueError, match="spread_limit"):
            SubLogConfig(spread_limit=value)

    def test_invalid_watchdog(self):
        with pytest.raises(ValueError, match="watchdog_phases"):
            SubLogConfig(watchdog_phases=0)

    def test_invalid_stagnation(self):
        with pytest.raises(ValueError, match="stagnation_phases"):
            SubLogConfig(stagnation_phases=0)
