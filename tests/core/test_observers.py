"""Unit tests for the core-algorithm observers."""

from __future__ import annotations

import repro
from repro.core import ClusterSizeObserver, ROUNDS_PER_PHASE, cluster_sizes
from repro.core.sublog import SubLogNode
from repro.graphs import make_topology
from repro.sim import SynchronousEngine


class TestClusterSizes:
    def test_initial_singletons(self):
        graph = make_topology("kout", 16, seed=1, k=2)
        engine = SynchronousEngine(graph, SubLogNode, seed=1)
        assert cluster_sizes(engine) == [1] * 16

    def test_sizes_cover_all_nodes_at_completion(self):
        graph = make_topology("kout", 32, seed=2, k=3)
        engine = SynchronousEngine(graph, SubLogNode, seed=2)
        engine.run(max_rounds=300)
        assert sum(cluster_sizes(engine)) >= 32  # transient overlap allowed

    def test_non_sublog_nodes_are_ignored(self):
        from repro.algorithms.flooding import FloodingNode

        graph = make_topology("path", 6)
        engine = SynchronousEngine(graph, FloodingNode)
        assert cluster_sizes(engine) == []


class TestClusterSizeObserver:
    def test_history_records_phase_boundaries(self):
        graph = make_topology("kout", 48, seed=3, k=3)
        observer = ClusterSizeObserver()
        result = repro.discover(graph, algorithm="sublog", seed=3, observers=[observer])
        assert result.completed
        phases = [entry["phase"] for entry in observer.history]
        assert phases[0] == 0
        assert phases == sorted(phases)
        # Every full phase boundary up to completion is present.
        full_phases = result.rounds // ROUNDS_PER_PHASE
        assert max(phases) >= full_phases

    def test_history_fields(self):
        graph = make_topology("kout", 32, seed=4, k=3)
        observer = ClusterSizeObserver()
        repro.discover(graph, algorithm="sublog", seed=4, observers=[observer])
        for entry in observer.history:
            assert entry["min"] <= entry["median"] <= entry["max"]
            assert entry["clusters"] >= 1

    def test_extra_exposed_in_result(self):
        graph = make_topology("kout", 32, seed=4, k=3)
        observer = ClusterSizeObserver()
        result = repro.discover(graph, algorithm="sublog", seed=4, observers=[observer])
        assert result.extra["cluster_phases"] == observer.history
