"""Smoke tests: every example script runs end-to-end at a reduced size."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = (
    ("quickstart.py", ["96"]),
    ("datacenter_bootstrap.py", ["96", "8"]),
    ("p2p_overlay.py", ["64"]),
    ("failure_study.py", ["96"]),
    ("rolling_expansion.py", ["64", "8"]),
)


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script: str, args: list):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"


def test_quickstart_reports_all_algorithms():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py"), "64"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0
    for name in ("sublog", "namedropper", "flooding"):
        assert name in completed.stdout


def test_p2p_overlay_builds_ring():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "p2p_overlay.py"), "48"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0
    assert "single cycle" in completed.stdout
