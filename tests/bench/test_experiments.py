"""Smoke + shape tests for every experiment module at a tiny scale.

Each experiment must run end-to-end, produce its artifacts, and exhibit
the qualitative shape EXPERIMENTS.md claims — at sizes small enough for
the unit-test budget.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import EXPERIMENTS, experiment_ids, get_experiment
from repro.bench.seeds import Scale
from repro.bench.tables import ExperimentReport

TINY = Scale(
    name="tiny",
    seeds=(11, 23),
    sweep_sizes=(24, 48),
    focus_n=48,
    big_n=64,
)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(experiment_ids()) == {
            "T1",
            "T2",
            "T3",
            "T4",
            "T5",
            "T6",
            "T7",
            "T8",
            "T9",
            "F1",
            "F2",
            "F3",
            "F4",
            "F5",
        }

    def test_lookup_is_case_insensitive(self):
        assert get_experiment("t1").EXPERIMENT_ID == "T1"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            get_experiment("T99")


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_runs_and_renders(experiment_id: str):
    module = EXPERIMENTS[experiment_id]
    report = module.run(TINY)
    assert isinstance(report, ExperimentReport)
    assert report.experiment_id == experiment_id
    assert report.artifacts
    text = report.render()
    assert experiment_id in text
    assert "==" in text  # at least one rendered artifact


class TestExperimentShapes:
    def test_t1_has_column_per_algorithm(self):
        report = get_experiment("T1").run(TINY)
        table = report.artifacts[0]
        assert "sublog" in table.columns
        assert "namedropper" in table.columns
        assert len(table.rows) == len(TINY.sweep_sizes)

    def test_t2_reports_message_floor(self):
        from repro.algorithms import algorithm_names

        report = get_experiment("T2").run(TINY)
        table = report.artifacts[0]
        assert "msg-bound" in table.columns
        # T2 derives its columns from the registry: every algorithm shows.
        for name in algorithm_names():
            assert name in table.columns
        assert "det_optimal_beats_randomized_at" in report.summary
        # Rounds table rides along (T2c).
        assert any("rounds" in artifact.title for artifact in report.artifacts)

    def test_f2_reaches_single_cluster(self):
        report = get_experiment("F2").run(TINY)
        assert report.summary["merged_by_phase"] >= 1
        history = report.summary["history"]
        assert history[0]["clusters"] == TINY.big_n

    def test_f4_reports_zero_violations(self):
        report = get_experiment("F4").run(TINY)
        assert all("0 violations" in note for note in report.notes)
        # ceiling column must dominate every algorithm column
        table = report.artifacts[0]
        for row in table.rows:
            ceiling = int(row[1].replace(",", ""))
            for cell in row[2:]:
                if cell != "-":
                    assert int(cell.replace(",", "")) <= ceiling

    def test_t3_records_completion_rates(self):
        report = get_experiment("T3").run(TINY)
        loss_summary = report.summary["loss"]
        assert 0.0 in loss_summary["sublog"]

    def test_t4_weak_cheaper_than_strong(self):
        report = get_experiment("T4").run(TINY)
        for n, row in report.summary.items():
            assert row["weak_pointers"] <= row["strong_pointers"]

    def test_t5_covers_all_variants(self):
        report = get_experiment("T5").run(TINY)
        assert "sublog (default)" in report.summary
        assert "coin contraction" in report.summary

    def test_t6_settle_times_recorded(self):
        report = get_experiment("T6").run(TINY)
        for row in report.summary.values():
            assert row["sublog"] >= 0
            assert row["namedropper"] >= 0
