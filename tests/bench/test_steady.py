"""Tests for the synthetic steady-state benchmark kernel.

The kernel's whole value is that its injected state and scheduled
traffic are *backend-equivalent*: a timing comparison between backends
is meaningless unless all three execute the identical workload.  These
tests pin that equivalence at small n (digest-per-round), plus the
injection invariants the large-n rows rely on.
"""

from __future__ import annotations

import pytest

from repro.bench.steady import (
    SteadySpec,
    build_steady_engine,
    inject_steady_state,
    laggard_missing,
    ring_adjacency,
    run_steady_window,
)
from repro.sim import BACKENDS, SynchronousEngine, vector_available

SPECS = {
    "sparse": SteadySpec(
        n=96, window=4, senders_per_round=24, pointers_per_message=16,
        laggards=8, missing_per_laggard=12, seed=11,
    ),
    "full-payload": SteadySpec(
        n=96, window=3, laggards=8, missing_per_laggard=12, seed=7,
    ),
    "shared-missing": SteadySpec(
        n=96, window=2, senders_per_round=32, laggards=40,
        missing_per_laggard=30, shared_missing=True, seed=5,
    ),
    "odd-n": SteadySpec(
        n=77, window=3, senders_per_round=20, pointers_per_message=9,
        laggards=5, missing_per_laggard=7, seed=3,
    ),
}


def _backends():
    return [b for b in BACKENDS if b != "vector" or vector_available()]


@pytest.mark.parametrize("name", sorted(SPECS))
def test_backends_digest_identical(name):
    spec = SPECS[name]
    digests = {b: run_steady_window(spec, b) for b in _backends()}
    reference = digests["legacy"]
    assert len(reference) == spec.window
    for backend, rounds in digests.items():
        assert rounds == reference, backend


def test_injection_matches_counters():
    spec = SPECS["shared-missing"]
    for backend in _backends():
        engine, _ = build_steady_engine(spec, backend)
        complete = sum(
            1 for known in engine.knowledge.values() if len(known) == spec.n
        )
        assert engine._complete_nodes == complete
        assert complete == spec.n - spec.laggards
        assert engine.weak_leader() == 0  # id 0 is never in a missing sample


def test_laggards_learn_during_window():
    spec = SPECS["full-payload"]
    for backend in _backends():
        engine, _ = build_steady_engine(spec, backend)
        before = engine._complete_nodes
        for _ in range(spec.window):
            engine.step()
        assert engine._complete_nodes > before


def test_window_pointer_count_matches_metrics():
    spec = SPECS["sparse"]
    engine, window_pointers = build_steady_engine(spec, "legacy")
    for _ in range(spec.window):
        engine.step()
    assert engine.metrics.total_pointers == window_pointers


@pytest.mark.parametrize("backend", ["fast", "vector"])
def test_lazy_injection_digests_match_eager(backend):
    if backend == "vector" and not vector_available():
        pytest.skip("numpy unavailable")
    spec = SPECS["shared-missing"]
    eager, _ = build_steady_engine(spec, backend)
    lazy, _ = build_steady_engine(spec, backend, sync_sets=False)
    for _ in range(spec.window):
        eager.step()
        lazy.step()
    assert eager.knowledge_digest() == lazy.knowledge_digest()


def test_lazy_injection_rejected_on_legacy():
    spec = SPECS["sparse"]
    engine = SynchronousEngine(
        ring_adjacency(spec.n), _quiet_factory, enforce_legality=False
    )
    with pytest.raises(ValueError, match="legacy"):
        inject_steady_state(engine, laggard_missing(spec), sync_sets=False)


def test_injection_rejected_with_enforcement():
    spec = SPECS["sparse"]
    engine = SynchronousEngine(
        ring_adjacency(spec.n), _quiet_factory, enforce_legality=True
    )
    with pytest.raises(ValueError, match="enforce_legality"):
        inject_steady_state(engine, laggard_missing(spec))


def test_shared_missing_is_one_object():
    spec = SPECS["shared-missing"]
    missing = laggard_missing(spec)
    samples = {id(sample) for sample in missing.values()}
    assert len(samples) == 1
    assert len(missing) == spec.laggards


def test_spec_memory_properties():
    spec = SteadySpec(n=100_000)
    assert spec.bytes_per_node == 12_500
    assert spec.matrix_mb == pytest.approx(1192.1, abs=0.1)


def _quiet_factory(node_id):
    from repro.sim.node import ProtocolNode

    class Quiet(ProtocolNode):
        def on_round(self, round_no, inbox, rng):
            pass

    return Quiet(node_id)
