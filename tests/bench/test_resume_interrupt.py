"""End-to-end: kill a sweep mid-flight, resume it, get identical results.

This is the acceptance test for the crash-safe sweep layer, exercised
through the real CLI in a real subprocess: a SIGKILL at an arbitrary
point must lose nothing but the cells in flight, and ``--resume`` must
finish the matrix with results byte-identical to an uninterrupted run.
CI runs this file as its interruption-recovery gate.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

SWEEP_ARGS = [
    "--algorithms",
    "sublog",
    "namedropper",
    "--sizes",
    "256",
    "512",
    "--seeds",
    "11",
    "23",
    "--quiet",
]


def _run_cli(*extra: str, wait: bool = True) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "sweep", *SWEEP_ARGS, *extra],
        cwd=REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    if wait:
        out, err = process.communicate(timeout=300)
        assert process.returncode == 0, err.decode()
    return process


def _journaled_results(journal: Path) -> int:
    if not journal.exists():
        return 0
    count = 0
    for line in journal.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail — exactly what the kill is meant to produce
        if record.get("type") == "result":
            count += 1
    return count


def test_killed_sweep_resumes_to_identical_results(tmp_path):
    reference_out = tmp_path / "reference.json"
    resumed_out = tmp_path / "resumed.json"
    journal = tmp_path / "journal.jsonl"

    # Uninterrupted reference run.
    _run_cli("--out", str(reference_out))

    # Start the same sweep, kill it once at least one cell is journaled
    # (but, with luck, before the last one).
    process = _run_cli("--out", str(resumed_out), "--journal", str(journal), wait=False)
    deadline = time.time() + 240
    while time.time() < deadline:
        if process.poll() is not None:
            break  # finished before we could kill it: resume is then a no-op
        if _journaled_results(journal) >= 1:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
            break
        time.sleep(0.02)
    else:
        process.kill()
        raise AssertionError("sweep never journaled a result")
    interrupted_at = _journaled_results(journal)

    # Resume; must complete the matrix whatever state the kill left.
    _run_cli("--out", str(resumed_out), "--journal", str(journal), "--resume")

    reference = json.loads(reference_out.read_text())["results"]
    resumed = json.loads(resumed_out.read_text())["results"]
    assert resumed == reference, (
        f"resume after kill (at {interrupted_at} journaled cells) diverged "
        "from the uninterrupted sweep"
    )
    assert _journaled_results(journal) == len(reference)
