"""Unit tests for result persistence."""

from __future__ import annotations

import json

import pytest

from repro.bench.runner import sweep
from repro.bench.store import (
    load_metadata,
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.sim.metrics import RoundStats, RunResult


def sample_result(**overrides) -> RunResult:
    defaults = dict(
        algorithm="sublog",
        n=16,
        seed=3,
        completed=True,
        rounds=8,
        messages=120,
        pointers=500,
        dropped_messages=2,
        messages_by_kind={"invite": 40, "report": 80},
        pointers_by_kind={"invite": 40, "report": 460},
        round_stats=(RoundStats(1, 10, 50, 1), RoundStats(2, 110, 450, 1)),
        params={"spread_limit": 1},
    )
    defaults.update(overrides)
    return RunResult(**defaults)


class TestDictRoundTrip:
    def test_without_rounds(self):
        original = sample_result()
        restored = result_from_dict(result_to_dict(original))
        assert restored.algorithm == original.algorithm
        assert restored.rounds == original.rounds
        assert restored.messages_by_kind == dict(original.messages_by_kind)
        assert restored.params == dict(original.params)
        assert restored.round_stats == ()

    def test_with_rounds(self):
        original = sample_result()
        restored = result_from_dict(result_to_dict(original, include_rounds=True))
        assert restored.round_stats == original.round_stats

    def test_payload_is_json_safe(self):
        json.dumps(result_to_dict(sample_result(), include_rounds=True))

    def test_delivery_fields_round_trip(self):
        original = sample_result(
            dropped_messages=5,
            dropped_by_reason={"fault": 2, "partition": 3},
            delivery_delays={1: 100, 3: 20},
        )
        payload = result_to_dict(original)
        # JSON object keys are strings; the histogram must re-key to ints.
        assert payload["delivery_delays"] == {"1": 100, "3": 20}
        restored = result_from_dict(json.loads(json.dumps(payload)))
        assert restored.dropped_by_reason == {"fault": 2, "partition": 3}
        assert restored.delivery_delays == {1: 100, 3: 20}

    def test_delivery_fields_default_empty_for_old_payloads(self):
        payload = result_to_dict(sample_result())
        payload.pop("dropped_by_reason", None)
        payload.pop("delivery_delays", None)
        restored = result_from_dict(payload)
        assert restored.dropped_by_reason == {}
        assert restored.delivery_delays == {}


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "results.json"
        originals = [sample_result(seed=s) for s in range(4)]
        count = save_results(originals, path, metadata={"purpose": "test"})
        assert count == 4
        restored = load_results(path)
        assert [r.seed for r in restored] == [0, 1, 2, 3]
        assert load_metadata(path) == {"purpose": "test"}

    def test_real_sweep_round_trips(self, tmp_path):
        path = tmp_path / "sweep.json"
        results = sweep(["sublog"], "kout", [16, 24], [1, 2])
        save_results(results, path)
        restored = load_results(path)
        assert len(restored) == len(results)
        assert all(r.completed for r in restored)
        assert {(r.algorithm, r.n, r.seed) for r in restored} == {
            (r.algorithm, r.n, r.seed) for r in results
        }

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_results(path)

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": 0, "results": []}))
        with pytest.raises(ValueError, match="schema"):
            load_results(path)
