"""Unit tests for benchmark scales."""

from __future__ import annotations

import pytest

from repro.bench.seeds import CANONICAL_SEEDS, SCALES, bench_scale


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"small", "full", "large"}

    def test_scales_are_ordered(self):
        small, full, large = SCALES["small"], SCALES["full"], SCALES["large"]
        assert max(small.sweep_sizes) < max(full.sweep_sizes)
        assert max(full.sweep_sizes) < max(large.sweep_sizes)
        assert small.seed_count <= full.seed_count
        assert small.big_n < full.big_n < large.big_n

    def test_seeds_are_canonical_prefixes(self):
        for scale in SCALES.values():
            assert scale.seeds == CANONICAL_SEEDS[: len(scale.seeds)]


class TestBenchScale:
    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert bench_scale("small").name == "small"

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert bench_scale().name == "full"

    def test_default_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale().name == "small"

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            bench_scale("galactic")
