"""Unit tests for the sweep runner."""

from __future__ import annotations

from repro.bench.runner import Case, build_graph, index_results, run_case, sweep


class TestCase:
    def test_display_defaults_to_algorithm(self):
        case = Case(algorithm="sublog", topology="kout", n=16, seed=1)
        assert case.display == "sublog"
        labeled = Case(
            algorithm="sublog", topology="kout", n=16, seed=1, label="variant-x"
        )
        assert labeled.display == "variant-x"

    def test_build_graph_uses_case_seed(self):
        case_a = Case(algorithm="sublog", topology="kout", n=24, seed=1)
        case_b = Case(algorithm="sublog", topology="kout", n=24, seed=2)
        assert build_graph(case_a) != build_graph(case_b)
        assert build_graph(case_a) == build_graph(case_a)


class TestRunCase:
    def test_runs_to_completion(self):
        case = Case(algorithm="sublog", topology="kout", n=24, seed=3)
        result = run_case(case)
        assert result.completed
        assert result.algorithm == "sublog"
        assert result.n == 24

    def test_params_reach_the_algorithm(self):
        case = Case(
            algorithm="sublog",
            topology="kout",
            n=24,
            seed=3,
            params={"completion": "none"},
            goal="weak",
        )
        result = run_case(case)
        assert result.completed
        assert result.messages_by_kind.get("roster", 0) == 0


class TestSweep:
    def test_matrix_shape(self):
        results = sweep(["sublog", "flooding"], "kout", [16, 24], [1, 2])
        assert len(results) == 2 * 2 * 2
        assert all(r.completed for r in results)

    def test_size_caps_skip_cells(self):
        results = sweep(
            ["sublog", "flooding"],
            "kout",
            [16, 24],
            [1],
            size_caps={"flooding": 16},
        )
        combos = {(r.algorithm, r.n) for r in results}
        assert ("flooding", 24) not in combos
        assert ("flooding", 16) in combos
        assert ("sublog", 24) in combos

    def test_shared_graph_across_algorithms(self):
        # Both algorithms must see identical inputs per (n, seed): check
        # via determinism — rerunning the sweep reproduces everything.
        a = sweep(["sublog", "namedropper"], "kout", [24], [5])
        b = sweep(["sublog", "namedropper"], "kout", [24], [5])
        assert [(r.rounds, r.messages) for r in a] == [
            (r.rounds, r.messages) for r in b
        ]

    def test_index_results(self):
        results = sweep(["sublog"], "kout", [16], [1, 2])
        indexed = index_results(results)
        assert set(indexed) == {("sublog", 16)}
        assert len(indexed[("sublog", 16)]) == 2


class TestSweepSeeds:
    def test_deterministic_and_distinct(self):
        from repro.bench.runner import sweep_seeds

        seeds_a = sweep_seeds(7, 8)
        seeds_b = sweep_seeds(7, 8)
        assert seeds_a == seeds_b
        assert len(set(seeds_a)) == 8
        assert all(0 <= seed < 2**32 for seed in seeds_a)
        assert sweep_seeds(8, 8) != seeds_a


class TestParallelSweep:
    def test_workers_match_serial_results(self):
        serial = sweep(["sublog", "namedropper"], "kout", [16, 24], [1, 2])
        parallel = sweep(
            ["sublog", "namedropper"], "kout", [16, 24], [1, 2], workers=2
        )
        assert parallel == serial

    def test_single_worker_stays_serial(self):
        assert sweep(["flooding"], "kout", [16], [1], workers=1) == sweep(
            ["flooding"], "kout", [16], [1]
        )

    def test_legacy_engine_sweep_matches_fast(self):
        fast = sweep(["namedropper"], "kout", [20], [3, 4])
        legacy = sweep(["namedropper"], "kout", [20], [3, 4], fast_path=False)
        assert fast == legacy


class TestDeliveryThreading:
    def test_case_delivery_reaches_the_engine(self):
        case = Case(
            algorithm="namedropper",
            topology="kout",
            n=20,
            seed=3,
            delivery="adversarial:2",
        )
        result = run_case(case)
        assert result.completed
        assert set(result.delivery_delays) == {3}

    def test_run_case_kwarg_overrides_case_delivery(self):
        case = Case(
            algorithm="namedropper",
            topology="kout",
            n=20,
            seed=3,
            delivery="adversarial:2",
        )
        overridden = run_case(case, delivery="lockstep")
        assert set(overridden.delivery_delays) == {1}

    def test_sweep_applies_delivery_to_every_cell(self):
        results = sweep(
            ["namedropper", "flooding"], "kout", [16], [1, 2],
            delivery="adversarial:1",
        )
        assert len(results) == 4
        assert all(set(r.delivery_delays) == {2} for r in results)

    def test_parallel_delivery_sweep_matches_serial(self):
        """Delivery specs must survive the pickle trip to sweep workers."""
        serial = sweep(
            ["namedropper"], "kout", [16, 20], [1, 2], delivery="perlink:2"
        )
        parallel = sweep(
            ["namedropper"], "kout", [16, 20], [1, 2], delivery="perlink:2",
            workers=2,
        )
        assert parallel == serial
