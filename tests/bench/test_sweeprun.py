"""Tests for the crash-safe sweep layer (SweepRunner)."""

from __future__ import annotations

import json

import pytest

from repro.bench.runner import build_cases, case_key, sweep
from repro.bench.store import load_journal, read_journal
from repro.bench.sweeprun import (
    BACKOFF_CAP,
    FailCell,
    SlowCell,
    SweepError,
    SweepOptions,
    SweepRunner,
    backoff_delay,
    matrix_digest,
)

ALGO = ["sublog"]
SIZES = [32, 64]
SEEDS = [1, 2]


@pytest.fixture(scope="module")
def cases():
    return build_cases(ALGO, "kout", SIZES, SEEDS)


@pytest.fixture(scope="module")
def plain_results():
    return sweep(ALGO, "kout", SIZES, SEEDS)


class TestFailureIsolation:
    def test_injected_crash_becomes_failure_record(self, cases, plain_results):
        # Acceptance criterion: the crashed cell is recorded as failed
        # after its retry budget; every other cell's result is intact.
        runner = SweepRunner(retries=2, fault_hook=FailCell(n=64, seed=2))
        report = runner.run(cases)
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.attempts == 3
        assert failure.error_type == "RuntimeError"
        assert "injected fault" in failure.error_message
        assert failure.case.n == 64 and failure.case.seed == 2
        assert report.results == [r for r in plain_results if (r.n, r.seed) != (64, 2)]

    def test_sweep_raises_after_finishing_siblings(self, cases):
        with pytest.raises(SweepError) as excinfo:
            sweep(
                ALGO,
                "kout",
                SIZES,
                SEEDS,
                retries=1,
                progress=lambda event: None,
                on_failure="raise",
                _test_fault_hook=FailCell(n=64, seed=2),
            )
        assert len(excinfo.value.failures) == 1

    def test_on_failure_skip_returns_partial(self, cases, plain_results):
        results = sweep(
            ALGO,
            "kout",
            SIZES,
            SEEDS,
            on_failure="skip",
            _test_fault_hook=FailCell(n=64, seed=2),
        )
        assert results == [r for r in plain_results if (r.n, r.seed) != (64, 2)]


class TestRetries:
    def test_retry_recovers_transient_failure(self, cases, plain_results):
        runner = SweepRunner(retries=2, fault_hook=FailCell(n=64, seed=2, fail_attempts=2))
        report = runner.run(cases)
        assert not report.failures
        assert report.results == plain_results
        assert report.retried == 2

    def test_backoff_is_seed_deterministic_and_bounded(self):
        first = [backoff_delay(7, attempt) for attempt in range(8)]
        second = [backoff_delay(7, attempt) for attempt in range(8)]
        assert first == second
        assert all(0 < delay <= BACKOFF_CAP for delay in first)
        assert first != [backoff_delay(8, attempt) for attempt in range(8)]
        # grows until the cap bites
        assert first[1] > first[0] or first[1] == BACKOFF_CAP


class TestTimeout:
    def test_stalled_cell_times_out_serial(self, cases):
        runner = SweepRunner(
            cell_timeout=0.2, fault_hook=SlowCell(2.0, n=64, seed=2)
        )
        report = runner.run(cases)
        assert len(report.failures) == 1
        assert report.failures[0].error_type == "CellTimeout"

    def test_stalled_cell_times_out_in_worker(self, cases):
        runner = SweepRunner(
            workers=2, cell_timeout=0.2, fault_hook=SlowCell(2.0, n=64, seed=2)
        )
        report = runner.run(cases)
        assert len(report.failures) == 1
        assert report.failures[0].error_type == "CellTimeout"


class TestParallelParity:
    def test_workers_match_serial(self, cases, plain_results):
        report = SweepRunner(workers=2, retries=1).run(cases)
        assert report.results == plain_results


class TestJournal:
    def test_journal_records_manifest_results_complete(self, cases, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        SweepRunner(journal=journal).run(cases)
        records = read_journal(journal)
        assert records[0]["type"] == "manifest"
        assert records[0]["matrix"]["cells"] == len(cases)
        assert records[0]["matrix"]["digest"] == matrix_digest(
            [case_key(case) for case in cases]
        )
        assert [r["type"] for r in records[1:-1]] == ["result"] * len(cases)
        assert records[-1]["type"] == "complete"
        assert records[-1]["completed"] == len(cases)

    def test_failure_is_journaled(self, cases, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        SweepRunner(journal=journal, fault_hook=FailCell(n=64, seed=2)).run(cases)
        _manifest, results, failures = load_journal(journal)
        assert len(results) == len(cases) - 1
        assert len(failures) == 1
        (record,) = failures.values()
        assert record["error"]["type"] == "RuntimeError"
        assert "injected fault" in record["error"]["traceback"]

    def test_existing_journal_without_resume_refuses(self, cases, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        SweepRunner(journal=journal).run(cases)
        with pytest.raises(FileExistsError):
            SweepRunner(journal=journal).run(cases)

    def test_digest_mismatch_refuses_resume(self, cases, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        SweepRunner(journal=journal).run(cases)
        other = build_cases(ALGO, "kout", [128], SEEDS)
        with pytest.raises(ValueError, match="different case matrix"):
            SweepRunner(journal=journal, resume=True).run(other)

    def test_torn_tail_line_is_tolerated(self, cases, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        SweepRunner(journal=journal, fault_hook=FailCell(n=64, seed=2)).run(cases)
        with open(journal, "a") as stream:
            stream.write('{"type": "result", "key": "torn')  # crash mid-append
        report = SweepRunner(journal=journal, resume=True).run(cases)
        assert not report.failures
        assert report.resumed == len(cases) - 1


class TestResume:
    def test_resume_skips_done_cells_and_reruns_failures(
        self, cases, plain_results, tmp_path
    ):
        journal = tmp_path / "sweep.jsonl"
        first = SweepRunner(journal=journal, fault_hook=FailCell(n=64, seed=2)).run(
            cases
        )
        assert len(first.failures) == 1
        # Second run without the injected fault: only the failed cell runs.
        second = SweepRunner(journal=journal, resume=True).run(cases)
        assert second.resumed == len(cases) - 1
        assert not second.failures
        assert second.results == plain_results

    def test_resumed_results_identical_to_uninterrupted(
        self, cases, plain_results, tmp_path
    ):
        # Simulate an interruption by truncating the journal after two
        # result records, then resume.
        journal = tmp_path / "sweep.jsonl"
        SweepRunner(journal=journal).run(cases)
        records = read_journal(journal)
        kept = [records[0]] + [r for r in records if r.get("type") == "result"][:2]
        journal.write_text(
            "".join(json.dumps(record, sort_keys=True) + "\n" for record in kept)
        )
        report = SweepRunner(journal=journal, resume=True).run(cases)
        assert report.resumed == 2
        assert report.results == plain_results

    def test_progress_reports_resumed_cells(self, cases, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        SweepRunner(journal=journal).run(cases)
        events = []
        SweepRunner(journal=journal, resume=True, progress=events.append).run(cases)
        assert len(events) == len(cases)
        assert all(event.status == "resumed" for event in events)
        assert events[-1].completed == len(cases)


class TestProgress:
    def test_one_event_per_cell_with_running_counts(self, cases):
        events = []
        SweepRunner(
            retries=1,
            progress=events.append,
            fault_hook=FailCell(n=64, seed=2),
        ).run(cases)
        assert len(events) == len(cases)
        assert [event.status for event in events].count("failed") == 1
        final = events[-1]
        assert final.completed == len(cases) - 1
        assert final.failed == 1
        assert final.retried == 2  # the failing cell burned both attempts
        assert final.total == len(cases)
        assert "FAILED" in next(e for e in events if e.status == "failed").format()


class TestSweepThreading:
    def test_plain_kwargs_use_plain_path(self, plain_results):
        # No robust option: sweep must not require sweeprun at all and
        # stay byte-identical to the historical behaviour.
        assert sweep(ALGO, "kout", SIZES, SEEDS) == plain_results

    def test_progress_alone_engages_robust_path(self, plain_results):
        events = []
        results = sweep(ALGO, "kout", SIZES, SEEDS, progress=events.append)
        assert results == plain_results
        assert len(events) == len(plain_results)

    def test_sweep_options_round_trip(self, tmp_path):
        options = SweepOptions(workers=3, retries=2, cell_timeout=1.5)
        kwargs = options.sweep_kwargs()
        assert kwargs["workers"] == 3
        assert kwargs["retries"] == 2
        assert kwargs["cell_timeout"] == 1.5

    def test_for_stage_forks_the_journal(self, tmp_path):
        options = SweepOptions(journal=tmp_path / "exp.jsonl")
        staged = options.for_stage("kout")
        assert staged.journal.name == "exp.kout.jsonl"
        assert options.for_stage("path").journal.name == "exp.path.jsonl"
        assert SweepOptions().for_stage("kout").journal is None
