"""Unit tests for table/figure rendering."""

from __future__ import annotations

import pytest

from repro.bench.tables import ExperimentReport, Figure, Table


class TestTable:
    def test_render_aligns_columns(self):
        table = Table("demo", ["name", "value"])
        table.add_row("alpha", 12)
        table.add_row("b", 3.5)
        text = table.render()
        assert "== demo ==" in text
        lines = text.splitlines()
        header_index = next(i for i, ln in enumerate(lines) if "name" in ln)
        assert set(lines[header_index + 1]) <= {"-", " "}

    def test_row_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_cell_formatting(self):
        table = Table("demo", ["x"])
        table.add_row(True)
        table.add_row(1234567)
        table.add_row(3.14159)
        cells = table.column("x")
        assert cells[0] == "yes"
        assert cells[1] == "1,234,567"
        assert cells[2] == "3.14"

    def test_csv_export(self):
        table = Table("demo", ["a", "b"])
        table.add_row(1, 2)
        csv = table.to_csv()
        assert csv.splitlines() == ["a,b", "1,2"]

    def test_rows_returns_copies(self):
        table = Table("demo", ["a"])
        table.add_row(1)
        table.rows[0][0] = "tampered"
        assert table.column("a") == ["1"]


class TestFigure:
    def test_series_length_checked(self):
        figure = Figure("f", "n", [1, 2, 3])
        with pytest.raises(ValueError):
            figure.add_series("bad", [1.0])

    def test_render_contains_all_series(self):
        figure = Figure("f", "n", [1, 2])
        figure.add_series("a", [1.0, 2.0])
        figure.add_series("b", [3.0, 4.0])
        text = figure.render()
        assert "a" in text and "b" in text and "== f ==" in text


class TestExperimentReport:
    def test_render_combines_artifacts_and_notes(self):
        report = ExperimentReport("T9", "demo experiment")
        table = Table("t", ["x"])
        table.add_row(1)
        report.add(table)
        report.note("something observed")
        text = report.render()
        assert "T9: demo experiment" in text
        assert "== t ==" in text
        assert "note: something observed" in text
