"""Unit tests for the record-and-replay benchmark kernels."""

from __future__ import annotations

import pytest

from repro.algorithms.registry import get_algorithm
from repro.bench.replay import RecordedRun, record_run, replay_engine
from repro.graphs import make_topology
from repro.sim import BACKENDS, vector_available


@pytest.fixture(scope="module")
def recorded() -> RecordedRun:
    graph = make_topology("kout", 24, seed=3, k=3)
    spec = get_algorithm("namedropper")
    return record_run(
        graph,
        spec.node_factory(),
        seed=11,
        snapshot_rounds=(2, 4),
        max_rounds=spec.round_cap(24),
    )


class TestRecordRun:
    def test_recording_completes_and_snapshots(self, recorded):
        assert recorded.result.completed
        assert recorded.rounds > 4
        assert set(recorded.snapshots) == {2, 4}
        assert recorded.schedule  # at least one non-empty outbox

    def test_window_validates_bounds(self, recorded):
        assert recorded.window(1) == recorded.rounds
        assert recorded.window(3) == recorded.rounds - 2
        with pytest.raises(ValueError):
            recorded.window(0)
        with pytest.raises(ValueError):
            recorded.window(recorded.rounds + 1)

    def test_window_requires_snapshot(self, recorded):
        # Round 4 start needs a snapshot at round 3, which was not taken.
        with pytest.raises(ValueError, match="no knowledge snapshot"):
            recorded.window(4)


class TestReplay:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_full_replay_reproduces_the_run(self, recorded, backend):
        if backend == "vector" and not vector_available():
            pytest.skip("numpy unavailable")
        engine = replay_engine(recorded, backend=backend, force=True)
        for _ in range(recorded.rounds):
            engine.step()
        assert engine.is_strongly_complete()
        assert engine.round_no == recorded.result.rounds
        assert engine.metrics.total_messages == recorded.result.messages
        assert engine.metrics.total_pointers == recorded.result.pointers

    def test_partial_replay_matches_full_tail(self, recorded):
        start = 5
        legacy = replay_engine(recorded, start_round=start, backend="legacy")
        fast = replay_engine(
            recorded, start_round=start, backend="fast", force=True
        )
        for _ in range(recorded.window(start)):
            legacy.step()
            fast.step()
        assert dict(legacy.knowledge) == dict(fast.knowledge)
        assert legacy.is_strongly_complete() and fast.is_strongly_complete()
        # The tail's traffic is the recorded total minus the skipped rounds.
        skipped = sum(
            stats.pointers
            for stats in recorded.result.round_stats[: start - 1]
        )
        expected = recorded.result.pointers - skipped
        assert legacy.metrics.total_pointers == expected
        assert fast.metrics.total_pointers == expected


class TestBackendRefusal:
    """Recordings carry their backend; cross-backend replay needs force."""

    def test_recording_captures_backend(self, recorded):
        assert recorded.backend == "legacy"

    def test_same_backend_replays_without_force(self, recorded):
        engine = replay_engine(recorded, backend="legacy")
        assert engine.backend == "legacy"

    @pytest.mark.parametrize("backend", ["fast", "vector"])
    def test_cross_backend_refused_without_force(self, recorded, backend):
        with pytest.raises(ValueError, match="force"):
            replay_engine(recorded, backend=backend)

    def test_fast_path_alias_is_also_refused(self, recorded):
        # The boolean alias resolves to "fast" and hits the same check.
        with pytest.raises(ValueError, match="force"):
            replay_engine(recorded, fast_path=True)

    def test_force_allows_cross_backend(self, recorded):
        engine = replay_engine(recorded, backend="fast", force=True)
        assert engine.backend == "fast"
