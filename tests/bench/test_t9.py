"""T9 load-realism experiment: shape, journaling, and resume."""

from __future__ import annotations

from repro.bench.experiments import get_experiment
from repro.bench.seeds import Scale
from repro.bench.store import load_journal
from repro.bench.sweeprun import SweepOptions

TINY = Scale(
    name="tiny",
    seeds=(11,),
    sweep_sizes=(24,),
    focus_n=48,
    big_n=48,
)


class TestT9:
    def test_tables_cover_all_stages(self):
        report = get_experiment("T9").run(TINY)
        titles = [artifact.title for artifact in report.artifacts]
        assert any("T9a" in title for title in titles)
        assert any("T9b" in title for title in titles)
        assert any("T9c" in title for title in titles)
        assert any("T9d" in title for title in titles)
        assert set(report.summary) == {"zipf", "flash", "failures", "dynamic"}
        # completion rates are fractions
        for rates in report.summary["failures"].values():
            assert 0.0 <= rates["correlated_rate"] <= 1.0
            assert 0.0 <= rates["random_rate"] <= 1.0

    def test_journal_then_resume_reproduces_report(self, tmp_path):
        journal = tmp_path / "t9.jsonl"
        options = SweepOptions(journal=journal)
        first = get_experiment("T9").run(TINY, options)
        staged = sorted(path.name for path in tmp_path.iterdir())
        assert staged == [
            "t9.t9a.jsonl",
            "t9.t9b.jsonl",
            "t9.t9c.jsonl",
            "t9.t9d.jsonl",
        ]
        manifest, results, failures = load_journal(tmp_path / "t9.t9a.jsonl")
        assert manifest["experiment"] == "T9"
        assert results and not failures
        resumed = get_experiment("T9").run(
            TINY, SweepOptions(journal=journal, resume=True)
        )
        assert resumed.render() == first.render()

    def test_resume_fills_a_truncated_journal(self, tmp_path):
        journal = tmp_path / "t9.jsonl"
        get_experiment("T9").run(TINY, SweepOptions(journal=journal))
        # Drop the last recorded cell; resume must recompute only it.
        staged = tmp_path / "t9.t9a.jsonl"
        lines = staged.read_text().splitlines()
        staged.write_text("\n".join(lines[:-1]) + "\n")
        before = len(load_journal(staged)[1])
        resumed = get_experiment("T9").run(
            TINY, SweepOptions(journal=journal, resume=True)
        )
        after = len(load_journal(staged)[1])
        assert after == before + 1
        assert resumed.artifacts
