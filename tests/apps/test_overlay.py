"""Unit and integration tests for overlay construction."""

from __future__ import annotations


import pytest

from repro.apps.overlay import (
    broadcast_tree,
    expected_tree_depth,
    form_ring,
    ring_successors,
    tree_depth,
    verify_ring,
)
from repro.graphs import make_topology


class TestRingSuccessors:
    def test_sorted_ring(self):
        successors = ring_successors([30, 10, 20])
        assert successors == {10: 20, 20: 30, 30: 10}

    def test_single_peer_self_loop(self):
        assert ring_successors([5]) == {5: 5}

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            ring_successors([1, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ring_successors([])


class TestVerifyRing:
    def test_valid_ring(self):
        assert verify_ring(ring_successors(list(range(10))))

    def test_two_cycles_rejected(self):
        assert not verify_ring({1: 2, 2: 1, 3: 4, 4: 3})

    def test_missing_key_rejected(self):
        assert not verify_ring({1: 2, 2: 3})

    def test_empty_rejected(self):
        assert not verify_ring({})


class TestBroadcastTree:
    def test_binary_tree_shape(self):
        children = broadcast_tree(list(range(7)), arity=2)
        assert children[0] == [1, 2]
        assert children[1] == [3, 4]
        assert children[2] == [5, 6]
        assert tree_depth(children, 0) == 2

    def test_every_peer_has_one_parent(self):
        roster = list(range(20))
        children = broadcast_tree(roster, arity=3)
        seen = [child for kids in children.values() for child in kids]
        assert sorted(seen) == sorted(set(seen))
        assert len(seen) == 19  # all but the root

    def test_custom_root(self):
        children = broadcast_tree([1, 2, 3, 4], root=3)
        assert tree_depth(children, 3) >= 1
        assert 3 not in [c for kids in children.values() for c in kids]

    def test_root_must_be_member(self):
        with pytest.raises(ValueError):
            broadcast_tree([1, 2], root=9)

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            broadcast_tree([1, 2], arity=0)

    def test_depth_matches_closed_form(self):
        for n in (1, 2, 7, 31, 100):
            roster = list(range(n))
            children = broadcast_tree(roster, arity=2)
            assert tree_depth(children, 0) == expected_tree_depth(n, arity=2)

    def test_cycle_detection_in_depth(self):
        with pytest.raises(ValueError):
            tree_depth({1: [2], 2: [1]}, 1)

    def test_unary_tree_is_a_chain(self):
        assert expected_tree_depth(5, arity=1) == 4


class TestFormRing:
    def test_end_to_end(self):
        graph = make_topology("kout", 96, seed=8, k=3)
        result = form_ring(graph, seed=8)
        assert result.n == 96
        assert verify_ring(result.successors)
        assert result.discovery.completed
        assert result.coordinator in graph.node_ids

    def test_cost_accounting(self):
        graph = make_topology("kout", 64, seed=8, k=3)
        result = form_ring(graph, seed=8)
        assert result.distribution_pointers == 63
        assert result.naive_broadcast_pointers == 64 * 63
        # Weak discovery avoided the quadratic pointer bill.
        assert result.discovery.pointers < result.naive_broadcast_pointers

    def test_random_id_space(self):
        graph = make_topology("kout", 48, seed=9, k=3, id_space="random")
        result = form_ring(graph, seed=9)
        assert verify_ring(result.successors)

    def test_round_cap_error(self):
        graph = make_topology("path", 64)
        with pytest.raises(RuntimeError):
            form_ring(graph, seed=1, max_rounds=2)
