"""Apps under every delivery model: equivalence and robustness.

Two claims, parametrized over the five shipped delivery families:

* **Degenerate equivalence** — a model configured to add no asynchrony
  (zero jitter, zero adversarial slack, zero per-link spread, a
  partition window the run never reaches) must reproduce the lockstep
  result of :func:`~repro.apps.census.leader_census` and
  :func:`~repro.apps.overlay.form_ring` exactly: same coordinator, same
  census, same successors.
* **Hostile completion** — under genuinely adverse configurations every
  family still completes within a generous round budget and yields an
  internally valid structure (full-fleet census; successor map that is
  one sorted ring).
"""

from __future__ import annotations

import pytest

from repro.apps.census import discovery_params, leader_census
from repro.apps.overlay import form_ring, verify_ring
from repro.graphs.generators import make_topology
from repro.sim.transport import parse_delivery

N = 24
SEED = 5

#: Specs that add no asynchrony: results must be bit-equal to lockstep.
DEGENERATE_SPECS = ["lockstep", "jitter:0", "adversarial:0", "perlink:0",
                    "partition:900-999"]

#: Genuinely adverse configurations of each family.
HOSTILE_SPECS = ["jitter:2", "adversarial:2", "perlink:2", "partition:3-6"]

ALGORITHMS = ["sublog", "namedropper"]


def _graph():
    return make_topology("kout", N, seed=SEED, k=3)


def _generous_cap(algorithm: str) -> int:
    from repro.algorithms.registry import get_algorithm

    # Hostile models stretch rounds by up to the delay bound; give 4x.
    return 4 * get_algorithm(algorithm).round_cap(N)


class TestDegenerateEquivalence:
    @pytest.mark.parametrize("spec", DEGENERATE_SPECS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_census_matches_lockstep(self, spec, algorithm):
        baseline = leader_census(_graph(), seed=SEED, algorithm=algorithm)
        under_model = leader_census(
            _graph(), seed=SEED, algorithm=algorithm, delivery=spec,
            max_rounds=_generous_cap(algorithm),
        )
        assert under_model.coordinator == baseline.coordinator
        assert under_model.count == baseline.count == N
        assert under_model.min_id == baseline.min_id
        assert under_model.max_id == baseline.max_id
        assert under_model.sample == baseline.sample

    @pytest.mark.parametrize("spec", DEGENERATE_SPECS)
    def test_ring_matches_lockstep(self, spec):
        baseline = form_ring(_graph(), seed=SEED)
        under_model = form_ring(_graph(), seed=SEED, delivery=spec)
        assert under_model.coordinator == baseline.coordinator
        assert dict(under_model.successors) == dict(baseline.successors)


class TestHostileCompletion:
    @pytest.mark.parametrize("spec", HOSTILE_SPECS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_census_completes_and_counts_everyone(self, spec, algorithm):
        census = leader_census(
            _graph(), seed=SEED, algorithm=algorithm, delivery=spec,
            max_rounds=_generous_cap(algorithm),
        )
        assert census.count == N
        assert census.min_id == 0 and census.max_id == N - 1
        assert census.elected_leader == 0

    @pytest.mark.parametrize("spec", HOSTILE_SPECS)
    def test_ring_completes_and_is_one_cycle(self, spec):
        ring = form_ring(
            _graph(), seed=SEED, delivery=spec, max_rounds=_generous_cap("sublog")
        )
        assert ring.n == N
        assert verify_ring(ring.successors)


class TestDiscoveryParams:
    def test_all_specs_parse(self):
        for spec in DEGENERATE_SPECS + HOSTILE_SPECS:
            parse_delivery(spec)

    def test_sublog_gets_resilience_only_under_hostile_delivery(self):
        assert "resilient" not in discovery_params("sublog", None)
        assert "resilient" not in discovery_params("sublog", "lockstep")
        assert discovery_params("sublog", "jitter:2")["resilient"] is True
        assert discovery_params("namedropper", "jitter:2") == {}
