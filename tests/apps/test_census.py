"""Unit and integration tests for the census application."""

from __future__ import annotations

import pytest

from repro.apps.census import leader_census
from repro.graphs import make_topology


class TestLeaderCensus:
    def test_counts_the_fleet(self):
        graph = make_topology("kout", 80, seed=3, k=3)
        census = leader_census(graph, seed=3)
        assert census.count == 80
        assert census.min_id == min(graph.node_ids)
        assert census.max_id == max(graph.node_ids)

    def test_election_rule(self):
        graph = make_topology("kout", 40, seed=4, k=3, id_space="random")
        census = leader_census(graph, seed=4)
        assert census.elected_leader == min(graph.node_ids)

    def test_sample_is_valid_and_deterministic(self):
        graph = make_topology("kout", 60, seed=5, k=3)
        first = leader_census(graph, seed=5, sample_size=7)
        second = leader_census(graph, seed=5, sample_size=7)
        assert first.sample == second.sample
        assert len(first.sample) == 7
        assert set(first.sample) <= set(graph.node_ids)

    def test_sample_capped_at_fleet_size(self):
        graph = make_topology("path", 4)
        census = leader_census(graph, seed=1, sample_size=100)
        assert len(census.sample) == 4

    def test_sample_size_validation(self):
        graph = make_topology("path", 4)
        with pytest.raises(ValueError):
            leader_census(graph, sample_size=-1)

    def test_weak_cost_is_subquadratic(self):
        graph = make_topology("kout", 128, seed=6, k=3)
        census = leader_census(graph, seed=6)
        assert census.discovery.pointers < 128 * 127 / 2

    def test_round_cap_error(self):
        graph = make_topology("path", 64)
        with pytest.raises(RuntimeError):
            leader_census(graph, seed=1, max_rounds=2)
