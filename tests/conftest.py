"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs import KnowledgeGraph, make_topology


@pytest.fixture
def tiny_path() -> KnowledgeGraph:
    """A 5-node directed path 0->1->2->3->4."""
    return make_topology("path", 5)


@pytest.fixture
def small_kout() -> KnowledgeGraph:
    """A 32-node random 3-out graph (seeded)."""
    return make_topology("kout", 32, seed=42, k=3)


@pytest.fixture
def medium_kout() -> KnowledgeGraph:
    """A 128-node random 3-out graph (seeded)."""
    return make_topology("kout", 128, seed=7, k=3)


@pytest.fixture
def star_graph() -> KnowledgeGraph:
    """A 16-node registration star (leaves know the hub)."""
    return make_topology("star_in", 16)
