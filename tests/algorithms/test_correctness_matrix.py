"""Integration matrix: every algorithm completes strong discovery on every
topology, under both identifier namespaces, with legality enforcement on.

This is the suite's central correctness statement: the shipped protocols
solve the resource-discovery problem on arbitrary weakly connected inputs
within the communication model (a violation raises), not just on the
benchmark workloads.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.invariants import verify_view_consistency
from repro.graphs import make_topology
from repro.sim import SynchronousEngine

ALGORITHMS = sorted(repro.algorithm_names())
TOPOLOGIES = (
    "path",
    "bipath",
    "cycle",
    "star_in",
    "star_out",
    "tree",
    "grid",
    "hypercube",
    "lollipop",
    "kout",
    "gnp",
    "prefattach",
    "clustered",
    "smallworld",
    "complete",
)

N = 40
SEED = 17


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_strong_discovery_dense_ids(algorithm: str, topology: str):
    graph = make_topology(topology, N, seed=SEED)
    result = repro.discover(graph, algorithm=algorithm, seed=SEED)
    assert result.completed, f"{algorithm} failed on {topology}"


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("topology", ("path", "star_in", "kout", "clustered"))
def test_strong_discovery_random_ids(algorithm: str, topology: str):
    graph = make_topology(topology, N, seed=SEED, id_space="random")
    result = repro.discover(graph, algorithm=algorithm, seed=SEED)
    assert result.completed, f"{algorithm} failed on {topology} with random ids"


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_node_views_match_ground_truth(algorithm: str):
    graph = make_topology("kout", 32, seed=3, k=3)
    spec = repro.get_algorithm(algorithm)
    engine = SynchronousEngine(
        graph, spec.node_factory(), seed=3, algorithm_name=algorithm
    )
    result = engine.run(max_rounds=spec.round_cap(32))
    assert result.completed
    assert verify_view_consistency(engine) is None


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_runs_are_deterministic(algorithm: str):
    graph = make_topology("kout", 32, seed=6, k=3)

    def signature(seed: int):
        result = repro.discover(graph, algorithm=algorithm, seed=seed)
        return (result.rounds, result.messages, result.pointers)

    assert signature(5) == signature(5)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("n", (1, 2, 3))
def test_tiny_graphs(algorithm: str, n: int):
    graph = make_topology("path", n)
    result = repro.discover(graph, algorithm=algorithm, seed=1)
    assert result.completed
    if n == 1:
        assert result.rounds == 0
