"""Behavioral tests for the Chord-style finger-table baseline."""

from __future__ import annotations

import pytest

import repro
from repro.algorithms.chord_discover import ChordDiscoverNode
from repro.graphs import make_topology
from repro.graphs.idspace import RING_MODULUS


class PoisonedRandom:
    """Fails the test the moment any RNG method is touched."""

    def __getattr__(self, name):  # pragma: no cover - reaching here IS the bug
        raise AssertionError(f"chord_discover consulted the RNG ({name})")


def make_node(node_id: int, known) -> ChordDiscoverNode:
    node = ChordDiscoverNode(node_id)
    node.bind(known, PoisonedRandom())
    return node


class TestCompletion:
    @pytest.mark.parametrize("topo", ("path", "kout", "star_in", "tree", "cycle"))
    def test_completes_everywhere(self, topo: str):
        graph = make_topology(topo, 64, seed=5)
        result = repro.discover(graph, algorithm="chord_discover", seed=5)
        assert result.completed

    def test_seed_independent_trace(self):
        graph = make_topology("kout", 48, seed=3)
        first = repro.discover(graph, algorithm="chord_discover", seed=0)
        second = repro.discover(graph, algorithm="chord_discover", seed=991)
        assert first.rounds == second.rounds
        assert first.messages == second.messages
        assert first.pointers == second.pointers


class TestFingerTable:
    def test_small_ring_fingers(self):
        # Node 0 knowing {10, 100, 1000}: targets 1,2,4,8 -> 10;
        # 16..64 -> 100; 128..512 -> 1000; >= 1024 wrap to 10.
        node = make_node(0, {10, 100, 1000})
        assert node.finger_table() == (10, 100, 1000)

    def test_wraparound_past_zero(self):
        top = RING_MODULUS - 2
        node = make_node(top, {top, 5})
        # Every target from top+1 wraps clockwise past 0 onto 5.
        assert node.finger_table() == (5,)

    def test_empty_ring_has_no_fingers(self):
        assert make_node(7, set()).finger_table() == ()

    def test_cache_invalidated_through_learn(self):
        node = make_node(0, {1 << 20})
        assert node.finger_table() == (1 << 20,)
        node.learn({1 << 4, 1 << 40})
        # A closer machine per band must displace the old sole finger.
        assert node.finger_table() == (1 << 4, 1 << 20, 1 << 40)


class TestLinkMaintenance:
    def test_greets_first_time_fingers_with_snapshot(self):
        node = make_node(0, {8, 64})
        outbox = node.run_round(1, [])
        assert {m.recipient for m in outbox} == {8, 64}
        assert all(m.kind == "chord" and set(m.ids) == {8, 64} for m in outbox)

    def test_quiescent_when_nothing_new(self):
        node = make_node(0, {8, 64})
        node.run_round(1, [])
        assert node.run_round(2, []) == []

    def test_displaced_fingers_keep_receiving_deltas(self):
        node = make_node(0, {1 << 20})
        node.run_round(1, [])  # greet the sole finger
        node.learn({1 << 4})  # displaces 1<<20 for the low bands
        outbox = node.run_round(2, [])
        by_recipient = {m.recipient: m for m in outbox}
        # The new finger is greeted with the full snapshot; the displaced
        # one is a link forever and still receives the delta.
        assert set(by_recipient) == {1 << 4, 1 << 20}
        assert set(by_recipient[1 << 4].ids) == {1 << 4, 1 << 20}
        assert set(by_recipient[1 << 20].ids) == {1 << 4}

    def test_fresh_finger_receives_exactly_one_message(self):
        node = make_node(0, {1 << 20})
        node.run_round(1, [])
        node.learn({1 << 30})
        outbox = node.run_round(2, [])
        # 1<<30 becomes a finger the round it is learned: it must get the
        # greeting snapshot and nothing else — no redundant delta echoing
        # its own id back at it.
        recipients = [m.recipient for m in outbox]
        assert recipients.count(1 << 30) == 1
        assert recipients.count(1 << 20) == 1  # the delta push
