"""Behavioral tests for the deterministic message-optimal baseline."""

from __future__ import annotations

import pytest

import repro
from repro.algorithms.det_optimal import DetOptimalNode
from repro.graphs import make_topology
from repro.sim.messages import Message


class PoisonedRandom:
    """Fails the test the moment any RNG method is touched."""

    def __getattr__(self, name):  # pragma: no cover - reaching here IS the bug
        raise AssertionError(f"det_optimal consulted the RNG ({name})")


def make_node(node_id: int, known) -> DetOptimalNode:
    node = DetOptimalNode(node_id)
    node.bind(known, PoisonedRandom())
    return node


def deliver(node: DetOptimalNode, message: Message):
    """End-of-round acceptance: absorb, then act on it next round."""
    node.absorb(message)
    return message


class TestCompletion:
    @pytest.mark.parametrize("topo", ("path", "kout", "star_in", "tree", "cycle"))
    def test_completes_everywhere(self, topo: str):
        graph = make_topology(topo, 64, seed=5)
        result = repro.discover(graph, algorithm="det_optimal", seed=5)
        assert result.completed

    def test_seed_independent_trace(self):
        # No coin flips anywhere: the engine seed must be irrelevant to
        # the entire execution, not just the final digest.
        graph = make_topology("kout", 48, seed=3)
        first = repro.discover(graph, algorithm="det_optimal", seed=0)
        second = repro.discover(graph, algorithm="det_optimal", seed=991)
        assert first.rounds == second.rounds
        assert first.messages == second.messages
        assert first.pointers == second.pointers
        assert first.messages_by_kind == second.messages_by_kind


class TestMemberBehavior:
    def test_reports_pending_then_goes_silent(self):
        node = make_node(5, {2, 5, 7})
        (report,) = node.run_round(1, [])
        assert report.kind == "report"
        assert report.recipient == 2
        assert set(report.ids) == {7}
        assert node.run_round(2, []) == []

    def test_root_change_resets_and_reannounces(self):
        node = make_node(5, {2, 5, 7})
        node.run_round(1, [])
        node.learn({1})  # a smaller root appears
        (report,) = node.run_round(2, [])
        assert report.recipient == 1
        # Everything must be re-reported to the new root, old root included.
        assert set(report.ids) == {2, 7}

    def test_publish_from_current_root_suppresses_echo(self):
        node = make_node(5, {2, 5})
        node.run_round(1, [])  # announce to root 2
        wave = deliver(node, Message("publish", sender=2, recipient=5, ids=(7, 8)))
        # 7 and 8 arrived *from* the root: nothing to report back.
        assert node.run_round(2, [wave]) == []

    def test_stale_root_is_redirected_exactly_once(self):
        node = make_node(5, {2, 5})
        node.run_round(1, [])
        solicit = deliver(node, Message("publish", sender=9, recipient=5, ids=()))
        outbox = node.run_round(2, [solicit])
        redirects = [m for m in outbox if m.recipient == 9]
        assert len(redirects) == 1
        assert redirects[0].kind == "report"
        assert set(redirects[0].ids) == {2}
        again = deliver(node, Message("publish", sender=9, recipient=5, ids=()))
        assert [m for m in node.run_round(3, [again]) if m.recipient == 9] == []

    def test_member_role_is_permanent(self):
        # Once min(known) < self, no later round may behave root-like.
        node = make_node(5, {3, 5})
        for round_no in range(1, 6):
            node.learn({10 + round_no})  # keep knowledge growing
            for message in node.run_round(round_no, []):
                assert message.kind == "report"
                assert message.recipient == 3


class TestRootBehavior:
    def test_solicits_with_empty_publish_then_waves_on_stability(self):
        node = make_node(1, {1, 3, 4})
        first = node.run_round(1, [])
        # Knowledge grew since bind (size 0 -> 3): solicits only, no wave.
        assert {(m.recipient, m.kind) for m in first} == {(3, "publish"), (4, "publish")}
        assert all(not m.ids for m in first)
        second = node.run_round(2, [])
        # Stable now: one full-snapshot wave to every known machine.
        assert {m.recipient for m in second} == {3, 4}
        assert all(set(m.ids) == {3, 4} for m in second)
        assert node.run_round(3, []) == []  # quiescent

    def test_first_wave_carries_full_snapshot_later_waves_delta_only(self):
        node = make_node(1, {1, 3, 4})
        node.run_round(1, [])
        node.run_round(2, [])  # first wave to 3 and 4
        report = deliver(node, Message("report", sender=6, recipient=1, ids=()))
        node.run_round(3, [report])  # announcer recorded; growth gates the wave
        wave = {m.recipient: m for m in node.run_round(4, [])}
        # 6 was learned after the first wave, so its first wave is the
        # full snapshot; the veterans get only the delta (6 itself).
        assert set(wave) == {3, 4, 6}
        assert set(wave[6].ids) == {3, 4, 6}
        assert set(wave[3].ids) == set(wave[4].ids) == {6}
        node.learn({8})
        node.run_round(5, [])  # growth round: 8 gets solicited, wave gated
        wave = {m.recipient: m for m in node.run_round(6, [])}
        assert set(wave) == {3, 4, 6, 8}
        assert set(wave[8].ids) == {3, 4, 6, 8}  # 8's own first wave
        assert set(wave[3].ids) == set(wave[4].ids) == set(wave[6].ids) == {8}

    def test_announcers_are_never_solicited(self):
        node = make_node(1, {1})
        report = deliver(node, Message("report", sender=6, recipient=1, ids=()))
        outbox = node.run_round(2, [report])
        assert [m for m in outbox if not m.ids and m.recipient == 6] == []
