"""Unit tests for the algorithm registry."""

from __future__ import annotations

import pytest

from repro.algorithms.chord_discover import ChordDiscoverNode
from repro.algorithms.det_optimal import DetOptimalNode
from repro.algorithms.registry import (
    AlgorithmSpec,
    algorithm_names,
    get_algorithm,
    register,
    unregister,
)
from repro.core.sublog import SubLogNode
from repro.sim.node import ProtocolNode

EXPECTED = {
    "flooding",
    "swamping",
    "rpj",
    "namedropper",
    "sublog",
    "sublogcoin",
    "det_optimal",
    "chord_discover",
}


class TestRegistry:
    def test_expected_algorithms_registered(self):
        assert set(algorithm_names()) == EXPECTED

    def test_get_algorithm_round_trip(self):
        for name in algorithm_names():
            spec = get_algorithm(name)
            assert spec.name == name
            assert spec.description

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            get_algorithm("quantum")

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_factories_build_protocol_nodes(self, name: str):
        factory = get_algorithm(name).node_factory()
        node = factory(7)
        assert isinstance(node, ProtocolNode)
        assert node.node_id == 7

    def test_params_are_forwarded(self):
        factory = get_algorithm("sublog").node_factory(spread_limit=2)
        node = factory(1)
        assert isinstance(node, SubLogNode)
        assert node.config.spread_limit == 2

    def test_sublogcoin_defaults_to_coin(self):
        node = get_algorithm("sublogcoin").node_factory()(1)
        assert node.config.contraction == "coin"

    def test_sublog_defaults_to_rank(self):
        node = get_algorithm("sublog").node_factory()(1)
        assert node.config.contraction == "rank"

    def test_new_baselines_build_their_nodes(self):
        assert isinstance(get_algorithm("det_optimal").node_factory()(3), DetOptimalNode)
        assert isinstance(
            get_algorithm("chord_discover").node_factory()(3), ChordDiscoverNode
        )

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_round_caps_are_positive_and_monotone(self, name: str):
        cap = get_algorithm(name).round_cap
        assert cap(16) > 0
        assert cap(4096) >= cap(16)

    def test_bad_param_raises_at_build_time(self):
        with pytest.raises(ValueError):
            get_algorithm("sublog").node_factory(contraction="bogus")
        with pytest.raises(ValueError):
            get_algorithm("namedropper").node_factory(mode="shout")(1)

    def test_hostile_params_registered_for_sublog_family(self):
        for name in ("sublog", "sublogcoin"):
            hostile = get_algorithm(name).hostile_params
            assert hostile.get("resilient") is True
        for name in EXPECTED - {"sublog", "sublogcoin"}:
            assert not get_algorithm(name).hostile_params


class TestDynamicRegistration:
    def _dummy_spec(self, name: str = "dummy_dynamic") -> AlgorithmSpec:
        return AlgorithmSpec(
            name=name,
            description="throwaway registration for tests",
            build=get_algorithm("flooding").build,
            round_cap=lambda n: 4 * n + 64,
        )

    def test_register_and_unregister_round_trip(self):
        spec = self._dummy_spec()
        register(spec)
        try:
            assert "dummy_dynamic" in algorithm_names()
            assert get_algorithm("dummy_dynamic") is spec
        finally:
            unregister("dummy_dynamic")
        assert "dummy_dynamic" not in algorithm_names()

    def test_register_refuses_to_shadow(self):
        with pytest.raises(ValueError, match="already registered"):
            register(self._dummy_spec("flooding"))

    def test_unregister_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            unregister("never_registered")
