"""Unit tests for the algorithm registry."""

from __future__ import annotations

import pytest

from repro.algorithms.registry import algorithm_names, get_algorithm
from repro.core.sublog import SubLogNode
from repro.sim.node import ProtocolNode

EXPECTED = {"flooding", "swamping", "rpj", "namedropper", "sublog", "sublogcoin"}


class TestRegistry:
    def test_expected_algorithms_registered(self):
        assert set(algorithm_names()) == EXPECTED

    def test_get_algorithm_round_trip(self):
        for name in algorithm_names():
            spec = get_algorithm(name)
            assert spec.name == name
            assert spec.description

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            get_algorithm("quantum")

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_factories_build_protocol_nodes(self, name: str):
        factory = get_algorithm(name).node_factory()
        node = factory(7)
        assert isinstance(node, ProtocolNode)
        assert node.node_id == 7

    def test_params_are_forwarded(self):
        factory = get_algorithm("sublog").node_factory(spread_limit=2)
        node = factory(1)
        assert isinstance(node, SubLogNode)
        assert node.config.spread_limit == 2

    def test_sublogcoin_defaults_to_coin(self):
        node = get_algorithm("sublogcoin").node_factory()(1)
        assert node.config.contraction == "coin"

    def test_sublog_defaults_to_rank(self):
        node = get_algorithm("sublog").node_factory()(1)
        assert node.config.contraction == "rank"

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_round_caps_are_positive_and_monotone(self, name: str):
        cap = get_algorithm(name).round_cap
        assert cap(16) > 0
        assert cap(4096) >= cap(16)

    def test_bad_param_raises_at_build_time(self):
        with pytest.raises(ValueError):
            get_algorithm("sublog").node_factory(contraction="bogus")
        with pytest.raises(ValueError):
            get_algorithm("namedropper").node_factory(mode="shout")(1)
