"""Behavioral tests for the swamping baseline."""

from __future__ import annotations

import math

import pytest

import repro
from repro.graphs import make_topology


class TestSwampingRounds:
    @pytest.mark.parametrize("n", (8, 32, 128))
    def test_logarithmic_rounds_on_path(self, n: int):
        graph = make_topology("path", n)
        result = repro.discover(graph, algorithm="swamping")
        assert result.completed
        # Graph squaring: ceil(log2(D)) + small constant.
        assert result.rounds <= math.ceil(math.log2(n)) + 3

    def test_saturates_the_doubling_bound(self):
        # On a path, swamping cannot beat ceil(log2 D) (ball containment);
        # it should land within a couple of rounds of it.
        graph = make_topology("path", 65)
        result = repro.discover(graph, algorithm="swamping")
        assert result.rounds >= math.ceil(math.log2(64))


class TestSwampingVariants:
    def test_delta_variant_same_rounds(self):
        for topo, n in (("kout", 96), ("path", 96), ("star_in", 64)):
            graph = make_topology(topo, n, seed=3)
            classic = repro.discover(graph, algorithm="swamping", full=True)
            delta = repro.discover(graph, algorithm="swamping", full=False)
            assert classic.completed and delta.completed
            assert classic.rounds == delta.rounds, topo

    def test_delta_variant_fewer_pointers(self):
        # The savings show on longer runs, where established peers stop
        # receiving the full set every round (on 3-round expander runs the
        # first-contact greetings dominate and the variants nearly tie).
        graph = make_topology("path", 96)
        classic = repro.discover(graph, algorithm="swamping", full=True)
        delta = repro.discover(graph, algorithm="swamping", full=False)
        assert delta.pointers < 0.7 * classic.pointers

    def test_classic_pointer_complexity_is_superquadratic(self):
        # The reason swamping is unaffordable: pointers blow past n^2.
        graph = make_topology("kout", 64, seed=1, k=3)
        result = repro.discover(graph, algorithm="swamping", full=True)
        assert result.pointers > 64**2

    def test_broadcast_shares_one_snapshot_object(self):
        # Memory contract: all recipients of one round receive the SAME
        # frozenset object (per-recipient copies were an n^3 memory bomb,
        # OOM-observed at n=1024 before the fix).
        import random

        from repro.algorithms.swamping import SwampingNode

        node = SwampingNode(1, full=True)
        node.bind((2, 3, 4, 5), random.Random(0))
        outbox = node.run_round(1, [])
        assert len(outbox) == 4
        first = outbox[0].ids
        assert all(message.ids is first for message in outbox)
