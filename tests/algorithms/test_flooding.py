"""Behavioral tests for the flooding baseline."""

from __future__ import annotations

import repro
from repro.analysis.bounds import lower_bound_rounds
from repro.graphs import make_topology


class TestFloodingRounds:
    def test_completes_in_diameter_rounds_on_bipath(self):
        graph = make_topology("bipath", 17)
        result = repro.discover(graph, algorithm="flooding")
        assert result.completed
        # Information travels one hop per round.  The farthest id starts
        # one hop in (endpoints' ids are already known to their neighbors)
        # so the 16-diameter path completes in ~15 rounds.
        assert 14 <= result.rounds <= 18

    def test_directed_path_needs_reverse_discovery(self):
        graph = make_topology("path", 9)
        result = repro.discover(graph, algorithm="flooding")
        assert result.completed
        # Forward direction: ~D rounds; reverse edges appear in round 1,
        # so backward flow is also ~D.  Either way Θ(D).
        assert 8 <= result.rounds <= 20

    def test_star_completes_fast(self):
        graph = make_topology("star_in", 20)
        result = repro.discover(graph, algorithm="flooding")
        assert result.completed
        assert result.rounds <= 3

    def test_quiesces_no_redundant_sends_at_end(self):
        graph = make_topology("bipath", 8)
        result = repro.discover(graph, algorithm="flooding")
        # The last recorded round should carry far fewer messages than the
        # peak (deltas dry up as knowledge saturates).
        peak = max(s.messages for s in result.round_stats)
        tail = result.round_stats[-1].messages
        assert tail <= peak


class TestFloodingComplexity:
    def test_pointer_complexity_beats_swamping(self):
        graph = make_topology("kout", 64, seed=2, k=3)
        flood = repro.discover(graph, algorithm="flooding")
        swamp = repro.discover(graph, algorithm="swamping")
        assert flood.pointers < swamp.pointers

    def test_rounds_track_lower_bound_shape(self):
        # Flooding is ~D while the bound is log2 D: on a long path the
        # ratio must be large, on a star it must be small.
        long_path = make_topology("bipath", 64)
        star = make_topology("star_in", 64)
        path_result = repro.discover(long_path, algorithm="flooding")
        star_result = repro.discover(star, algorithm="flooding")
        assert path_result.rounds > 8 * lower_bound_rounds(long_path)
        assert star_result.rounds <= 4
