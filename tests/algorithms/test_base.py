"""Unit tests for the DiscoveryNode helpers."""

from __future__ import annotations

import random
from typing import Sequence

from repro.algorithms.base import DiscoveryNode
from repro.sim.messages import Message


class PlainNode(DiscoveryNode):
    def on_round(self, round_no: int, inbox: Sequence[Message], rng) -> None:
        pass


def make_node(knows=(2, 3)) -> PlainNode:
    node = PlainNode(1)
    node.bind(knows, random.Random(0))
    return node


class TestSnapshots:
    def test_snapshot_matches_known(self):
        node = make_node()
        assert node.knowledge_snapshot() == frozenset({1, 2, 3})
        assert node.knowledge_snapshot(include_self=False) == frozenset({2, 3})

    def test_snapshot_is_cached_until_change(self):
        node = make_node()
        first = node.knowledge_snapshot()
        assert node.knowledge_snapshot() is first
        node.absorb(Message(kind="x", sender=9, recipient=1))
        second = node.knowledge_snapshot()
        assert second is not first
        assert 9 in second

    def test_direct_learn_invalidates_snapshot(self):
        # Regression: knowledge taught out-of-band (host-side learn(),
        # not message absorption) must invalidate the cached snapshot.
        # Before the learn() funnel, only absorb() cleared the cache.
        node = make_node()
        first = node.knowledge_snapshot()
        node.learn((7,))
        second = node.knowledge_snapshot()
        assert second is not first
        assert 7 in second
        assert node.unsent_delta() == frozenset({2, 3, 7})

    def test_redundant_learn_keeps_cache(self):
        node = make_node()
        first = node.knowledge_snapshot()
        node.learn((2, 3), sender=2)
        assert node.knowledge_snapshot() is first


class TestDeltas:
    def test_initial_delta_is_initial_knowledge(self):
        node = make_node()
        assert node.unsent_delta() == frozenset({2, 3})

    def test_mark_sent_clears_delta(self):
        node = make_node()
        node.mark_sent()
        assert node.unsent_delta() == frozenset()

    def test_new_learning_reappears_in_delta(self):
        node = make_node()
        node.mark_sent()
        node.absorb(Message(kind="x", sender=5, recipient=1, ids=(6,)))
        assert node.unsent_delta() == frozenset({5, 6})

    def test_delta_never_contains_self(self):
        node = make_node()
        assert 1 not in node.unsent_delta()


class TestRandomPeer:
    def test_none_when_lonely(self):
        node = PlainNode(1)
        node.bind((), random.Random(0))
        assert node.pick_random_peer() is None

    def test_peer_is_known_and_not_self(self):
        node = make_node(knows=(2, 3, 4, 5))
        for _ in range(20):
            peer = node.pick_random_peer()
            assert peer in {2, 3, 4, 5}

    def test_deterministic_given_rng(self):
        a = make_node(knows=tuple(range(2, 30)))
        b = make_node(knows=tuple(range(2, 30)))
        assert [a.pick_random_peer() for _ in range(10)] == [
            b.pick_random_peer() for _ in range(10)
        ]

    def test_insertion_order_does_not_matter(self):
        # Same knowledge assembled in different orders must give the same
        # random choices (the picker sorts before sampling).
        a = PlainNode(1)
        a.bind((2, 3, 4), random.Random(7))
        b = PlainNode(1)
        b.bind((4, 3, 2), random.Random(7))
        assert [a.pick_random_peer() for _ in range(8)] == [
            b.pick_random_peer() for _ in range(8)
        ]
