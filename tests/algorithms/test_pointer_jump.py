"""Behavioral tests for Random Pointer Jump."""

from __future__ import annotations

import repro
from repro.graphs import make_topology


class TestRandomPointerJump:
    def test_completes_on_small_kout(self):
        graph = make_topology("kout", 48, seed=4, k=3)
        result = repro.discover(graph, algorithm="rpj", seed=4)
        assert result.completed

    def test_pull_structure_one_request_per_round(self):
        graph = make_topology("kout", 32, seed=1, k=3)
        result = repro.discover(graph, algorithm="rpj", seed=1)
        # Every live node issues exactly one pull per round.
        assert result.messages_by_kind["pull"] <= 32 * result.rounds
        assert result.messages_by_kind["pull"] >= result.rounds  # at least some

    def test_replies_follow_pulls(self):
        graph = make_topology("kout", 32, seed=1, k=3)
        result = repro.discover(graph, algorithm="rpj", seed=1)
        # Replies are deduplicated per requester, so never exceed pulls.
        assert result.messages_by_kind["reply"] <= result.messages_by_kind["pull"]

    def test_slower_than_namedropper_on_out_star(self):
        # The classic pathology: on a broadcast star the hub pulls from
        # random leaves that know nothing, while the leaves cannot pull
        # (they know nobody until the hub's pull reveals it).
        graph = make_topology("star_out", 64)
        rpj = repro.discover(graph, algorithm="rpj", seed=3)
        namedropper = repro.discover(graph, algorithm="namedropper", seed=3)
        assert namedropper.completed
        assert not rpj.completed or rpj.rounds >= namedropper.rounds

    def test_deterministic_per_seed(self):
        graph = make_topology("kout", 40, seed=2, k=3)
        a = repro.discover(graph, algorithm="rpj", seed=9)
        b = repro.discover(graph, algorithm="rpj", seed=9)
        assert a.rounds == b.rounds
        assert a.messages == b.messages
