"""Behavioral tests for Name-Dropper."""

from __future__ import annotations

import math
import statistics

import pytest

import repro
from repro.graphs import make_topology


class TestNameDropper:
    @pytest.mark.parametrize("topo", ("path", "kout", "star_in", "tree"))
    def test_completes_everywhere(self, topo: str):
        graph = make_topology(topo, 64, seed=5)
        result = repro.discover(graph, algorithm="namedropper", seed=5)
        assert result.completed

    def test_polylog_rounds_on_path(self):
        # HBLL bound: O(log^2 n) whp.  At n=128, log2^2 = 49; the measured
        # median sits far below, but must be well under any linear growth.
        rounds = [
            repro.discover(
                make_topology("path", 128), algorithm="namedropper", seed=seed
            ).rounds
            for seed in range(5)
        ]
        assert statistics.median(rounds) <= math.log2(128) ** 2

    def test_one_push_per_node_per_round(self):
        graph = make_topology("kout", 32, seed=1, k=3)
        result = repro.discover(graph, algorithm="namedropper", seed=1)
        assert result.messages_by_kind["push"] == 32 * result.rounds

    def test_invalid_mode_rejected(self):
        graph = make_topology("kout", 8, seed=1, k=2)
        with pytest.raises(ValueError):
            repro.discover(graph, algorithm="namedropper", mode="broadcast")


class TestPushPull:
    def test_pushpull_completes(self):
        graph = make_topology("kout", 64, seed=2, k=3)
        result = repro.discover(graph, algorithm="namedropper", seed=2, mode="pushpull")
        assert result.completed

    def test_pushpull_not_slower_in_rounds(self):
        # Pull replies can only accelerate spreading.
        rounds_push = []
        rounds_pushpull = []
        for seed in range(4):
            graph = make_topology("kout", 96, seed=seed, k=3)
            rounds_push.append(
                repro.discover(graph, algorithm="namedropper", seed=seed).rounds
            )
            rounds_pushpull.append(
                repro.discover(
                    graph, algorithm="namedropper", seed=seed, mode="pushpull"
                ).rounds
            )
        assert statistics.median(rounds_pushpull) <= statistics.median(rounds_push)

    def test_pushpull_emits_pullbacks(self):
        graph = make_topology("kout", 32, seed=3, k=3)
        result = repro.discover(graph, algorithm="namedropper", seed=3, mode="pushpull")
        assert result.messages_by_kind.get("pullback", 0) > 0
