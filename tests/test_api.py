"""Tests for the top-level public API (`repro.discover` and exports)."""

from __future__ import annotations

import pytest

import repro


class TestDiscover:
    def test_accepts_plain_mapping(self):
        result = repro.discover({0: {1}, 1: {2}, 2: set()}, algorithm="swamping")
        assert result.completed

    def test_accepts_knowledge_graph(self):
        graph = repro.make_topology("kout", 24, seed=1, k=2)
        result = repro.discover(graph)
        assert result.completed
        assert result.algorithm == "sublog"

    def test_default_algorithm_is_the_core_contribution(self):
        result = repro.discover({0: {1}, 1: set()})
        assert result.algorithm == "sublog"

    def test_params_recorded_in_result(self):
        graph = repro.make_topology("kout", 24, seed=1, k=2)
        result = repro.discover(graph, algorithm="sublog", spread_limit=2)
        assert result.params == {"spread_limit": 2}

    def test_max_rounds_override(self):
        graph = repro.make_topology("path", 64)
        result = repro.discover(graph, algorithm="flooding", max_rounds=3)
        assert not result.completed
        assert result.rounds == 3

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            repro.discover({0: set()}, algorithm="teleport")

    def test_convenience_generators_exported(self):
        assert repro.random_k_out(8, seed=1, k=2).n == 8
        assert repro.path(4).n == 4
        assert repro.preferential_attachment(8, seed=1).n == 8

    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
