"""Unit tests for knowledge-graph serialization."""

from __future__ import annotations

import io

import networkx as nx
import pytest

from repro.graphs import make_topology
from repro.graphs.io import (
    from_edge_list,
    from_json,
    from_networkx,
    to_edge_list,
    to_json,
    to_networkx,
)
from repro.graphs.knowledge import KnowledgeGraph


class TestEdgeList:
    def test_round_trip(self):
        graph = make_topology("kout", 24, seed=3, k=3)
        buffer = io.StringIO()
        to_edge_list(graph, buffer)
        buffer.seek(0)
        assert from_edge_list(buffer) == graph

    def test_isolated_out_nodes_survive(self):
        graph = KnowledgeGraph({0: {1}, 1: set()})
        buffer = io.StringIO()
        to_edge_list(graph, buffer)
        buffer.seek(0)
        restored = from_edge_list(buffer)
        assert restored == graph

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            from_edge_list(io.StringIO("1 2 3\n"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            from_edge_list(io.StringIO(""))


class TestJson:
    def test_round_trip(self):
        graph = make_topology("clustered", 20, seed=1, clusters=4)
        assert from_json(to_json(graph)) == graph

    def test_deterministic_output(self):
        graph = make_topology("kout", 16, seed=2, k=2)
        assert to_json(graph) == to_json(graph)

    def test_sparse_ids_round_trip(self):
        graph = make_topology("path", 8, id_space="random", seed=5)
        assert from_json(to_json(graph)) == graph

    def test_bad_payload_rejected(self):
        with pytest.raises(ValueError):
            from_json("[1, 2, 3]")
        with pytest.raises(ValueError):
            from_json('{"nodes": [1], "edges": [[1, 99]]}')


class TestNetworkx:
    def test_round_trip(self):
        graph = make_topology("kout", 24, seed=4, k=3)
        assert from_networkx(to_networkx(graph)) == graph

    def test_structure_preserved(self):
        graph = make_topology("tree", 15)
        digraph = to_networkx(graph)
        assert digraph.number_of_nodes() == 15
        assert digraph.number_of_edges() == graph.edge_count
        # Weak connectivity agrees with networkx's verdict.
        assert nx.is_weakly_connected(digraph) == graph.is_weakly_connected()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            from_networkx(nx.DiGraph())
