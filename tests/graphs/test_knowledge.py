"""Unit tests for the KnowledgeGraph representation."""

from __future__ import annotations

import pytest

from repro.graphs.knowledge import KnowledgeGraph, complete_knowledge


def path_graph(n: int) -> KnowledgeGraph:
    return KnowledgeGraph({i: ({i + 1} if i + 1 < n else set()) for i in range(n)})


class TestConstruction:
    def test_basic_accessors(self):
        graph = KnowledgeGraph({1: {2}, 2: {3}, 3: set()})
        assert graph.node_ids == (1, 2, 3)
        assert graph.n == 3
        assert graph.edge_count == 2
        assert graph.out(1) == frozenset({2})
        assert 2 in graph
        assert len(graph) == 3
        assert list(graph) == [1, 2, 3]

    def test_self_loops_are_dropped(self):
        graph = KnowledgeGraph({1: {1, 2}, 2: set()})
        assert graph.out(1) == frozenset({2})
        assert graph.edge_count == 1

    def test_unknown_neighbor_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeGraph({1: {99}})

    def test_equality_and_hash(self):
        a = KnowledgeGraph({1: {2}, 2: set()})
        b = KnowledgeGraph({1: {2}, 2: set()})
        c = KnowledgeGraph({1: set(), 2: {1}})
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_adjacency_returns_copy(self):
        graph = KnowledgeGraph({1: {2}, 2: set()})
        adjacency = graph.adjacency()
        adjacency[1] = frozenset()
        assert graph.out(1) == frozenset({2})


class TestConnectivity:
    def test_path_is_weakly_connected(self):
        assert path_graph(6).is_weakly_connected()

    def test_disconnected_components_found(self):
        graph = KnowledgeGraph({1: {2}, 2: set(), 3: {4}, 4: set()})
        assert not graph.is_weakly_connected()
        components = graph.weak_components()
        assert sorted(sorted(c) for c in components) == [[1, 2], [3, 4]]

    def test_direction_irrelevant_for_weak_connectivity(self):
        graph = KnowledgeGraph({1: set(), 2: {1}, 3: {2}})
        assert graph.is_weakly_connected()


class TestMetric:
    def test_undirected_distances_on_path(self):
        graph = path_graph(5)
        distances = graph.undirected_distances(0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_ball_growth(self):
        graph = path_graph(7)
        assert graph.undirected_ball(3, 0) == frozenset({3})
        assert graph.undirected_ball(3, 1) == frozenset({2, 3, 4})
        assert graph.undirected_ball(3, 10) == frozenset(range(7))
        assert graph.undirected_ball(3, -1) == frozenset()

    def test_eccentricity_and_diameter(self):
        graph = path_graph(5)
        assert graph.eccentricity(0) == 4
        assert graph.eccentricity(2) == 2
        assert graph.undirected_diameter() == 4

    def test_double_sweep_matches_exact_on_path(self):
        graph = path_graph(9)
        assert graph.undirected_diameter(exact=False) == graph.undirected_diameter()

    def test_diameter_rejects_disconnected(self):
        graph = KnowledgeGraph({1: set(), 2: set()})
        with pytest.raises(ValueError):
            graph.undirected_diameter()

    def test_single_node_diameter_zero(self):
        assert KnowledgeGraph({1: set()}).undirected_diameter() == 0


class TestDerived:
    def test_reversed_flips_edges(self):
        graph = KnowledgeGraph({1: {2}, 2: {3}, 3: set()})
        reversed_graph = graph.reversed()
        assert reversed_graph.out(2) == frozenset({1})
        assert reversed_graph.out(1) == frozenset()
        assert reversed_graph.reversed() == graph

    def test_relabeled_preserves_structure(self):
        graph = KnowledgeGraph({0: {1}, 1: {2}, 2: set()})
        relabeled = graph.relabeled({0: 100, 1: 200, 2: 300})
        assert relabeled.out(100) == frozenset({200})
        assert relabeled.undirected_diameter() == graph.undirected_diameter()

    def test_relabeled_requires_bijection(self):
        graph = KnowledgeGraph({0: {1}, 1: set()})
        with pytest.raises(ValueError):
            graph.relabeled({0: 5, 1: 5})
        with pytest.raises(ValueError):
            graph.relabeled({0: 5})

    def test_degree_stats(self):
        graph = KnowledgeGraph({0: {1, 2}, 1: {2}, 2: set()})
        stats = graph.degree_stats()
        assert stats["min"] == 0.0
        assert stats["max"] == 2.0
        assert stats["mean"] == pytest.approx(1.0)

    def test_complete_knowledge(self):
        graph = complete_knowledge([1, 5, 9])
        assert graph.edge_count == 6
        assert graph.out(5) == frozenset({1, 9})
