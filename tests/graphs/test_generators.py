"""Unit tests for topology generators.

Every registered generator must (a) produce a weakly connected graph with
exactly n nodes, (b) be deterministic in its seed, and (c) honor the
id-space option.  Shape-specific structure is checked per generator,
cross-validated against networkx where a reference construction exists.
"""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.graphs.generators import (
    TOPOLOGIES,
    ensure_weakly_connected,
    gnp,
    grid,
    hypercube,
    lollipop,
    make_topology,
    path,
    preferential_attachment,
    random_k_out,
    star_in,
    star_out,
    tree,
)

SIZES = (1, 2, 3, 17, 64)


class TestAllGeneratorsContract:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("n", SIZES)
    def test_connected_and_sized(self, name: str, n: int):
        graph = make_topology(name, n, seed=1)
        assert graph.n == n
        assert graph.is_weakly_connected()

    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_deterministic_in_seed(self, name: str):
        assert make_topology(name, 24, seed=5) == make_topology(name, 24, seed=5)

    @pytest.mark.parametrize("name", ("kout", "gnp", "prefattach", "clustered"))
    def test_seed_changes_randomized_shapes(self, name: str):
        a = make_topology(name, 48, seed=1)
        b = make_topology(name, 48, seed=2)
        assert a != b

    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_random_id_space(self, name: str):
        graph = make_topology(name, 12, seed=3, id_space="random")
        assert graph.n == 12
        assert graph.is_weakly_connected()
        # Random labels are 48-bit; the odds of all twelve landing below
        # 12 are nil, so this catches accidentally ignoring the option.
        assert max(graph.node_ids) > 12

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology("moebius", 8)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            make_topology("path", 0)


class TestShapes:
    def test_path_structure(self):
        graph = path(5)
        assert graph.out(0) == frozenset({1})
        assert graph.out(4) == frozenset()
        assert graph.undirected_diameter() == 4

    def test_cycle_has_uniform_degree(self):
        graph = make_topology("cycle", 8)
        assert all(len(graph.out(v)) == 1 for v in graph.node_ids)
        assert graph.undirected_diameter() == 4

    def test_star_in_leaves_know_hub(self):
        graph = star_in(6)
        assert graph.out(0) == frozenset()
        assert all(graph.out(v) == frozenset({0}) for v in range(1, 6))

    def test_star_out_hub_knows_leaves(self):
        graph = star_out(6)
        assert graph.out(0) == frozenset(range(1, 6))
        assert all(graph.out(v) == frozenset() for v in range(1, 6))

    def test_tree_children_know_parent(self):
        graph = tree(7, arity=2)
        assert graph.out(1) == frozenset({0})
        assert graph.out(2) == frozenset({0})
        assert graph.out(5) == frozenset({2})

    def test_tree_arity_validation(self):
        with pytest.raises(ValueError):
            tree(7, arity=0)

    def test_grid_diameter_is_sqrtish(self):
        graph = grid(64)
        assert graph.undirected_diameter() == 14  # 8x8 grid: (8-1)+(8-1)

    def test_hypercube_matches_networkx_diameter(self):
        graph = hypercube(16)
        reference = nx.hypercube_graph(4)
        assert graph.undirected_diameter() == nx.diameter(reference)

    def test_lollipop_mixes_regimes(self):
        graph = lollipop(20, clique_fraction=0.5)
        # clique of 10 + path of 10: diameter = 1 + 10
        assert graph.undirected_diameter() == 11

    def test_lollipop_fraction_validation(self):
        with pytest.raises(ValueError):
            lollipop(10, clique_fraction=1.5)

    def test_complete_graph(self):
        graph = make_topology("complete", 7)
        assert graph.edge_count == 42


class TestRandomShapes:
    def test_kout_degree(self):
        graph = random_k_out(50, seed=2, k=4)
        # Augmentation may add one edge per component; degrees >= k except
        # for tiny graphs.
        assert all(len(graph.out(v)) >= 4 for v in graph.node_ids)

    def test_kout_validation(self):
        with pytest.raises(ValueError):
            random_k_out(10, k=0)

    def test_kout_low_diameter(self):
        graph = random_k_out(512, seed=1, k=3)
        assert graph.undirected_diameter() <= 3 * math.log2(512)

    def test_gnp_density_scales_with_p(self):
        sparse = gnp(40, seed=1, p=0.05)
        dense = gnp(40, seed=1, p=0.4)
        assert dense.edge_count > sparse.edge_count

    def test_gnp_p_validation(self):
        with pytest.raises(ValueError):
            gnp(10, p=1.5)

    def test_prefattach_has_heavy_tail(self):
        graph = preferential_attachment(300, seed=4, m=2)
        in_degree = {v: 0 for v in graph.node_ids}
        for v in graph.node_ids:
            for u in graph.out(v):
                in_degree[u] += 1
        # A preferential-attachment hub should dwarf the median.
        degrees = sorted(in_degree.values())
        assert degrees[-1] >= 5 * max(1, degrees[len(degrees) // 2])

    def test_prefattach_m_validation(self):
        with pytest.raises(ValueError):
            preferential_attachment(10, m=0)

    def test_clustered_contains_cliques(self):
        graph = make_topology("clustered", 32, seed=1, clusters=4)
        # Nodes 0, 4, 8, ... share cluster 0 and must know each other.
        assert 4 in graph.out(0)
        assert 0 in graph.out(4)


class TestEnsureWeaklyConnected:
    def test_chains_components(self):
        adjacency = {0: {1}, 1: set(), 2: {3}, 3: set(), 4: set()}
        ensure_weakly_connected(adjacency)
        from repro.graphs.knowledge import KnowledgeGraph

        assert KnowledgeGraph(adjacency).is_weakly_connected()

    def test_noop_on_connected(self):
        adjacency = {0: {1}, 1: {2}, 2: set()}
        before = {k: set(v) for k, v in adjacency.items()}
        ensure_weakly_connected(adjacency)
        assert adjacency == before

    def test_deterministic(self):
        a = {0: set(), 1: set(), 2: set()}
        b = {0: set(), 1: set(), 2: set()}
        ensure_weakly_connected(a)
        ensure_weakly_connected(b)
        assert a == b
