"""Unit tests for identifier namespaces."""

from __future__ import annotations

import pytest

from repro.graphs.idspace import (
    RING_BITS,
    RING_MODULUS,
    dense_index,
    densify,
    finger_targets,
    make_id_mapping,
    ring_distance,
    ring_nearest,
    ring_successor,
)


class TestDenseIndex:
    def test_non_contiguous_ids(self):
        ordered, index = dense_index([900, 3, 77, 12])
        assert ordered == (3, 12, 77, 900)
        assert index == {3: 0, 12: 1, 77: 2, 900: 3}

    def test_round_trips_with_densify(self):
        ids = [2**40 + 5, 0, 19, 6]
        ordered, index = dense_index(ids)
        assert index == densify(ids)
        assert all(ordered[bit] == node for node, bit in index.items())

    def test_single_node(self):
        ordered, index = dense_index([42])
        assert ordered == (42,)
        assert index == {42: 0}

    def test_duplicate_ids_raise(self):
        with pytest.raises(ValueError, match=r"duplicate node ids.*\[7\]"):
            dense_index([1, 7, 7, 9])

    def test_duplicates_reported_sorted_and_capped(self):
        ids = [5, 5, 3, 3, 8, 8, 1]
        with pytest.raises(ValueError, match=r"\[3, 5, 8\]"):
            dense_index(ids)

    def test_accepts_mapping_keys(self):
        ordered, index = dense_index({10: "a", 4: "b"})
        assert ordered == (4, 10)
        assert index == {4: 0, 10: 1}


class TestMakeIdMapping:
    def test_dense_is_identity(self):
        mapping = make_id_mapping(5, "dense", seed=0)
        assert mapping == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_random_is_bijective(self):
        mapping = make_id_mapping(100, "random", seed=1)
        assert len(mapping) == 100
        assert len(set(mapping.values())) == 100

    def test_random_labels_are_48_bit(self):
        mapping = make_id_mapping(20, "random", seed=2)
        assert all(0 <= label < 2**48 for label in mapping.values())

    def test_random_is_deterministic(self):
        assert make_id_mapping(30, "random", seed=7) == make_id_mapping(
            30, "random", seed=7
        )

    def test_random_varies_with_seed(self):
        assert make_id_mapping(30, "random", seed=7) != make_id_mapping(
            30, "random", seed=8
        )

    def test_unknown_space_rejected(self):
        with pytest.raises(ValueError):
            make_id_mapping(5, "galactic", seed=0)


class TestDensify:
    def test_inverse_of_sparse_labels(self):
        dense = densify([500, 10, 70])
        assert dense == {10: 0, 70: 1, 500: 2}


class TestRingDistance:
    def test_zero_to_self(self):
        assert ring_distance(123, 123) == 0

    def test_asymmetric_clockwise(self):
        assert ring_distance(10, 13) == 3
        assert ring_distance(13, 10) == RING_MODULUS - 3

    def test_wraparound(self):
        assert ring_distance(RING_MODULUS - 1, 0) == 1
        assert ring_distance(RING_MODULUS - 1, 2) == 3

    def test_out_of_range_inputs_reduce_mod_ring(self):
        assert ring_distance(RING_MODULUS + 4, 6) == 2
        assert ring_distance(0, -1) == RING_MODULUS - 1


class TestRingSuccessor:
    CANDIDATES = (5, 9, 40)

    def test_exact_hit_is_its_own_successor(self):
        assert ring_successor(9, self.CANDIDATES) == 9

    def test_strictly_between(self):
        assert ring_successor(6, self.CANDIDATES) == 9

    def test_wraparound_past_largest(self):
        assert ring_successor(41, self.CANDIDATES) == 5
        assert ring_successor(RING_MODULUS - 1, self.CANDIDATES) == 5

    def test_single_candidate_always_wins(self):
        for target in (0, 7, 8, RING_MODULUS - 1):
            assert ring_successor(target, (7,)) == 7

    def test_empty_candidates_is_none(self):
        assert ring_successor(3, ()) is None

    def test_target_reduced_mod_ring(self):
        assert ring_successor(RING_MODULUS + 6, self.CANDIDATES) == 9


class TestRingNearest:
    def test_prefers_closer_predecessor(self):
        assert ring_nearest(11, (5, 9, 40)) == 9

    def test_prefers_closer_successor(self):
        assert ring_nearest(38, (5, 9, 40)) == 40

    def test_equidistant_tie_breaks_clockwise(self):
        # 7 sits exactly between 5 and 9: the successor must win — the
        # module-wide deterministic tie-break.
        assert ring_nearest(7, (5, 9, 40)) == 9

    def test_wraparound_predecessor(self):
        # Distance from 2 back to the largest candidate crosses zero:
        # RING_MODULUS-1 is 3 away, the successor 6 is 4 away.
        assert ring_nearest(2, (6, RING_MODULUS - 1)) == RING_MODULUS - 1

    def test_single_candidate(self):
        assert ring_nearest(0, (7,)) == 7

    def test_empty_is_none(self):
        assert ring_nearest(3, ()) is None

    def test_exact_hit(self):
        assert ring_nearest(40, (5, 9, 40)) == 40


class TestFingerTargets:
    def test_count_and_spacing(self):
        targets = finger_targets(0)
        assert len(targets) == RING_BITS
        assert targets[:4] == (1, 2, 4, 8)

    def test_wraps_mod_ring(self):
        targets = finger_targets(RING_MODULUS - 1)
        assert targets[0] == 0
        assert targets[1] == 1
        assert all(0 <= target < RING_MODULUS for target in targets)

    def test_custom_bits(self):
        assert finger_targets(10, bits=3) == (11, 12, 14)
