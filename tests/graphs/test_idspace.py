"""Unit tests for identifier namespaces."""

from __future__ import annotations

import pytest

from repro.graphs.idspace import dense_index, densify, make_id_mapping


class TestDenseIndex:
    def test_non_contiguous_ids(self):
        ordered, index = dense_index([900, 3, 77, 12])
        assert ordered == (3, 12, 77, 900)
        assert index == {3: 0, 12: 1, 77: 2, 900: 3}

    def test_round_trips_with_densify(self):
        ids = [2**40 + 5, 0, 19, 6]
        ordered, index = dense_index(ids)
        assert index == densify(ids)
        assert all(ordered[bit] == node for node, bit in index.items())

    def test_single_node(self):
        ordered, index = dense_index([42])
        assert ordered == (42,)
        assert index == {42: 0}

    def test_duplicate_ids_raise(self):
        with pytest.raises(ValueError, match=r"duplicate node ids.*\[7\]"):
            dense_index([1, 7, 7, 9])

    def test_duplicates_reported_sorted_and_capped(self):
        ids = [5, 5, 3, 3, 8, 8, 1]
        with pytest.raises(ValueError, match=r"\[3, 5, 8\]"):
            dense_index(ids)

    def test_accepts_mapping_keys(self):
        ordered, index = dense_index({10: "a", 4: "b"})
        assert ordered == (4, 10)
        assert index == {4: 0, 10: 1}


class TestMakeIdMapping:
    def test_dense_is_identity(self):
        mapping = make_id_mapping(5, "dense", seed=0)
        assert mapping == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_random_is_bijective(self):
        mapping = make_id_mapping(100, "random", seed=1)
        assert len(mapping) == 100
        assert len(set(mapping.values())) == 100

    def test_random_labels_are_48_bit(self):
        mapping = make_id_mapping(20, "random", seed=2)
        assert all(0 <= label < 2**48 for label in mapping.values())

    def test_random_is_deterministic(self):
        assert make_id_mapping(30, "random", seed=7) == make_id_mapping(
            30, "random", seed=7
        )

    def test_random_varies_with_seed(self):
        assert make_id_mapping(30, "random", seed=7) != make_id_mapping(
            30, "random", seed=8
        )

    def test_unknown_space_rejected(self):
        with pytest.raises(ValueError):
            make_id_mapping(5, "galactic", seed=0)


class TestDensify:
    def test_inverse_of_sparse_labels(self):
        dense = densify([500, 10, 70])
        assert dense == {10: 0, 70: 1, 500: 2}
