"""Unit tests for identifier namespaces."""

from __future__ import annotations

import pytest

from repro.graphs.idspace import densify, make_id_mapping


class TestMakeIdMapping:
    def test_dense_is_identity(self):
        mapping = make_id_mapping(5, "dense", seed=0)
        assert mapping == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_random_is_bijective(self):
        mapping = make_id_mapping(100, "random", seed=1)
        assert len(mapping) == 100
        assert len(set(mapping.values())) == 100

    def test_random_labels_are_48_bit(self):
        mapping = make_id_mapping(20, "random", seed=2)
        assert all(0 <= label < 2**48 for label in mapping.values())

    def test_random_is_deterministic(self):
        assert make_id_mapping(30, "random", seed=7) == make_id_mapping(
            30, "random", seed=7
        )

    def test_random_varies_with_seed(self):
        assert make_id_mapping(30, "random", seed=7) != make_id_mapping(
            30, "random", seed=8
        )

    def test_unknown_space_rejected(self):
        with pytest.raises(ValueError):
            make_id_mapping(5, "galactic", seed=0)


class TestDensify:
    def test_inverse_of_sparse_labels(self):
        dense = densify([500, 10, 70])
        assert dense == {10: 0, 70: 1, 500: 2}
