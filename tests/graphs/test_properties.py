"""Unit tests for graph profiling."""

from __future__ import annotations

import pytest

from repro.graphs.generators import make_topology
from repro.graphs.knowledge import KnowledgeGraph
from repro.graphs.properties import knowledge_completeness, profile


class TestProfile:
    def test_path_profile(self):
        result = profile(make_topology("path", 9))
        assert result.n == 9
        assert result.edges == 8
        assert result.weakly_connected
        assert result.diameter == 8
        assert result.min_out_degree == 0
        assert result.max_out_degree == 1

    def test_lower_bound_is_log2_diameter(self):
        result = profile(make_topology("path", 9))
        assert result.discovery_lower_bound == 3  # ceil(log2 8)
        single = profile(KnowledgeGraph({0: set()}))
        assert single.discovery_lower_bound == 0

    def test_disconnected_profile(self):
        result = profile(KnowledgeGraph({0: set(), 1: set()}))
        assert not result.weakly_connected
        assert result.diameter == -1

    def test_estimate_toggle(self):
        graph = make_topology("kout", 64, seed=1, k=3)
        exact = profile(graph, exact_diameter=True)
        estimate = profile(graph, exact_diameter=False)
        assert estimate.diameter <= exact.diameter


class TestKnowledgeCompleteness:
    def test_initial_path_fraction(self):
        knowledge = {0: {0, 1}, 1: {1, 2}, 2: {2}}
        assert knowledge_completeness(knowledge) == pytest.approx(2 / 6)

    def test_complete(self):
        universe = {0, 1, 2}
        knowledge = {v: set(universe) for v in universe}
        assert knowledge_completeness(knowledge) == 1.0

    def test_singleton(self):
        assert knowledge_completeness({0: {0}}) == 1.0
