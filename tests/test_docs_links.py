"""Docs stay internally consistent: every relative link must resolve."""

from __future__ import annotations

import importlib.util
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_docs_links.py"


def _load():
    spec = importlib.util.spec_from_file_location("check_docs_links", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_broken_relative_links_or_anchors():
    checker = _load()
    broken = checker.check()
    assert broken == [], "\n".join(
        f"{source}: {target} ({why})" for source, target, why in broken
    )


def test_slugger_matches_github_rules():
    checker = _load()
    seen = {}
    assert checker.github_slug("Hello, World!", seen) == "hello-world"
    assert checker.github_slug("Hello, World!", seen) == "hello-world-1"
    assert checker.github_slug("`repro sweep` flags", {}) == "repro-sweep-flags"
