"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_list_prints_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sublog" in out
        assert "kout" in out
        assert "T1" in out


class TestRun:
    def test_run_prints_summary(self, capsys):
        code = main(
            ["run", "--algorithm", "sublog", "--topology", "kout", "--n", "48",
             "--seed", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "completed : True" in out
        assert "rounds" in out

    def test_run_with_loss(self, capsys):
        code = main(
            ["run", "--algorithm", "sublog", "--topology", "kout", "--n", "32",
             "--seed", "2", "--loss", "0.05"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "dropped" in out

    def test_run_weak_goal(self, capsys):
        code = main(
            ["run", "--algorithm", "swamping", "--topology", "star_in", "--n", "16",
             "--goal", "weak"]
        )
        assert code == 0
        assert "goal      : weak" in capsys.readouterr().out

    def test_run_random_id_space(self, capsys):
        code = main(
            ["run", "--algorithm", "flooding", "--topology", "path", "--n", "12",
             "--id-space", "random"]
        )
        assert code == 0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "quantum"])

    def test_run_with_delivery_model(self, capsys):
        code = main(
            ["run", "--algorithm", "sublog", "--topology", "kout", "--n", "32",
             "--seed", "2", "--delivery", "adversarial:2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "completed : True" in out
        assert "adversarial:2" in out

    def test_run_partition_prints_drop_breakdown(self, capsys):
        code = main(
            ["run", "--algorithm", "namedropper", "--topology", "kout",
             "--n", "24", "--seed", "3", "--delivery", "partition:2-5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "partition=" in out

    def test_bad_delivery_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["run", "--algorithm", "sublog", "--topology", "kout",
                 "--n", "24", "--delivery", "carrier-pigeon"]
            )


class TestExperiment:
    def test_experiment_writes_report(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        # T4 is the fastest experiment; still guard the runtime by scale.
        code = main(["experiment", "T4", "--scale", "small", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "T4" in out
        assert (tmp_path / "T4.txt").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            main(["experiment", "T42"])


class TestSweep:
    def test_sweep_saves_results(self, capsys, tmp_path):
        out = tmp_path / "sweep.json"
        code = main(
            ["sweep", "--algorithms", "sublog", "--sizes", "24", "--seeds", "1",
             "--out", str(out)]
        )
        assert code == 0
        assert "saved 1 results" in capsys.readouterr().out
        from repro.bench.store import load_metadata, load_results

        assert len(load_results(out)) == 1
        assert load_metadata(out)["topology"] == "kout"

    def test_sweep_with_delivery_records_metadata(self, capsys, tmp_path):
        out = tmp_path / "sweep.json"
        code = main(
            ["sweep", "--algorithms", "namedropper", "--sizes", "16",
             "--seeds", "1", "--delivery", "perlink:2", "--out", str(out)]
        )
        assert code == 0
        from repro.bench.store import load_metadata, load_results

        assert load_metadata(out)["delivery"] == "perlink:2"
        results = load_results(out)
        assert all(set(r.delivery_delays) <= {1, 2, 3} for r in results)


class TestTraceAndSparkline:
    def test_trace_file_written(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["run", "--algorithm", "sublog", "--topology", "kout", "--n", "24",
             "--trace", str(trace)]
        )
        assert code == 0
        assert trace.exists()
        assert trace.read_text().strip()

    def test_sparkline_printed(self, capsys):
        code = main(
            ["run", "--algorithm", "swamping", "--topology", "star_in",
             "--n", "16", "--sparkline"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "converge" in out
        assert "t100=" in out


class TestParser:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestServe:
    def test_serve_verifies_digest_against_sim(self, capsys):
        code = main(
            ["serve", "--n", "6", "--seed", "3", "--algorithm", "namedropper",
             "--verify-digest"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "MATCH" in out
        assert "complete  : True" in out

    def test_serve_exact_rounds_mid_run(self, capsys):
        code = main(
            ["serve", "--n", "6", "--seed", "5", "--rounds", "2",
             "--verify-digest"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "MATCH" in out


class TestLoadgen:
    def test_loadgen_self_hosted(self, capsys):
        code = main(
            ["loadgen", "--n", "6", "--seed", "2", "--requests", "20",
             "--concurrency", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "consistent=True" in out
        assert "valid=True" in out


class TestFuzz:
    def test_fuzz_smoke(self, capsys):
        code = main(["fuzz", "--cases", "6", "--seed", "3", "--max-n", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "case    0" in out
        assert "6 cases, 0 failure(s)" in out

    def test_fuzz_quiet_writes_report(self, capsys, tmp_path):
        path = tmp_path / "fuzz.jsonl"
        code = main(
            ["fuzz", "--cases", "3", "--seed", "4", "--max-n", "8",
             "--quiet", "--no-differential", "--out", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        # Quiet: no per-case lines, just the one-line summary.
        assert out.splitlines()[0].startswith("fuzz:")
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + 3 + 1  # manifest + cases + summary

    def test_fuzz_algorithm_filter(self, capsys):
        code = main(
            ["fuzz", "--cases", "3", "--seed", "5", "--max-n", "8",
             "--algorithms", "flooding", "--quiet", "--no-differential"]
        )
        assert code == 0
        assert "3 cases" in capsys.readouterr().out

    def test_replay_literal_json(self, capsys):
        from repro.oracle import ScheduleScript

        script = ScheduleScript(
            algorithm="flooding", topology="path", n=6, seed=1
        )
        code = main(["fuzz", "--replay", script.to_json()])
        out = capsys.readouterr().out
        assert code == 0
        assert "replaying flooding/path" in out
        assert "clean: completed=True" in out

    def test_replay_from_file(self, capsys, tmp_path):
        from repro.oracle import ScheduleScript

        script = ScheduleScript(
            algorithm="swamping", topology="cycle", n=8, seed=2,
            delivery="jitter:1",
        )
        path = tmp_path / "script.json"
        path.write_text(script.to_json())
        code = main(["fuzz", "--replay", str(path)])
        assert code == 0
        assert "clean" in capsys.readouterr().out
