"""Property-based tests for the graph substrate."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.knowledge import KnowledgeGraph

from ..strategies import weakly_connected_graphs

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(graph=weakly_connected_graphs())
def test_strategy_produces_connected_graphs(graph: KnowledgeGraph):
    assert graph.is_weakly_connected()
    assert graph.n >= 2


@COMMON
@given(graph=weakly_connected_graphs())
def test_balls_are_monotone_in_radius(graph: KnowledgeGraph):
    center = graph.node_ids[0]
    previous = frozenset()
    for radius in range(graph.n + 1):
        ball = graph.undirected_ball(center, radius)
        assert previous <= ball
        previous = ball
    assert previous == frozenset(graph.node_ids)


@COMMON
@given(graph=weakly_connected_graphs())
def test_ball_matches_distances(graph: KnowledgeGraph):
    center = graph.node_ids[0]
    distances = graph.undirected_distances(center)
    for radius in (0, 1, 2):
        ball = graph.undirected_ball(center, radius)
        expected = {node for node, d in distances.items() if d <= radius}
        assert ball == frozenset(expected)


@COMMON
@given(graph=weakly_connected_graphs())
def test_double_sweep_never_exceeds_exact_diameter(graph: KnowledgeGraph):
    estimate = graph.undirected_diameter(exact=False)
    exact = graph.undirected_diameter(exact=True)
    assert estimate <= exact
    # Double sweep is exact on trees and never less than half in general;
    # on these small graphs it is a true lower bound >= exact/2.
    assert estimate >= exact / 2


@COMMON
@given(graph=weakly_connected_graphs(), offset=st.integers(1, 10_000))
def test_relabeling_preserves_metric_structure(graph: KnowledgeGraph, offset: int):
    mapping = {node: node + offset for node in graph.node_ids}
    relabeled = graph.relabeled(mapping)
    assert relabeled.n == graph.n
    assert relabeled.edge_count == graph.edge_count
    assert relabeled.undirected_diameter() == graph.undirected_diameter()


@COMMON
@given(graph=weakly_connected_graphs())
def test_reversal_is_an_involution_preserving_weak_metric(graph: KnowledgeGraph):
    reversed_graph = graph.reversed()
    assert reversed_graph.reversed() == graph
    # Weak connectivity and the undirected metric ignore direction.
    assert reversed_graph.undirected_diameter() == graph.undirected_diameter()


@COMMON
@given(graph=weakly_connected_graphs())
def test_json_round_trip(graph: KnowledgeGraph):
    from repro.graphs.io import from_json, to_json

    assert from_json(to_json(graph)) == graph
