"""Property tests for the transport layer's filtering invariants.

Over *arbitrary* delivery models, fault plans, and churn scripts (the
schedule strategies of ``tests/strategies``):

* no model ever schedules a delivery before the round after its send —
  delays are always >= 1, and a submitted message is pending at exactly
  ``send_round + delay`` and nowhere earlier;
* a model advertising ``uniform_delay`` honors it for every link;
* partition windows drop symmetrically — the verdict for ``(u, v)`` at
  any round equals the verdict for ``(v, u)`` — never drop intra-side
  traffic, and never drop outside the window;
* spec strings round-trip: ``parse_delivery(model.describe())`` behaves
  identically to the original under the same seed;
* fault and churn plans expose consistent schedules (dormancy ends
  exactly at the join round; crashes apply exactly once).
"""

from __future__ import annotations

from types import SimpleNamespace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.churn import JoinPlan
from repro.sim.faults import FaultInjector
from repro.sim.messages import Message
from repro.sim.metrics import DROP_PARTITION, MetricsCollector
from repro.sim.transport import PartitionWindow, parse_delivery

from ..strategies import delivery_models, fault_plans, join_plans, seeds

COMMON = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

NODE_IDS = tuple(range(16))


def stub_engine(seed: int = 0) -> SimpleNamespace:
    """The minimal engine surface a bound delivery model touches."""
    return SimpleNamespace(
        seed=seed,
        node_ids=NODE_IDS,
        metrics=MetricsCollector(),
        _faults=FaultInjector(None, seed),
        _joins=JoinPlan(),
        _delivery_log=None,
    )


@COMMON
@given(
    model=delivery_models(node_ids=range(16)),
    seed=seeds,
    sender=st.sampled_from(NODE_IDS),
    recipient=st.sampled_from(NODE_IDS),
    send_round=st.integers(min_value=1, max_value=30),
)
def test_no_delivery_before_send_time(model, seed, sender, recipient, send_round):
    bound = model.bind(stub_engine(seed))
    delay = bound.delay(sender, recipient, send_round)
    assert delay >= 1
    if model.uniform_delay is not None:
        assert delay == model.uniform_delay

    message = Message("probe", sender, recipient, ids=(sender,))
    bound.submit(message, send_round)
    assert bound.in_flight() == 1
    # Nothing is due at or before the send round.
    for round_no in range(1, send_round + 1):
        pending, _ = bound.pending(round_no)
        assert pending is None
    # The message is due exactly at send_round + delay.  Randomized
    # models may have advanced their stream; ask the buffer directly.
    due_rounds = [rnd for rnd, bucket in bound._future.items() if bucket]
    assert due_rounds and min(due_rounds) >= send_round + 1


@COMMON
@given(model=delivery_models(node_ids=range(16)), seed=seeds)
def test_scheduled_delay_matches_pending_round(model, seed):
    bound = model.bind(stub_engine(seed))
    message = Message("probe", 0, 1, ids=())
    bound.submit(message, 5)
    (due_round,) = [rnd for rnd, bucket in bound._future.items() if bucket]
    (recorded_delay,) = bound._delays[due_round]
    assert due_round == 5 + recorded_delay
    # The latency histogram charged exactly this delay.
    assert bound._engine.metrics.delivery_delays == {recorded_delay: 1}


@COMMON
@given(
    start=st.integers(min_value=1, max_value=12),
    width=st.integers(min_value=0, max_value=6),
    group=st.frozensets(st.sampled_from(NODE_IDS), max_size=16),
    u=st.sampled_from(NODE_IDS),
    v=st.sampled_from(NODE_IDS),
    round_no=st.integers(min_value=1, max_value=25),
    seed=seeds,
)
def test_partition_drops_symmetrically(start, width, group, u, v, round_no, seed):
    model = PartitionWindow(start, start + width, group=group)
    bound = model.bind(stub_engine(seed))
    forward = bound.drop_reason(u, v, round_no)
    backward = bound.drop_reason(v, u, round_no)
    assert forward == backward  # symmetric verdict
    crossing = (u in group) != (v in group)
    inside_window = start <= round_no <= start + width
    expected = DROP_PARTITION if (crossing and inside_window) else None
    assert forward == expected


@COMMON
@given(
    model=delivery_models(node_ids=range(16)),
    seed=seeds,
    links=st.lists(
        st.tuples(st.sampled_from(NODE_IDS), st.sampled_from(NODE_IDS)),
        min_size=1,
        max_size=8,
    ),
)
def test_describe_parse_round_trip(model, seed, links):
    """A model rebuilt from its own spec string behaves identically."""
    clone = parse_delivery(model.describe())
    assert clone.describe() == model.describe()
    bound = model.bind(stub_engine(seed))
    bound_clone = clone.bind(stub_engine(seed))
    # An explicit partition group is not part of the spec string, so the
    # clone falls back to the default lower-half split — compare filtering
    # only when the spec string captures the whole model.
    compare_drops = model.filters_delivery and getattr(model, "group", None) is None
    for send_round, (sender, recipient) in enumerate(links, start=1):
        assert bound.delay(sender, recipient, send_round) == bound_clone.delay(
            sender, recipient, send_round
        )
        if compare_drops:
            assert bound.drop_reason(
                sender, recipient, send_round
            ) == bound_clone.drop_reason(sender, recipient, send_round)


@COMMON
@given(plan=join_plans(), node=st.integers(min_value=0, max_value=15))
def test_dormancy_ends_exactly_at_join_round(plan, node):
    join_round = plan.join_rounds.get(node)
    if join_round is None:
        assert not any(plan.is_dormant(node, rnd) for rnd in range(1, 20))
    else:
        for rnd in range(1, 20):
            assert plan.is_dormant(node, rnd) == (rnd < join_round)


@COMMON
@given(plan=fault_plans(), seed=seeds)
def test_crashes_apply_exactly_once(plan, seed):
    injector = FaultInjector(plan, seed)
    crashed = []
    for round_no in range(1, 14):
        crashed.extend(injector.apply_crashes(round_no))
    assert sorted(crashed) == sorted(plan.crash_rounds)
    assert injector.crashed_nodes == frozenset(plan.crash_rounds)
    for node, round_no in plan.crash_rounds.items():
        assert injector.crashed_map[node] == round_no
