"""Property-based tests over arbitrary weakly connected inputs.

These are the strongest statements in the suite: for *any* weakly
connected directed knowledge graph hypothesis can construct —

* every shipped algorithm completes strong discovery,
* within the communication model (strict legality enforcement and the
  ball-containment lower-bound checker are both armed),
* deterministically in the seed,
* with every node's private view matching ground truth at the end,
* never undershooting the information-theoretic round bound.
"""

from __future__ import annotations


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.bounds import lower_bound_rounds
from repro.analysis.invariants import (
    BallContainmentObserver,
    MonotonicityObserver,
    verify_view_consistency,
)
from repro.graphs.knowledge import KnowledgeGraph
from repro.sim import SynchronousEngine

from ..strategies import weakly_connected_graphs

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ALGORITHMS = sorted(repro.algorithm_names())


@COMMON
@given(graph=weakly_connected_graphs(), seed=st.integers(0, 1000))
def test_sublog_completes_on_arbitrary_graphs(graph: KnowledgeGraph, seed: int):
    observer = BallContainmentObserver(graph, strict=True)
    result = repro.discover(
        graph,
        algorithm="sublog",
        seed=seed,
        observers=[observer],
        enforce_legality=True,
    )
    assert result.completed
    assert not observer.violations


@COMMON
@given(graph=weakly_connected_graphs(max_nodes=12), seed=st.integers(0, 1000))
def test_all_algorithms_complete(graph: KnowledgeGraph, seed: int):
    for algorithm in ALGORITHMS:
        spec = repro.get_algorithm(algorithm)
        result = repro.discover(
            graph,
            algorithm=algorithm,
            seed=seed,
            enforce_legality=True,
            # rpj is randomized-slow on tiny adversarial graphs; give slack.
            max_rounds=max(spec.round_cap(graph.n), 50 * graph.n + 400),
        )
        assert result.completed, algorithm


@COMMON
@given(graph=weakly_connected_graphs(), seed=st.integers(0, 1000))
def test_round_lower_bound_never_beaten(graph: KnowledgeGraph, seed: int):
    bound = lower_bound_rounds(graph)
    for algorithm in ("swamping", "sublog"):
        result = repro.discover(graph, algorithm=algorithm, seed=seed)
        assert result.completed
        assert result.rounds >= bound


@COMMON
@given(graph=weakly_connected_graphs(), seed=st.integers(0, 1000))
def test_views_match_ground_truth(graph: KnowledgeGraph, seed: int):
    spec = repro.get_algorithm("sublog")
    engine = SynchronousEngine(
        graph, spec.node_factory(), seed=seed, observers=[MonotonicityObserver()]
    )
    result = engine.run(max_rounds=spec.round_cap(graph.n) + 200)
    assert result.completed
    assert verify_view_consistency(engine) is None


@COMMON
@given(graph=weakly_connected_graphs(max_nodes=10), seed=st.integers(0, 1000))
def test_determinism(graph: KnowledgeGraph, seed: int):
    def signature(algorithm: str):
        result = repro.discover(graph, algorithm=algorithm, seed=seed)
        return (result.rounds, result.messages, result.pointers)

    for algorithm in ("sublog", "namedropper"):
        assert signature(algorithm) == signature(algorithm)


@COMMON
@given(graph=weakly_connected_graphs(max_nodes=12), seed=st.integers(0, 1000))
def test_message_floor(graph: KnowledgeGraph, seed: int):
    # Unless the input is already complete, at least one message per
    # initially-ignorant machine must be sent.
    result = repro.discover(graph, algorithm="sublog", seed=seed)
    incomplete_at_start = sum(
        1 for node in graph.node_ids if len(graph.out(node)) < graph.n - 1
    )
    if incomplete_at_start:
        assert result.messages >= 1


@COMMON
@given(
    graph=weakly_connected_graphs(min_nodes=3, max_nodes=12),
    seed=st.integers(0, 1000),
    loss_ppm=st.integers(0, 120_000),
)
def test_sublog_survives_random_loss(
    graph: KnowledgeGraph, seed: int, loss_ppm: int
):
    from repro.sim import FaultPlan

    result = repro.discover(
        graph,
        algorithm="sublog",
        seed=seed,
        fault_plan=FaultPlan(loss_rate=loss_ppm / 1_000_000, seed=seed),
        resilient=True,
        watchdog_phases=3,
        stagnation_phases=4,
        max_rounds=4000,
    )
    assert result.completed


@COMMON
@given(
    graph=weakly_connected_graphs(min_nodes=2, max_nodes=12),
    seed=st.integers(0, 1000),
    jitter=st.integers(0, 3),
)
def test_sublog_completes_under_jitter(
    graph: KnowledgeGraph, seed: int, jitter: int
):
    result = repro.discover(
        graph,
        algorithm="sublog",
        seed=seed,
        jitter=jitter,
        resilient=True,
        stagnation_phases=4,
        max_rounds=6000,
    )
    assert result.completed


@COMMON
@given(
    incumbents=st.integers(2, 10),
    joiners=st.integers(0, 6),
    seed=st.integers(0, 1000),
)
def test_discovery_with_staggered_joins(incumbents: int, joiners: int, seed: int):
    from repro.sim import late_join_workload

    graph, plan = late_join_workload(
        incumbents, joiners, seed=seed, k=2, join_start=5, join_stride=2
    )
    result = repro.discover(graph, algorithm="sublog", seed=seed, join_plan=plan)
    assert result.completed
    if joiners:
        assert result.rounds >= plan.last_join
