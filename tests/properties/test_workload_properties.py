"""Property-based tests for the workload suite's core invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.workloads import Trace, make_workload, zipf_weights
from repro.workloads.generators import apportion, diurnal_curve

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(
    n=st.integers(min_value=1, max_value=400),
    alpha=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
)
def test_zipf_weights_positive_and_monotone(n: int, alpha: float):
    weights = zipf_weights(n, alpha)
    assert len(weights) == n
    assert all(weight > 0.0 for weight in weights)
    assert all(a >= b for a, b in zip(weights, weights[1:]))


@COMMON
@given(
    rounds=st.integers(min_value=1, max_value=200),
    period=st.integers(min_value=1, max_value=100),
    amplitude=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_diurnal_curve_stays_inside_envelope(
    rounds: int, period: int, amplitude: float
):
    curve = diurnal_curve(rounds, period, amplitude)
    assert len(curve) == rounds
    epsilon = 1e-9
    assert all(
        1.0 - amplitude - epsilon <= value <= 1.0 + amplitude + epsilon
        for value in curve
    )


@COMMON
@given(
    total=st.integers(min_value=0, max_value=10_000),
    weights=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=50,
    ).filter(lambda ws: sum(ws) > 0),
)
def test_apportion_sums_exactly_and_respects_zero_weights(total, weights):
    counts = apportion(total, weights)
    assert sum(counts) == total
    assert all(count >= 0 for count in counts)
    for weight, count in zip(weights, counts):
        if weight == 0.0:
            assert count == 0


@COMMON
@given(
    n=st.integers(min_value=8, max_value=128),
    seed=st.integers(min_value=0, max_value=2**31),
    clusters=st.integers(min_value=1, max_value=8),
    victim_clusters=st.integers(min_value=1, max_value=8),
)
def test_correlated_failures_stay_inside_victim_regions(
    n, seed, clusters, victim_clusters
):
    victim_clusters = min(victim_clusters, clusters)
    trace = make_workload(
        "correlated_failures",
        n,
        seed=seed,
        clusters=clusters,
        victim_clusters=victim_clusters,
    )
    regions = {event.node % clusters for event in trace.events_of("crash")}
    assert len(regions) <= victim_clusters
    victims = [event.node for event in trace.events_of("crash")]
    assert len(victims) == len(set(victims))


@COMMON
@given(
    name=st.sampled_from(["zipf", "diurnal", "flash_crowd", "dynamic_graph"]),
    n=st.integers(min_value=2, max_value=96),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_every_trace_round_trips_through_records(name, n, seed):
    trace = make_workload(name, n, seed=seed)
    assert Trace.from_records(trace.to_records()) == trace


@COMMON
@given(
    n=st.integers(min_value=2, max_value=96),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_trace_digest_is_a_pure_function_of_content(n, seed):
    first = make_workload("zipf", n, seed=seed)
    second = make_workload("zipf", n, seed=seed)
    assert first.digest() == second.digest()
    assert first.events == second.events
