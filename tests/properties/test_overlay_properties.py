"""Property tests for the two overlay baselines.

Two claims the ISSUE requires machine-checked:

* **det_optimal is message-frugal**: on low-diameter topologies (the
  regime arXiv:1306.1692 targets) the run's total message count stays
  O(n) — asserted as ``<= 16 n + 64``, roughly 30% above the worst
  calibrated constant.  The linear bound is *not* claimed on chains:
  member reports relay through the pipeline there, costing Θ(n·D)
  (documented in the module docstring), so the strategy draws only
  families with (poly)logarithmic diameter.

* **chord_discover's finger tables are consistent**: every entry of
  ``finger_table()`` is the true ring successor of ``id + 2^k`` over the
  node's current known set — after arbitrary incremental ``learn()``
  growth (exercising the cached sorted view's invalidation path) and at
  the end of full discovery runs over arbitrary weakly connected graphs.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.algorithms.chord_discover import ChordDiscoverNode
from repro.algorithms.registry import get_algorithm
from repro.graphs.generators import make_topology
from repro.graphs.idspace import RING_MODULUS, finger_targets, ring_distance
from repro.graphs.knowledge import KnowledgeGraph
from repro.sim import SynchronousEngine

from ..strategies import weakly_connected_graphs

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Low-diameter families only — the linear-message regime.
LOW_DIAMETER = ("kout", "gnp", "star_in", "tree", "hypercube")


def brute_force_fingers(node_id: int, known: set) -> tuple:
    """Reference finger table: nearest clockwise peer per target, naively."""
    peers = sorted(known - {node_id})
    if not peers:
        return ()
    fingers = set()
    for target in finger_targets(node_id):
        fingers.add(min(peers, key=lambda peer: ring_distance(target, peer)))
    return tuple(sorted(fingers))


@COMMON
@given(
    topology=st.sampled_from(LOW_DIAMETER),
    n=st.integers(min_value=4, max_value=96),
    seed=st.integers(0, 1000),
    sparse=st.booleans(),
)
def test_det_optimal_messages_linear_on_low_diameter(topology, n, seed, sparse):
    graph = make_topology(
        topology, n, seed=seed, id_space="random" if sparse else "dense"
    )
    result = repro.discover(graph, algorithm="det_optimal", seed=seed)
    assert result.completed
    assert result.messages <= 16 * n + 64, (
        f"{topology} n={n} seed={seed}: {result.messages} messages"
    )


@COMMON
@given(
    node_id=st.integers(min_value=0, max_value=RING_MODULUS - 1),
    batches=st.lists(
        st.sets(st.integers(min_value=0, max_value=RING_MODULUS - 1), max_size=12),
        min_size=1,
        max_size=6,
    ),
)
def test_finger_table_matches_brute_force_under_incremental_growth(
    node_id, batches
):
    node = ChordDiscoverNode(node_id)
    node.bind(batches[0], random.Random(0))
    for batch in batches[1:]:
        # Growth goes through learn(), the only sanctioned write path —
        # this is exactly what must invalidate the cached sorted view.
        node.learn(batch)
        assert node.finger_table() == brute_force_fingers(node_id, node.known)
    assert node.finger_table() == brute_force_fingers(node_id, node.known)


@COMMON
@given(graph=weakly_connected_graphs(max_nodes=12), seed=st.integers(0, 1000))
def test_fingers_consistent_at_closure(graph: KnowledgeGraph, seed: int):
    spec = get_algorithm("chord_discover")
    engine = SynchronousEngine(
        graph,
        spec.node_factory(),
        seed=seed,
        goal="strong",
        algorithm_name="chord_discover",
    )
    result = engine.run(max_rounds=spec.round_cap(graph.n))
    assert result.completed
    for node in engine.nodes.values():
        assert node.known == set(graph.node_ids)
        assert node.finger_table() == brute_force_fingers(node.node_id, node.known)
