"""Connection robustness: garbage frames, dying siblings, clean teardown.

A live node's server must survive anything a broken or hostile client
throws at it — random bytes, truncated frames, oversized headers,
structurally valid frames missing protocol keys — without hanging, and
without the handler dying silently (every rejection leaves a structured
log line).  Cluster orchestration must fail fast, not strand siblings,
and teardown must actually release transports.
"""

from __future__ import annotations

import asyncio
import logging
import random

import pytest

from repro.live.cluster import ClusterSpec, LiveCluster
from repro.live.wire import HEADER, MAX_FRAME_BYTES, encode_frame, read_frame


async def _serving_cluster(n=4, seed=1, algorithm="flooding"):
    cluster = LiveCluster(ClusterSpec(n=n, seed=seed, algorithm=algorithm))
    await cluster.start()
    report = await asyncio.wait_for(cluster.run_discovery(), 60)
    assert report.complete
    return cluster


async def _assert_still_serving(host, port):
    """A fresh connection must get a status reply — the server survived."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(encode_frame({"t": "status"}))
    await writer.drain()
    reply = await asyncio.wait_for(read_frame(reader), 5)
    writer.close()
    await writer.wait_closed()
    assert reply is not None and reply["t"] == "status_reply"


async def _throw_bytes(host, port, blob: bytes):
    """Deliver raw bytes and drop the connection, swallowing resets."""
    try:
        _reader, writer = await asyncio.open_connection(host, port)
        writer.write(blob)
        await writer.drain()
        writer.close()
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


#: Structurally valid JSON frames that violate the protocol contract.
MALFORMED_FRAMES = [
    {"t": "ptrs", "from": 0, "msgs": []},  # missing round
    {"t": "ptrs", "round": "x", "from": 0, "msgs": []},  # non-int round
    {"t": "ptrs", "round": 0, "from": 0, "msgs": []},  # round < 1
    {"t": "ptrs", "round": 1, "from": 0},  # missing msgs
    {"t": "ptrs", "round": 1, "from": 0, "msgs": [{"bogus": 1}]},  # bad message
    {"t": "eor", "round": 1, "from": 0},  # missing complete
    {"t": "eor", "round": 1, "from": None, "complete": True},  # bad sender
    {"t": "eor", "round": True, "from": 0, "complete": True},  # bool round
    {"t": "succ", "of": "not-an-id"},  # query with uncomparable operand
    {"t": "no-such-frame-kind"},  # unknown kind
]


class TestGarbageFrames:
    def test_wire_fuzz_never_kills_or_hangs_the_server(self):
        async def scenario():
            cluster = await _serving_cluster()
            host, port = cluster.endpoints[0]
            try:
                rng = random.Random(0xBAD)
                # Raw garbage: random blobs, most of which parse as an
                # absurd length prefix or an undecodable body.
                for _ in range(20):
                    blob = rng.randbytes(rng.randrange(1, 64))
                    await _throw_bytes(host, port, blob)
                    await _assert_still_serving(host, port)
                # Oversized header: length prefix beyond the frame cap.
                await _throw_bytes(
                    host, port, HEADER.pack(MAX_FRAME_BYTES + 1) + b"x" * 16
                )
                await _assert_still_serving(host, port)
                # Truncated frame: header promises more than is sent.
                await _throw_bytes(host, port, HEADER.pack(512) + b'{"t":')
                await _assert_still_serving(host, port)
                # Valid JSON, wrong shape.
                body = b"[1,2,3]"
                await _throw_bytes(host, port, HEADER.pack(len(body)) + body)
                await _assert_still_serving(host, port)
                body = b'{"no_t_key":1}'
                await _throw_bytes(host, port, HEADER.pack(len(body)) + body)
                await _assert_still_serving(host, port)
                # Protocol-invalid frames (valid wire envelope).
                for frame in MALFORMED_FRAMES:
                    await _throw_bytes(host, port, encode_frame(frame))
                    await _assert_still_serving(host, port)
                # The abuse must not have perturbed the fleet's answers.
                for endpoint in cluster.endpoints:
                    await _assert_still_serving(*endpoint)
            finally:
                await cluster.close()

        asyncio.run(asyncio.wait_for(scenario(), 120))

    def test_protocol_errors_leave_a_log_trail(self, caplog):
        async def scenario():
            cluster = await _serving_cluster(n=2)
            host, port = cluster.endpoints[0]
            try:
                await _throw_bytes(
                    host, port, encode_frame({"t": "ptrs", "from": 0, "msgs": []})
                )
                await _assert_still_serving(host, port)
            finally:
                await cluster.close()

        with caplog.at_level(logging.WARNING, logger="repro.live.node"):
            asyncio.run(asyncio.wait_for(scenario(), 30))
        assert "protocol-error" in caplog.text
        assert "ptrs" in caplog.text


class TestClusterFailFast:
    def test_one_crashing_node_cancels_the_fleet(self):
        async def scenario():
            cluster = LiveCluster(ClusterSpec(n=4, algorithm="flooding", seed=0))
            await cluster.start()

            async def explode(max_rounds, *, stop_on_closure=True):
                await asyncio.sleep(0.05)
                raise RuntimeError("node task died")

            cluster.nodes[2].run_discovery = explode
            try:
                with pytest.raises(RuntimeError, match="node task died"):
                    # Without sibling cancellation the other three nodes
                    # block in their marker waits and this times out.
                    await asyncio.wait_for(cluster.run_discovery(), 15)
            finally:
                await cluster.close()

        asyncio.run(scenario())

    def test_close_is_exception_safe_per_node(self):
        async def scenario():
            cluster = LiveCluster(ClusterSpec(n=3, algorithm="flooding", seed=0))
            await cluster.start()

            async def bad_close():
                raise OSError("teardown hiccup")

            cluster.nodes[0].close = bad_close
            with pytest.raises(OSError, match="teardown hiccup"):
                await cluster.close()
            # The failure must not have skipped the siblings' teardown.
            assert cluster.nodes[1]._server is None
            assert cluster.nodes[2]._server is None

        asyncio.run(scenario())


class TestTeardown:
    def test_close_releases_transports(self):
        async def scenario():
            cluster = await _serving_cluster(n=4)
            await cluster.close()
            for runtime in cluster.nodes.values():
                assert runtime._server is None
                assert not runtime._writers
                assert not runtime._inbound
            # Idempotent: closing again must not raise.
            await cluster.close()

        asyncio.run(asyncio.wait_for(scenario(), 60))
