"""Load-generator correctness against a serving cluster."""

from __future__ import annotations

import asyncio

import pytest

from repro.live.cluster import ClusterSpec, LiveCluster
from repro.live.loadgen import run_loadgen
from repro.live.node import LiveNodeRuntime
from repro.live.wire import encode_frame, read_frame


async def _serving_cluster(n=6, seed=2, algorithm="flooding"):
    cluster = LiveCluster(ClusterSpec(n=n, seed=seed, algorithm=algorithm))
    await cluster.start()
    report = await cluster.run_discovery()
    assert report.complete
    return cluster


class TestLoadgen:
    def test_census_and_ring_agree_after_closure(self):
        async def scenario():
            cluster = await _serving_cluster()
            try:
                return await run_loadgen(
                    cluster.endpoints, requests=30, concurrency=5, seed=9
                )
            finally:
                await cluster.close()

        report = asyncio.run(scenario())
        assert report.ok
        assert report.errors == 0
        assert report.leader == 0 and report.count == 6
        assert report.census_consistent and report.ring_valid
        assert len(report.latencies_ms) == 30

    def test_rejects_empty_endpoints(self):
        with pytest.raises(ValueError):
            asyncio.run(run_loadgen([], requests=1))

    def test_rejects_nonpositive_workload(self):
        with pytest.raises(ValueError):
            asyncio.run(run_loadgen([("127.0.0.1", 1)], requests=0))

    def test_plan_without_census_is_not_a_failure(self):
        """``requests=1`` issues only a ``succ`` probe; an unsampled
        census must read as "no data" (``None``), not as disagreement."""

        async def scenario():
            cluster = await _serving_cluster(n=4, seed=1)
            try:
                return await run_loadgen(cluster.endpoints, requests=1, seed=9)
            finally:
                await cluster.close()

        report = asyncio.run(scenario())
        assert report.errors == 0
        assert report.census_samples == 0
        assert report.census_consistent is None
        assert report.ok

    def test_disagreeing_censuses_still_fail(self):
        from repro.live.loadgen import LoadgenReport

        report = LoadgenReport(
            requests=2,
            errors=0,
            duration_s=0.0,
            census_consistent=False,
            ring_valid=True,
            census_samples=2,
        )
        assert not report.ok


class TestQueryService:
    def test_query_frames_round_trip(self):
        async def scenario():
            cluster = await _serving_cluster(n=4, seed=1)
            try:
                host, port = cluster.endpoints[0]
                reader, writer = await asyncio.open_connection(host, port)
                replies = []
                for payload in (
                    {"t": "census"},
                    {"t": "succ", "of": 3},
                    {"t": "known"},
                    {"t": "status"},
                ):
                    writer.write(encode_frame(payload))
                    await writer.drain()
                    replies.append(await read_frame(reader))
                writer.close()
                return replies
            finally:
                await cluster.close()

        census, succ, known, status = asyncio.run(scenario())
        assert census["leader"] == 0 and census["count"] == 4
        assert succ["succ"] == 0  # 3 wraps to the ring's smallest id
        assert known["ids"] == [0, 1, 2, 3]
        assert status["complete"] is True and status["n"] == 4

    def test_shutdown_frame_sets_event(self):
        async def scenario():
            cluster = await _serving_cluster(n=4, seed=1)
            try:
                host, port = cluster.endpoints[0]
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame({"t": "shutdown"}))
                await writer.drain()
                reply = await read_frame(reader)
                writer.close()
                runtime: LiveNodeRuntime = next(iter(cluster.nodes.values()))
                return reply, runtime.shutdown_requested.is_set()
            finally:
                await cluster.close()

        reply, requested = asyncio.run(scenario())
        assert reply["t"] == "ok"
        assert requested


class TestLatencyBreakdown:
    def test_percentiles_and_per_worker_split(self):
        async def scenario():
            cluster = await _serving_cluster()
            try:
                return await run_loadgen(
                    cluster.endpoints, requests=24, concurrency=3, seed=9
                )
            finally:
                await cluster.close()

        report = asyncio.run(scenario())
        overall = report.percentiles()
        assert set(overall) == {"p50", "p95", "p99"}
        assert 0.0 < overall["p50"] <= overall["p95"] <= overall["p99"]
        workers = report.worker_percentiles()
        assert set(workers) == {0, 1, 2}
        assert sum(int(stats["requests"]) for stats in workers.values()) == 24
        for stats in workers.values():
            assert stats["p50"] <= stats["p95"] <= stats["p99"]
        # every recorded latency is attributed to exactly one worker
        assert sum(
            len(values) for values in report.worker_latencies_ms.values()
        ) == len(report.latencies_ms)

    def test_empty_percentiles_are_zero(self):
        from repro.live.loadgen import LoadgenReport

        report = LoadgenReport(
            requests=0,
            errors=0,
            duration_s=0.0,
            census_consistent=None,
            ring_valid=True,
        )
        assert report.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert report.worker_percentiles() == {}
        assert report.decile_percentiles() == {}


class TestTraceReplay:
    def test_trace_drives_exact_lookup_demand(self):
        from repro.workloads import make_workload

        trace = make_workload("zipf", 6, seed=4, requests=30)

        async def scenario():
            cluster = await _serving_cluster(n=6, seed=2)
            try:
                return await run_loadgen(
                    cluster.endpoints, concurrency=3, seed=9, trace=trace
                )
            finally:
                await cluster.close()

        report = asyncio.run(scenario())
        assert report.ok
        assert report.requests == 30  # trace demand, not the default 100
        assert report.census_samples == 0  # trace plans are succ-only
        assert len(report.latencies_ms) == 30
        by_decile = report.decile_percentiles()
        assert by_decile  # skew recorded per popularity decile
        assert sum(int(stats["requests"]) for stats in by_decile.values()) == 30
        assert min(by_decile) == 0  # the hot decile exists

    def test_trace_size_mismatch_rejected(self):
        import pytest as _pytest

        from repro.workloads import make_workload

        trace = make_workload("zipf", 12, seed=4, requests=10)

        async def scenario():
            cluster = await _serving_cluster(n=4, seed=1)
            try:
                with _pytest.raises(ValueError, match="n=12"):
                    await run_loadgen(cluster.endpoints, trace=trace)
            finally:
                await cluster.close()

        asyncio.run(scenario())
