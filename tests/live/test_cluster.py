"""Cross-host bit-identity: the live cluster against the simulator.

These are the acceptance tests of the host split: the same protocol
core, driven once by concurrent asyncio tasks over TCP loopback and
once by the synchronous engine, must reduce to byte-identical knowledge
digests — at closure (the ISSUE's acceptance criterion) and, more
strictly, at arbitrary mid-run round boundaries, where equality can
only hold if every round matched bit for bit.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.graphs.knowledge import digest_knowledge
from repro.live.cluster import (
    ClusterSpec,
    LiveCluster,
    reference_digest,
    run_cluster,
)


def _run(spec: ClusterSpec):
    return asyncio.run(run_cluster(spec))


class TestClosureIdentity:
    @pytest.mark.parametrize(
        "algorithm",
        [
            "flooding",
            "swamping",
            "rpj",
            "namedropper",
            "sublog",
            "det_optimal",
            "chord_discover",
        ],
    )
    def test_eight_node_closure_matches_sim(self, algorithm):
        spec = ClusterSpec(n=8, topology="kout", algorithm=algorithm, seed=11)
        report = _run(spec)
        expected, sim_rounds = reference_digest(spec)
        assert report.complete
        assert report.digest == expected
        # Closure detection lags the simulator's same-round goal check
        # by construction (the marker carries entering-round state).
        assert sim_rounds <= report.rounds <= sim_rounds + 2

    def test_two_seeds_differ(self):
        first = _run(ClusterSpec(n=8, algorithm="namedropper", seed=1, rounds=2))
        second = _run(ClusterSpec(n=8, algorithm="namedropper", seed=2, rounds=2))
        assert first.digest != second.digest


class TestExactRoundIdentity:
    @pytest.mark.parametrize("rounds", [1, 3, 6])
    def test_sublog_mid_run_digest(self, rounds):
        spec = ClusterSpec(n=8, algorithm="sublog", seed=7, rounds=rounds)
        report = _run(spec)
        expected, _ = reference_digest(spec)
        assert report.rounds == rounds
        assert report.digest == expected

    def test_namedropper_mid_run_digest(self):
        spec = ClusterSpec(n=10, algorithm="namedropper", seed=4, rounds=3)
        report = _run(spec)
        expected, _ = reference_digest(spec)
        assert report.digest == expected

    @pytest.mark.parametrize("algorithm", ["det_optimal", "chord_discover"])
    @pytest.mark.parametrize("rounds", [1, 2, 4])
    def test_new_baselines_mid_run_digest(self, algorithm, rounds):
        spec = ClusterSpec(n=9, algorithm=algorithm, seed=13, rounds=rounds)
        report = _run(spec)
        expected, _ = reference_digest(spec)
        assert report.rounds == rounds
        assert report.digest == expected


class TestClusterMechanics:
    def test_two_phase_start_publishes_full_directory(self):
        async def scenario():
            cluster = LiveCluster(ClusterSpec(n=5, algorithm="flooding", seed=0))
            await cluster.start()
            try:
                ports = {port for _host, port in cluster.endpoints}
                assert len(ports) == 5  # every node bound its own port
                for runtime in cluster.nodes.values():
                    assert set(runtime._directory) == set(cluster.nodes)
            finally:
                await cluster.close()

        asyncio.run(scenario())

    def test_digest_uses_shared_helper(self):
        async def scenario():
            cluster = LiveCluster(ClusterSpec(n=4, algorithm="flooding", seed=0))
            await cluster.start()
            try:
                await cluster.run_discovery()
                assert cluster.digest() == digest_knowledge(cluster.knowledge())
            finally:
                await cluster.close()

        asyncio.run(scenario())

    def test_message_metrics_accumulate(self):
        report = _run(ClusterSpec(n=6, algorithm="flooding", seed=0))
        assert report.messages > 0

    def test_single_node_cluster_closes_immediately(self):
        report = _run(ClusterSpec(n=1, topology="path", algorithm="flooding", seed=0))
        assert report.complete
        expected, _ = reference_digest(
            ClusterSpec(n=1, topology="path", algorithm="flooding", seed=0)
        )
        assert report.digest == expected
