"""Live fault injection against the simulator's prediction.

The acceptance test of the robustness subsystem: a live cluster with a
node killed mid-run must not hang, must reach survivor closure within
the marker deadlines, and must reduce to exactly the knowledge digest a
:class:`~repro.sim.engine.SynchronousEngine` +
:class:`~repro.sim.faults.FaultInjector` run predicts for the same
``(topology, algorithm, seed, fault plan)``.  Every scenario is wrapped
in a hard wall-clock guard so a reintroduced hang-forever bug fails the
test instead of wedging the suite.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.live.cluster import ClusterSpec, LiveCluster, reference_digest, run_cluster
from repro.live.faults import LiveFaultPlan
from repro.live.node import PEER_DEAD, default_marker_timeout
from repro.live.wire import encode_frame, read_frame
from repro.sim.faults import parse_kill_specs

#: The paper's headline algorithm needs its loss-hardening to heal
#: around a crash (the plain assignment structure does not reroute).
RESILIENT = {"resilient": True, "stagnation_phases": 4}


def _run(spec: ClusterSpec, timeout: float = 60.0):
    async def guarded():
        return await asyncio.wait_for(run_cluster(spec), timeout)

    return asyncio.run(guarded())


class TestDifferential:
    def test_kill_one_node_mid_run_matches_sim(self):
        plan = LiveFaultPlan(crash_rounds={3: 3})
        spec = ClusterSpec(
            n=8,
            algorithm="sublog",
            seed=7,
            params=RESILIENT,
            fault_plan=plan,
            marker_timeout=0.5,
        )
        report = _run(spec)
        expected, sim_rounds = reference_digest(spec)
        assert report.crashed == (3,)
        assert report.survivors == (0, 1, 2, 4, 5, 6, 7)
        assert report.complete
        assert report.digest == expected
        assert sim_rounds <= report.rounds <= sim_rounds + 2

    def test_namedropper_kill_matches_sim(self):
        plan = LiveFaultPlan(crash_rounds={2: 2})
        spec = ClusterSpec(
            n=8, algorithm="namedropper", seed=11, fault_plan=plan, marker_timeout=0.5
        )
        report = _run(spec)
        expected, sim_rounds = reference_digest(spec)
        assert report.complete
        assert report.digest == expected
        assert sim_rounds <= report.rounds <= sim_rounds + 2

    def test_two_kills_match_sim(self):
        plan = LiveFaultPlan(crash_rounds={1: 2, 6: 3})
        spec = ClusterSpec(
            n=8, algorithm="rpj", seed=5, fault_plan=plan, marker_timeout=0.5
        )
        report = _run(spec)
        expected, sim_rounds = reference_digest(spec)
        assert report.crashed == (1, 6)
        assert report.complete
        assert report.digest == expected
        assert sim_rounds <= report.rounds <= sim_rounds + 2

    def test_crashed_node_freezes_at_sim_boundary(self):
        """Both hosts freeze the victim after round R-1, so even the
        full-fleet digest (frozen victim included) is identical."""

        async def scenario():
            plan = LiveFaultPlan(crash_rounds={3: 3})
            spec = ClusterSpec(
                n=8,
                algorithm="flooding",
                seed=7,
                fault_plan=plan,
                marker_timeout=0.5,
            )
            cluster = LiveCluster(spec)
            await cluster.start()
            try:
                await asyncio.wait_for(cluster.run_discovery(), 60)
                victim = cluster.nodes[3]
                assert victim.crashed_at == 3
                assert victim.rounds_run == 2
                return cluster.digest(survivors_only=False)
            finally:
                await cluster.close()

        from repro.sim.engine import SynchronousEngine

        full_digest = asyncio.run(scenario())
        spec = ClusterSpec(n=8, algorithm="flooding", seed=7)
        engine = SynchronousEngine(
            spec.build_graph(),
            spec.node_factory(),
            seed=7,
            algorithm_name="flooding",
            fault_plan=LiveFaultPlan(crash_rounds={3: 3}).to_sim_plan(),
        )
        engine.run(max_rounds=spec.round_budget())
        assert full_digest == engine.knowledge_digest()


class TestFailureDetector:
    def test_survivors_mark_victim_dead_in_status(self):
        async def scenario():
            plan = LiveFaultPlan(crash_rounds={2: 2})
            spec = ClusterSpec(
                n=6, algorithm="flooding", seed=3, fault_plan=plan, marker_timeout=0.5
            )
            cluster = LiveCluster(spec)
            await cluster.start()
            try:
                await asyncio.wait_for(cluster.run_discovery(), 60)
                survivor = cluster.nodes[0]
                host, port = survivor.host, survivor.port
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame({"t": "status"}))
                await writer.drain()
                status = await read_frame(reader)
                writer.close()
                await writer.wait_closed()
                return survivor.peer_state(2), status
            finally:
                await cluster.close()

        state, status = asyncio.run(scenario())
        assert state == PEER_DEAD
        assert status["peers"]["2"] == PEER_DEAD
        assert status["crashed_at"] is None
        assert "2" in status["dead_reasons"]

    def test_default_marker_timeout_bounds(self):
        assert default_marker_timeout(1) == 10.0
        assert default_marker_timeout(100) == 25.0
        assert default_marker_timeout(10_000) == 60.0


class TestRestart:
    def test_restarted_victim_serves_frozen_knowledge(self):
        async def scenario():
            plan = LiveFaultPlan(crash_rounds={2: 2}, restart=(2,))
            spec = ClusterSpec(
                n=6, algorithm="flooding", seed=3, fault_plan=plan, marker_timeout=0.5
            )
            cluster = LiveCluster(spec)
            await cluster.start()
            try:
                report = await asyncio.wait_for(cluster.run_discovery(), 60)
                victim = cluster.nodes[2]
                assert victim.restarted
                reader, writer = await asyncio.open_connection(
                    victim.host, victim.port
                )
                writer.write(encode_frame({"t": "status"}))
                await writer.drain()
                status = await read_frame(reader)
                writer.write(encode_frame({"t": "known"}))
                await writer.drain()
                known = await read_frame(reader)
                writer.close()
                await writer.wait_closed()
                return report, status, known, set(victim.protocol.known)
            finally:
                await cluster.close()

        report, status, known, frozen = asyncio.run(scenario())
        assert report.crashed == (2,)
        assert status["crashed_at"] == 2
        assert status["restarted"] is True
        # Frozen pre-crash knowledge, not the survivors' closure state.
        assert set(known["ids"]) == frozen

    def test_restart_service_requires_a_crash(self):
        async def scenario():
            cluster = LiveCluster(ClusterSpec(n=2, algorithm="flooding", seed=0))
            await cluster.start()
            try:
                with pytest.raises(RuntimeError):
                    await cluster.nodes[0].restart_service()
            finally:
                await cluster.close()

        asyncio.run(scenario())


class TestPlans:
    def test_parse_kill_specs(self):
        assert parse_kill_specs(["3@5", "1@2,6@4"]) == {3: 5, 1: 2, 6: 4}
        assert parse_kill_specs([]) == {}

    @pytest.mark.parametrize("spec", ["3", "3@", "@5", "3@x", "3@0"])
    def test_parse_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            parse_kill_specs([spec])

    def test_parse_rejects_double_kill(self):
        with pytest.raises(ValueError):
            parse_kill_specs(["3@5", "3@6"])

    def test_plan_rejects_restart_of_unkilled_node(self):
        with pytest.raises(ValueError):
            LiveFaultPlan(crash_rounds={3: 5}, restart=(4,))

    def test_cluster_rejects_plan_for_unknown_node(self):
        with pytest.raises(ValueError):
            LiveCluster(
                ClusterSpec(
                    n=4,
                    algorithm="flooding",
                    seed=0,
                    fault_plan=LiveFaultPlan(crash_rounds={99: 2}),
                )
            )

    def test_report_without_faults_covers_whole_fleet(self):
        spec = ClusterSpec(n=4, algorithm="flooding", seed=0)
        report = _run(spec)
        assert report.survivors == (0, 1, 2, 3)
        assert report.crashed == ()
        expected, _ = reference_digest(spec)
        assert report.digest == expected
