"""Frame codec and message wire-mapping tests."""

from __future__ import annotations

import asyncio

import pytest

from repro.live.wire import (
    HEADER,
    MAX_FRAME_BYTES,
    WireError,
    encode_frame,
    message_to_wire,
    read_frame,
    wire_to_message,
)
from repro.sim.messages import Message


async def _reader_for(data: bytes) -> asyncio.StreamReader:
    # StreamReader binds the running loop at construction, so build it
    # inside the coroutine.
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def _read(data: bytes):
    async def scenario():
        return await read_frame(await _reader_for(data))

    return asyncio.run(scenario())


class TestFrames:
    def test_round_trip(self):
        payload = {"t": "eor", "round": 3, "from": 1, "complete": False}
        assert _read(encode_frame(payload)) == payload

    def test_eof_at_boundary_is_none(self):
        assert _read(b"") is None

    def test_mid_header_eof_raises(self):
        with pytest.raises(WireError):
            _read(b"\x00\x00")

    def test_mid_body_eof_raises(self):
        frame = encode_frame({"t": "hello", "from": 2})
        with pytest.raises(WireError):
            _read(frame[:-3])

    def test_oversized_length_rejected(self):
        with pytest.raises(WireError):
            _read(HEADER.pack(MAX_FRAME_BYTES + 1))

    def test_non_object_body_rejected(self):
        with pytest.raises(WireError):
            _read(HEADER.pack(2) + b"[]")

    def test_undecodable_body_rejected(self):
        with pytest.raises(WireError):
            _read(HEADER.pack(3) + b"\xff\xfe\xfd")

    def test_back_to_back_frames(self):
        async def scenario():
            reader = await _reader_for(
                encode_frame({"t": "a"}) + encode_frame({"t": "b"})
            )
            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert (first["t"], second["t"], third) == ("a", "b", None)


class TestMessageMapping:
    def test_round_trip_preserves_fields(self):
        message = Message("push", 1, 2, ids=(9, 4, 7), data=None)
        rebuilt = wire_to_message(message_to_wire(message))
        assert rebuilt.kind == "push"
        assert rebuilt.sender == 1 and rebuilt.recipient == 2
        assert rebuilt.ids == (9, 4, 7)
        assert rebuilt.data is None

    def test_ids_order_is_preserved(self):
        # Positional consumers exist (sublog pairs ids with a parallel
        # data list), so the wire must not canonicalize the order.
        message = Message("assign", 1, 2, ids=(30, 10, 20), data=[2, 0])
        assert message_to_wire(message)["i"] == [30, 10, 20]

    def test_data_survives_as_json_value(self):
        message = Message("invite", 3, 4, ids=(5,), data=(6, 1))
        rebuilt = wire_to_message(message_to_wire(message))
        size, coin = rebuilt.data  # tuple-unpack works on the list form
        assert (size, coin) == (6, 1)

    def test_malformed_wire_message_raises(self):
        with pytest.raises(WireError):
            wire_to_message({"k": "push", "s": 1})
