"""Tests for the live asyncio host."""
