"""The generator catalog: determinism, resolved params, shape claims."""

from __future__ import annotations

import pytest

from repro.workloads import make_workload, workload_names
from repro.workloads.generators import apportion, diurnal_curve, zipf_weights


class TestRegistry:
    def test_catalog_is_complete(self):
        assert workload_names() == [
            "correlated_failures",
            "diurnal",
            "dynamic_graph",
            "flash_crowd",
            "zipf",
        ]

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("nope", 16)

    @pytest.mark.parametrize("name", workload_names())
    def test_every_generator_is_seed_deterministic(self, name):
        assert (
            make_workload(name, 40, seed=3).digest()
            == make_workload(name, 40, seed=3).digest()
        )

    @pytest.mark.parametrize("name", workload_names())
    def test_params_record_resolved_defaults(self, name):
        trace = make_workload(name, 40, seed=3)
        rebuilt = make_workload(name, 40, seed=3, **trace.params)
        assert rebuilt == trace


class TestHelpers:
    def test_zipf_weights_validate(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(4, -0.5)

    def test_zipf_alpha_zero_is_uniform(self):
        assert zipf_weights(5, 0.0) == [1.0] * 5

    def test_diurnal_curve_validates(self):
        with pytest.raises(ValueError):
            diurnal_curve(0, 24, 0.5)
        with pytest.raises(ValueError):
            diurnal_curve(24, 24, 1.5)

    def test_apportion_is_exact(self):
        counts = apportion(100, [3.0, 1.0, 1.0])
        assert sum(counts) == 100
        assert counts[0] == 60

    def test_apportion_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            apportion(10, [0.0, 0.0])


class TestShapes:
    def test_zipf_skew_concentrates_demand(self):
        uniform = make_workload("zipf", 64, seed=7, alpha=0.0, requests=2000)
        skewed = make_workload("zipf", 64, seed=7, alpha=1.4, requests=2000)

        def top_share(trace):
            counts = sorted(trace.lookup_counts().values(), reverse=True)
            return sum(counts[:6]) / sum(counts)

        assert top_share(skewed) > 2 * top_share(uniform)

    def test_diurnal_counts_follow_curve_bounds(self):
        trace = make_workload(
            "diurnal", 32, seed=1, requests=4800, rounds=48, amplitude=0.8
        )
        per_round = [0] * 48
        for event in trace:
            per_round[event.round_no - 1] += 1
        mean = sum(per_round) / len(per_round)
        # Apportionment keeps every round within the curve's envelope
        # (allow one unit of integer slack).
        for count in per_round:
            assert (1 - 0.8) * mean - 1 <= count <= (1 + 0.8) * mean + 1

    def test_flash_crowd_burst_targets_hot_keys(self):
        trace = make_workload(
            "flash_crowd",
            64,
            seed=5,
            spike_round=8,
            spike_width=2,
            spike_factor=8.0,
            hot_keys=3,
        )
        burst = [e for e in trace if e.round_no in (8, 9)]
        calm = [e for e in trace if e.round_no not in (8, 9)]
        assert len({e.target for e in burst}) <= 3
        burst_rate = len(burst) / 2
        calm_rate = len(calm) / 22
        assert burst_rate > 4 * calm_rate  # nominally 8x

    def test_flash_factor_one_is_flat(self):
        trace = make_workload("flash_crowd", 64, seed=5, spike_factor=1.0)
        per_round = {}
        for event in trace:
            per_round[event.round_no] = per_round.get(event.round_no, 0) + 1
        assert max(per_round.values()) - min(per_round.values()) <= 1

    def test_correlated_failures_respect_cluster_membership(self):
        clusters = 8
        trace = make_workload(
            "correlated_failures", 64, seed=3, clusters=clusters, victim_clusters=2
        )
        regions = {event.node % clusters for event in trace.events_of("crash")}
        assert len(regions) <= 2
        assert trace.events_of("crash")  # 0.9 of two 8-member regions

    def test_correlated_failures_stagger_window(self):
        trace = make_workload(
            "correlated_failures", 64, seed=3, failure_round=6, stagger=3
        )
        rounds = {event.round_no for event in trace.events_of("crash")}
        assert rounds <= {6, 7, 8}

    def test_correlated_failures_never_crash_twice(self):
        trace = make_workload(
            "correlated_failures", 64, seed=3, clusters=4, victim_clusters=4
        )
        victims = [event.node for event in trace.events_of("crash")]
        assert len(victims) == len(set(victims))

    def test_dynamic_graph_edges_have_distinct_endpoints(self):
        trace = make_workload("dynamic_graph", 32, seed=2, edges_per_round=16)
        for event in trace.events_of("edge"):
            assert event.node != event.target

    def test_dynamic_graph_rejects_singleton(self):
        with pytest.raises(ValueError, match="n >= 2"):
            make_workload("dynamic_graph", 1)
