"""Trace replay through the engine: backend identity, faults, injections."""

from __future__ import annotations

import pytest

from repro.sim import vector_available
from repro.workloads import (
    TraceWorkload,
    fault_plan_from_trace,
    knowledge_injections,
    make_workload,
    popularity_deciles,
    run_trace_workload,
)
from repro.workloads.trace import Trace, TraceEvent

BACKENDS = ("legacy", "fast") + (("vector",) if vector_available() else ())


class TestMappings:
    def test_popularity_deciles_rank_by_demand(self):
        trace = Trace(
            generator="g",
            n=30,
            seed=0,
            events=tuple(
                TraceEvent(1, "lookup", 0, target)
                for target in [5] * 10 + [9] * 5 + list(range(10, 28))
            ),
        )
        deciles = popularity_deciles(trace)
        assert deciles[5] == 0  # hottest target
        assert deciles[9] <= deciles[10]
        assert max(deciles.values()) == 9

    def test_fault_plan_translates_dense_indices(self):
        trace = Trace(
            generator="g", n=4, seed=7, events=(TraceEvent(3, "crash", 1),)
        )
        plan = fault_plan_from_trace(trace, node_ids=(100, 200, 300, 400))
        assert plan.crash_rounds == {200: 3}
        assert plan.seed == 7

    def test_fault_plan_none_without_crashes(self):
        trace = make_workload("zipf", 16, seed=1, requests=8)
        assert fault_plan_from_trace(trace) is None

    def test_fault_plan_rejects_double_crash(self):
        trace = Trace(
            generator="g",
            n=4,
            seed=0,
            events=(TraceEvent(2, "crash", 1), TraceEvent(5, "crash", 1)),
        )
        with pytest.raises(ValueError, match="twice"):
            fault_plan_from_trace(trace)

    def test_injection_schedule_groups_and_sorts(self):
        trace = Trace(
            generator="g",
            n=4,
            seed=0,
            events=(
                TraceEvent(2, "edge", 1, 3),
                TraceEvent(2, "edge", 1, 0),
                TraceEvent(2, "edge", 0, 2),
                TraceEvent(4, "edge", 3, 1),
            ),
        )
        schedule = knowledge_injections(trace)
        assert list(schedule) == [2, 4]
        assert schedule[2] == [(0, (2,)), (1, (0, 3))]


class TestReplay:
    @pytest.mark.parametrize(
        "generator", ("zipf", "flash_crowd", "dynamic_graph")
    )
    def test_digest_identical_across_backends(self, generator):
        trace = make_workload(generator, 48, seed=11)
        workload = TraceWorkload(trace, "sublog", seed=11)
        reports = [workload.run(backend=backend) for backend in BACKENDS]
        digests = {report.digest for report in reports}
        assert len(digests) == 1
        assert len({r.result.rounds for r in reports}) == 1
        assert len({r.result.messages for r in reports}) == 1

    def test_crash_trace_digest_identical_across_backends(self):
        trace = make_workload(
            "correlated_failures", 48, seed=11, clusters=4, fail_fraction=0.5
        )
        workload = TraceWorkload(
            trace,
            "namedropper",
            topology="clustered",
            topology_params={"clusters": 4},
            seed=11,
            goal="strong_alive",
        )
        digests = {workload.run(backend=b).digest for b in BACKENDS}
        assert len(digests) == 1

    def test_replay_is_deterministic(self):
        trace = make_workload("zipf", 32, seed=5)
        first = run_trace_workload(trace, "namedropper", seed=5)
        second = run_trace_workload(trace, "namedropper", seed=5)
        assert first.digest == second.digest
        assert first.lookups == second.lookups

    def test_lookup_accounting_sums(self):
        trace = make_workload("zipf", 32, seed=5, requests=120)
        report = run_trace_workload(trace, "flooding", seed=5)
        stats = report.lookups
        assert stats["requests"] == 120
        assert (
            stats["served"] + stats["failed"] + stats["unserved"]
            == stats["requests"]
        )
        assert report.result.completed
        # Flooding completes, so only crashed-attach lookups could fail.
        assert stats["failed"] == 0

    def test_lookups_on_crashed_attach_fail(self):
        events = (
            TraceEvent(2, "crash", 0),
            TraceEvent(6, "lookup", 0, 3),
        )
        trace = Trace(generator="g", n=16, seed=0, events=events)
        report = run_trace_workload(
            trace, "flooding", seed=0, goal="strong_alive"
        )
        assert report.lookups["failed"] == 1

    def test_dynamic_edges_are_injected(self):
        trace = make_workload("dynamic_graph", 32, seed=2, edges_per_round=6)
        report = run_trace_workload(trace, "flooding", seed=2)
        assert report.injected_contacts > 0

    def test_trace_graph_size_mismatch_rejected(self):
        trace = make_workload("zipf", 32, seed=1)
        with pytest.raises(ValueError, match="n=32"):
            TraceWorkload(trace, "flooding", topology="kout", seed=1, graph={0: [1], 1: [0]})

    def test_include_faults_false_ignores_crashes(self):
        trace = make_workload("correlated_failures", 32, seed=3, clusters=4)
        workload = TraceWorkload(trace, "flooding", seed=3, include_faults=False)
        assert workload.fault_plan is None
        report = workload.run()
        assert report.result.completed
