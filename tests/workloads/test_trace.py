"""Trace schema, canonical ordering, and byte-stable persistence."""

from __future__ import annotations

import pytest

from repro.workloads import Trace, TraceEvent, load_trace, make_workload, save_trace
from repro.workloads.trace import TRACE_KIND, TRACE_SCHEMA


class TestTraceValidation:
    def test_events_are_canonically_sorted(self):
        scrambled = (
            TraceEvent(3, "lookup", 1, 2),
            TraceEvent(1, "edge", 0, 1),
            TraceEvent(1, "lookup", 2, 0),
            TraceEvent(1, "crash", 1),
        )
        trace = Trace(generator="g", n=4, seed=0, events=scrambled)
        keys = [event.sort_key() for event in trace.events]
        assert keys == sorted(keys)
        # lookup sorts before crash sorts before edge within a round
        assert [e.kind for e in trace.events] == ["lookup", "crash", "edge", "lookup"]

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            Trace(generator="g", n=2, seed=0, events=(TraceEvent(1, "nope", 0, 1),))

    def test_rejects_out_of_range_node(self):
        with pytest.raises(ValueError, match="outside dense range"):
            Trace(generator="g", n=2, seed=0, events=(TraceEvent(1, "crash", 5),))

    def test_rejects_lookup_without_target(self):
        with pytest.raises(ValueError, match="requires a target"):
            Trace(generator="g", n=2, seed=0, events=(TraceEvent(1, "lookup", 0),))

    def test_rejects_crash_with_target(self):
        with pytest.raises(ValueError, match="must not carry a target"):
            Trace(generator="g", n=2, seed=0, events=(TraceEvent(1, "crash", 0, 1),))

    def test_rejects_round_zero(self):
        with pytest.raises(ValueError, match="round must be >= 1"):
            Trace(generator="g", n=2, seed=0, events=(TraceEvent(0, "crash", 0),))

    def test_horizon_and_views(self):
        trace = Trace(
            generator="g",
            n=4,
            seed=0,
            events=(
                TraceEvent(2, "lookup", 0, 3),
                TraceEvent(5, "lookup", 1, 3),
                TraceEvent(3, "crash", 2),
            ),
        )
        assert trace.horizon == 5
        assert len(trace.events_of("lookup")) == 2
        assert trace.lookup_counts() == {3: 2}
        assert Trace(generator="g", n=1, seed=0).horizon == 0


class TestPersistence:
    def test_same_seed_means_byte_identical_files(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        save_trace(make_workload("zipf", 64, seed=9, alpha=1.2), first)
        save_trace(make_workload("zipf", 64, seed=9, alpha=1.2), second)
        assert first.read_bytes() == second.read_bytes()

    def test_different_seed_means_different_trace(self, tmp_path):
        one = make_workload("zipf", 64, seed=9)
        other = make_workload("zipf", 64, seed=10)
        assert one.digest() != other.digest()

    def test_round_trip_preserves_everything(self, tmp_path):
        trace = make_workload("flash_crowd", 32, seed=4, spike_factor=16.0)
        path = tmp_path / "trace.jsonl"
        assert save_trace(trace, path) == len(trace)
        loaded = load_trace(path)
        assert loaded == trace
        assert loaded.digest() == trace.digest()
        assert loaded.params == trace.params

    def test_manifest_is_first_line_with_schema(self, tmp_path):
        import json

        trace = make_workload("dynamic_graph", 16, seed=1)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        manifest = json.loads(path.read_text().splitlines()[0])
        assert manifest["type"] == "manifest"
        assert manifest["schema"] == TRACE_SCHEMA
        assert manifest["kind"] == TRACE_KIND
        assert manifest["events"] == len(trace)
        assert manifest["digest"] == trace.digest()

    def test_load_rejects_tampered_events(self, tmp_path):
        trace = make_workload("zipf", 16, seed=2, requests=20)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"round": 1', '"round": 2', 1)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="digest mismatch"):
            load_trace(path)

    def test_load_rejects_truncated_file(self, tmp_path):
        trace = make_workload("zipf", 16, seed=2, requests=20)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-3]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            load_trace(path)

    def test_load_rejects_sweep_journal(self, tmp_path):
        import json

        path = tmp_path / "sweep.jsonl"
        path.write_text(json.dumps({"type": "manifest", "schema": 1}) + "\n")
        with pytest.raises(ValueError, match="kind"):
            load_trace(path)

    def test_manifest_is_a_regeneration_recipe(self):
        trace = make_workload("diurnal", 48, seed=5)
        rebuilt = make_workload(
            trace.generator, trace.n, seed=trace.seed, **trace.params
        )
        assert rebuilt == trace
